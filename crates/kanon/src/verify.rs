//! Verification of the k-anonymity property.
//!
//! The adversary-visible grouping (classes with identical generalized boxes
//! merge) is computed on the shared `so-plan` predicate IR: each box is
//! lifted to a hash-consed expression, so two classes merge exactly when
//! their boxes intern to the same [`ExprId`] — structural identity in the
//! same pool the query planner and workload linter use, rather than a
//! private deep-clone-and-hash of `GenValue` vectors.

use std::collections::HashMap;

use so_data::Value;
use so_plan::{Atom, ExprId, ParallelExecutor, PredPool};

use crate::generalized::{AnonymizedDataset, GenValue};

/// Interns one generalized cell as a predicate-IR expression.
///
/// `Exact` and `IntRange` cells map onto their true row predicates over QI
/// position `2j`; taxonomy nodes have no tabular atom, so they are encoded
/// injectively as a value test on the odd column `2j + 1` (identity is all
/// the merge check needs). `Suppressed` is the `True` predicate.
fn lift_cell(pool: &mut PredPool, j: usize, g: &GenValue) -> ExprId {
    match g {
        GenValue::Exact(v) => pool.atom(Atom::ValueEquals {
            col: 2 * j,
            value: *v,
        }),
        GenValue::IntRange { lo, hi } => pool.atom(Atom::IntRange {
            col: 2 * j,
            lo: *lo,
            hi: *hi,
        }),
        GenValue::CategoryNode(node) => pool.atom(Atom::ValueEquals {
            col: 2 * j + 1,
            value: Value::Int(*node as i64),
        }),
        GenValue::Suppressed => pool.tru(),
    }
}

/// Interns a whole generalized box as the conjunction of its cells.
///
/// Two boxes produce the same [`ExprId`] iff they are identical cell for
/// cell (modulo suppressed cells, which are the neutral `True`), which is
/// exactly the merge criterion of [`merged_class_sizes`].
pub fn lift_box(pool: &mut PredPool, qi_box: &[GenValue]) -> ExprId {
    let cells: Vec<ExprId> = qi_box
        .iter()
        .enumerate()
        .map(|(j, g)| lift_cell(pool, j, g))
        .collect();
    pool.and(cells)
}

/// True iff every released equivalence class has size at least `k`.
///
/// Classes that happen to share an identical generalized box are merged
/// before checking: the adversary observing the release sees the union, so
/// two boxes of size k/2 with the same generalized tuple are jointly fine.
pub fn is_k_anonymous(anon: &AnonymizedDataset, k: usize) -> bool {
    merged_class_sizes(anon).into_iter().all(|s| s >= k)
}

/// Sizes of the classes as the adversary sees them (identical boxes merged).
///
/// Deficiency bookkeeping runs on interned expression ids: each class's box
/// is lifted into a [`PredPool`] and sizes accumulate per distinct id.
/// Lifting fans out across worker threads
/// ([`so_plan::ParallelExecutor`], `SO_THREADS` override): each chunk of
/// classes lifts into its own local pool, and chunk results merge on the
/// calling thread by exact structural re-interning
/// ([`PredPool::import`]) — never by hash comparison — so the merged sizes
/// are identical to the serial computation at every thread count.
pub fn merged_class_sizes(anon: &AnonymizedDataset) -> Vec<usize> {
    let classes = anon.classes();
    let chunks = ParallelExecutor::from_env().map_chunks(classes.len(), |r| {
        let mut pool = PredPool::new();
        let mut by_expr: HashMap<ExprId, usize> = HashMap::new();
        for c in &classes[r] {
            *by_expr.entry(lift_box(&mut pool, &c.qi_box)).or_insert(0) += c.rows.len();
        }
        (pool, by_expr)
    });
    let mut master = PredPool::new();
    let mut merged: HashMap<ExprId, usize> = HashMap::new();
    for (chunk_pool, by_expr) in chunks {
        let mut memo = HashMap::new();
        for (id, size) in by_expr {
            *merged
                .entry(master.import(&chunk_pool, id, &mut memo))
                .or_insert(0) += size;
        }
    }
    merged.into_values().collect()
}

/// Reference implementation of [`merged_class_sizes`] that groups by the
/// raw `GenValue` vectors, kept as the oracle for the IR-keyed path.
pub fn merged_class_sizes_scalar(anon: &AnonymizedDataset) -> Vec<usize> {
    let mut by_box: HashMap<Vec<GenValue>, usize> = HashMap::new();
    for c in anon.classes() {
        *by_box.entry(c.qi_box.clone()).or_insert(0) += c.rows.len();
    }
    by_box.into_values().collect()
}

/// The largest `k` for which the release is k-anonymous (0 when empty).
pub fn effective_k(anon: &AnonymizedDataset) -> usize {
    merged_class_sizes(anon).into_iter().min().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generalized::EquivalenceClass;
    use so_data::{AttributeDef, AttributeRole, DataType, DatasetBuilder, Schema, Value};

    fn release(sizes: &[usize], same_box: bool) -> AnonymizedDataset {
        let schema = Schema::new(vec![AttributeDef::new(
            "age",
            DataType::Int,
            AttributeRole::QuasiIdentifier,
        )]);
        let mut b = DatasetBuilder::new(schema);
        let total: usize = sizes.iter().sum();
        for i in 0..total {
            b.push_row(vec![Value::Int(i as i64)]);
        }
        let ds = b.finish();
        let mut classes = Vec::new();
        let mut next = 0usize;
        for (ci, &s) in sizes.iter().enumerate() {
            let rows: Vec<usize> = (next..next + s).collect();
            next += s;
            let qi_box = if same_box {
                vec![GenValue::Suppressed]
            } else {
                vec![GenValue::IntRange {
                    lo: ci as i64 * 1000,
                    hi: ci as i64 * 1000 + 999,
                }]
            };
            classes.push(EquivalenceClass { rows, qi_box });
        }
        AnonymizedDataset::new(&ds, vec![0], classes, vec![], vec![None])
    }

    #[test]
    fn detects_k_violations() {
        let anon = release(&[5, 5, 3], false);
        assert!(is_k_anonymous(&anon, 3));
        assert!(!is_k_anonymous(&anon, 4));
        assert_eq!(effective_k(&anon), 3);
    }

    #[test]
    fn identical_boxes_merge() {
        // Two classes of 2 with the same box are 4-anonymous together.
        let anon = release(&[2, 2], true);
        assert!(is_k_anonymous(&anon, 4));
        assert_eq!(effective_k(&anon), 4);
        // Distinct boxes do not merge.
        let anon2 = release(&[2, 2], false);
        assert!(!is_k_anonymous(&anon2, 3));
        assert_eq!(effective_k(&anon2), 2);
    }

    #[test]
    fn empty_release_is_vacuously_anonymous() {
        let anon = release(&[], false);
        assert!(is_k_anonymous(&anon, 100));
        assert_eq!(effective_k(&anon), 0);
    }

    /// Interning distinguishes every cell kind the release can carry: a
    /// taxonomy node never collides with an exact integer of the same
    /// numeric value, a point range never collides with the exact value,
    /// and all-suppressed boxes coincide.
    #[test]
    fn lifted_boxes_are_injective_per_cell_kind() {
        let mut pool = PredPool::new();
        let exact = lift_box(&mut pool, &[GenValue::Exact(Value::Int(3))]);
        let node = lift_box(&mut pool, &[GenValue::CategoryNode(3)]);
        let point = lift_box(&mut pool, &[GenValue::IntRange { lo: 3, hi: 3 }]);
        let sup_a = lift_box(&mut pool, &[GenValue::Suppressed, GenValue::Suppressed]);
        let sup_b = lift_box(&mut pool, &[GenValue::Suppressed, GenValue::Suppressed]);
        assert_ne!(exact, node);
        assert_ne!(exact, point);
        assert_ne!(node, point);
        assert_eq!(sup_a, sup_b);
        // Same cell in different QI positions stays distinct.
        let left = lift_box(
            &mut pool,
            &[GenValue::Exact(Value::Int(3)), GenValue::Suppressed],
        );
        let right = lift_box(
            &mut pool,
            &[GenValue::Suppressed, GenValue::Exact(Value::Int(3))],
        );
        assert_ne!(left, right);
    }

    /// The IR-keyed grouping matches the raw-`GenValue` oracle.
    #[test]
    fn ir_grouping_matches_scalar_oracle() {
        for (sizes, same_box) in [
            (&[5usize, 5, 3][..], false),
            (&[2, 2][..], true),
            (&[2, 2][..], false),
            (&[][..], false),
            (&[1, 4, 1, 4][..], true),
        ] {
            let anon = release(sizes, same_box);
            let mut planned = merged_class_sizes(&anon);
            let mut scalar = merged_class_sizes_scalar(&anon);
            planned.sort_unstable();
            scalar.sort_unstable();
            assert_eq!(planned, scalar, "sizes {sizes:?} same_box {same_box}");
        }
    }
}
