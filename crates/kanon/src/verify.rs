//! Verification of the k-anonymity property.

use std::collections::HashMap;

use crate::generalized::{AnonymizedDataset, GenValue};

/// True iff every released equivalence class has size at least `k`.
///
/// Classes that happen to share an identical generalized box are merged
/// before checking: the adversary observing the release sees the union, so
/// two boxes of size k/2 with the same generalized tuple are jointly fine.
pub fn is_k_anonymous(anon: &AnonymizedDataset, k: usize) -> bool {
    merged_class_sizes(anon).into_iter().all(|s| s >= k)
}

/// Sizes of the classes as the adversary sees them (identical boxes merged).
pub fn merged_class_sizes(anon: &AnonymizedDataset) -> Vec<usize> {
    let mut by_box: HashMap<Vec<GenValue>, usize> = HashMap::new();
    for c in anon.classes() {
        *by_box.entry(c.qi_box.clone()).or_insert(0) += c.rows.len();
    }
    by_box.into_values().collect()
}

/// The largest `k` for which the release is k-anonymous (0 when empty).
pub fn effective_k(anon: &AnonymizedDataset) -> usize {
    merged_class_sizes(anon).into_iter().min().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generalized::EquivalenceClass;
    use so_data::{AttributeDef, AttributeRole, DataType, DatasetBuilder, Schema, Value};

    fn release(sizes: &[usize], same_box: bool) -> AnonymizedDataset {
        let schema = Schema::new(vec![AttributeDef::new(
            "age",
            DataType::Int,
            AttributeRole::QuasiIdentifier,
        )]);
        let mut b = DatasetBuilder::new(schema);
        let total: usize = sizes.iter().sum();
        for i in 0..total {
            b.push_row(vec![Value::Int(i as i64)]);
        }
        let ds = b.finish();
        let mut classes = Vec::new();
        let mut next = 0usize;
        for (ci, &s) in sizes.iter().enumerate() {
            let rows: Vec<usize> = (next..next + s).collect();
            next += s;
            let qi_box = if same_box {
                vec![GenValue::Suppressed]
            } else {
                vec![GenValue::IntRange {
                    lo: ci as i64 * 1000,
                    hi: ci as i64 * 1000 + 999,
                }]
            };
            classes.push(EquivalenceClass { rows, qi_box });
        }
        AnonymizedDataset::new(&ds, vec![0], classes, vec![], vec![None])
    }

    #[test]
    fn detects_k_violations() {
        let anon = release(&[5, 5, 3], false);
        assert!(is_k_anonymous(&anon, 3));
        assert!(!is_k_anonymous(&anon, 4));
        assert_eq!(effective_k(&anon), 3);
    }

    #[test]
    fn identical_boxes_merge() {
        // Two classes of 2 with the same box are 4-anonymous together.
        let anon = release(&[2, 2], true);
        assert!(is_k_anonymous(&anon, 4));
        assert_eq!(effective_k(&anon), 4);
        // Distinct boxes do not merge.
        let anon2 = release(&[2, 2], false);
        assert!(!is_k_anonymous(&anon2, 3));
        assert_eq!(effective_k(&anon2), 2);
    }

    #[test]
    fn empty_release_is_vacuously_anonymous() {
        let anon = release(&[], false);
        assert!(is_k_anonymous(&anon, 100));
        assert_eq!(effective_k(&anon), 0);
    }
}
