//! Mondrian multidimensional k-anonymization (LeFevre–DeWitt–Ramakrishnan).
//!
//! Greedy top-down partitioning: recursively split the record set on the
//! quasi-identifier with the widest (normalized) range at the median, as
//! long as both halves keep at least `k` records; leaves become equivalence
//! classes whose QI boxes are the tightest covering ranges.
//!
//! The tightness is the point: Mondrian "tries to optimize on the
//! information content of the k-anonymized dataset" (Theorem 2.10), which
//! makes the resulting class boxes *narrow* — and narrow boxes have
//! negligible weight under the data distribution, which is exactly what the
//! predicate-singling-out attack needs.

use so_data::{DataType, Dataset, Value};

use crate::generalized::{AnonymizedDataset, EquivalenceClass, GenValue};

/// Mondrian parameters.
#[derive(Debug, Clone, Copy)]
pub struct MondrianConfig {
    /// The anonymity parameter `k ≥ 1`.
    pub k: usize,
}

/// Ordinal encoding of a QI cell for partitioning purposes.
fn ordinal(v: &Value) -> i64 {
    match v {
        Value::Int(x) => *x,
        Value::Date(d) => i64::from(d.day_number()),
        Value::Str(s) => i64::from(s.index()),
        Value::Bool(b) => i64::from(*b),
        Value::Float(_) => panic!("float quasi-identifiers are not supported by Mondrian"),
        Value::Missing => i64::MIN,
    }
}

struct Ctx<'a> {
    ds: &'a Dataset,
    qi_cols: &'a [usize],
    k: usize,
    /// Global span per QI for range normalization.
    global_span: Vec<f64>,
}

impl Ctx<'_> {
    fn value(&self, row: usize, qi: usize) -> i64 {
        ordinal(&self.ds.get(row, self.qi_cols[qi]))
    }
}

/// Runs Mondrian over `qi_cols` of `ds`.
///
/// ```
/// use so_data::{AttributeDef, AttributeRole, DataType, DatasetBuilder, Schema, Value};
/// use so_kanon::{is_k_anonymous, mondrian_anonymize, MondrianConfig};
/// let schema = Schema::new(vec![AttributeDef::new(
///     "age", DataType::Int, AttributeRole::QuasiIdentifier,
/// )]);
/// let mut b = DatasetBuilder::new(schema);
/// for age in [21, 22, 23, 41, 42, 43] {
///     b.push_row(vec![Value::Int(age)]);
/// }
/// let ds = b.finish();
/// let anon = mondrian_anonymize(&ds, &[0], &MondrianConfig { k: 3 });
/// assert!(is_k_anonymous(&anon, 3));
/// assert!(anon.is_sound(&ds));
/// ```
///
/// # Panics
/// Panics if `k == 0` or any QI column is a float column.
pub fn mondrian_anonymize(
    ds: &Dataset,
    qi_cols: &[usize],
    config: &MondrianConfig,
) -> AnonymizedDataset {
    assert!(config.k >= 1, "k must be at least 1");
    for &c in qi_cols {
        assert_ne!(
            ds.schema().attr(c).dtype,
            DataType::Float,
            "float QI column {c} unsupported"
        );
    }
    let n = ds.n_rows();
    let mut classes = Vec::new();
    if n == 0 {
        return AnonymizedDataset::new(
            ds,
            qi_cols.to_vec(),
            classes,
            vec![],
            vec![None; qi_cols.len()],
        );
    }

    let global_span: Vec<f64> = (0..qi_cols.len())
        .map(|qi| {
            let mut lo = i64::MAX;
            let mut hi = i64::MIN;
            for r in 0..n {
                let v = ordinal(&ds.get(r, qi_cols[qi]));
                lo = lo.min(v);
                hi = hi.max(v);
            }
            ((hi - lo) as f64).max(1.0)
        })
        .collect();

    let ctx = Ctx {
        ds,
        qi_cols,
        k: config.k,
        global_span,
    };

    let all_rows: Vec<usize> = (0..n).collect();
    // If the whole dataset is smaller than k there is nothing to do but
    // release one (undersized) class; verify::is_k_anonymous will flag it.
    partition(&ctx, all_rows, &mut classes);

    AnonymizedDataset::new(
        ds,
        qi_cols.to_vec(),
        classes,
        vec![],
        vec![None; qi_cols.len()],
    )
}

fn partition(ctx: &Ctx<'_>, rows: Vec<usize>, out: &mut Vec<EquivalenceClass>) {
    if rows.len() >= 2 * ctx.k {
        // Rank candidate dimensions by normalized width within the partition.
        let mut dims: Vec<(usize, f64)> = (0..ctx.qi_cols.len())
            .map(|qi| {
                let mut lo = i64::MAX;
                let mut hi = i64::MIN;
                for &r in &rows {
                    let v = ctx.value(r, qi);
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                (qi, (hi - lo) as f64 / ctx.global_span[qi])
            })
            .filter(|&(_, w)| w > 0.0)
            .collect();
        dims.sort_by(|a, b| b.1.total_cmp(&a.1));

        for (qi, _) in dims {
            let mut vals: Vec<i64> = rows.iter().map(|&r| ctx.value(r, qi)).collect();
            vals.sort_unstable();
            let median = vals[vals.len() / 2];
            // lhs: value < median OR (== median up to filling); classic
            // Mondrian uses <= median vs > median; ensure both sides
            // non-degenerate.
            let lhs: Vec<usize> = rows
                .iter()
                .copied()
                .filter(|&r| ctx.value(r, qi) < median)
                .collect();
            let rhs: Vec<usize> = rows
                .iter()
                .copied()
                .filter(|&r| ctx.value(r, qi) >= median)
                .collect();
            if lhs.len() >= ctx.k && rhs.len() >= ctx.k {
                partition(ctx, lhs, out);
                partition(ctx, rhs, out);
                return;
            }
            // Try the <=/> split too (handles skew toward the median).
            let lhs2: Vec<usize> = rows
                .iter()
                .copied()
                .filter(|&r| ctx.value(r, qi) <= median)
                .collect();
            let rhs2: Vec<usize> = rows
                .iter()
                .copied()
                .filter(|&r| ctx.value(r, qi) > median)
                .collect();
            if lhs2.len() >= ctx.k && rhs2.len() >= ctx.k {
                partition(ctx, lhs2, out);
                partition(ctx, rhs2, out);
                return;
            }
        }
    }
    out.push(make_class(ctx, rows));
}

fn make_class(ctx: &Ctx<'_>, rows: Vec<usize>) -> EquivalenceClass {
    let qi_box = (0..ctx.qi_cols.len())
        .map(|qi| {
            let col = ctx.qi_cols[qi];
            let first = ctx.ds.get(rows[0], col);
            let all_equal = rows.iter().all(|&r| ctx.ds.get(r, col) == first);
            if all_equal {
                return GenValue::Exact(first);
            }
            match ctx.ds.schema().attr(col).dtype {
                DataType::Int | DataType::Date => {
                    let mut lo = i64::MAX;
                    let mut hi = i64::MIN;
                    for &r in &rows {
                        let v = ctx.value(r, qi);
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                    GenValue::IntRange { lo, hi }
                }
                // Multi-valued categorical/boolean cells are suppressed
                // (set-generalization simplification; documented in
                // DESIGN.md).
                _ => GenValue::Suppressed,
            }
        })
        .collect();
    EquivalenceClass { rows, qi_box }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_k_anonymous;
    use rand::Rng;
    use so_data::rng::seeded_rng;
    use so_data::{AttributeDef, AttributeRole, DataType, DatasetBuilder, Schema};

    fn random_dataset(n: usize, seed: u64) -> Dataset {
        let schema = Schema::new(vec![
            AttributeDef::new("zip", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("sex", DataType::Str, AttributeRole::QuasiIdentifier),
            AttributeDef::new("disease", DataType::Str, AttributeRole::Sensitive),
        ]);
        let mut b = DatasetBuilder::new(schema);
        let sexes = [b.intern("F"), b.intern("M")];
        let diseases = [b.intern("COVID"), b.intern("Asthma"), b.intern("CF")];
        let mut rng = seeded_rng(seed);
        for _ in 0..n {
            b.push_row(vec![
                Value::Int(10_000 + rng.gen_range(0..50i64)),
                Value::Int(rng.gen_range(18..90)),
                Value::Str(sexes[usize::from(rng.gen::<bool>())]),
                Value::Str(diseases[rng.gen_range(0..3usize)]),
            ]);
        }
        b.finish()
    }

    #[test]
    fn output_is_k_anonymous_sound_partition() {
        for k in [2usize, 5, 10] {
            let ds = random_dataset(500, 42);
            let anon = mondrian_anonymize(&ds, &[0, 1, 2], &MondrianConfig { k });
            assert!(is_k_anonymous(&anon, k), "k = {k}");
            assert!(anon.is_sound(&ds), "k = {k}");
            assert!(anon.is_partition(), "k = {k}");
            assert_eq!(anon.n_released_rows(), 500);
        }
    }

    #[test]
    fn classes_are_reasonably_small() {
        // A greedy anonymizer should keep classes near k, not give up early.
        let ds = random_dataset(1000, 7);
        let k = 5;
        let anon = mondrian_anonymize(&ds, &[0, 1, 2], &MondrianConfig { k });
        let max_class = anon.classes().iter().map(|c| c.size()).max().unwrap();
        assert!(max_class < 4 * k, "largest class {max_class}");
        let n_classes = anon.classes().len();
        assert!(n_classes >= 1000 / (4 * k), "only {n_classes} classes");
    }

    #[test]
    fn tiny_dataset_yields_single_class() {
        let ds = random_dataset(3, 1);
        let anon = mondrian_anonymize(&ds, &[0, 1], &MondrianConfig { k: 5 });
        assert_eq!(anon.classes().len(), 1);
        assert_eq!(anon.classes()[0].size(), 3);
        assert!(anon.is_sound(&ds));
    }

    #[test]
    fn identical_rows_cannot_be_split() {
        let schema = Schema::new(vec![AttributeDef::new(
            "age",
            DataType::Int,
            AttributeRole::QuasiIdentifier,
        )]);
        let mut b = DatasetBuilder::new(schema);
        for _ in 0..10 {
            b.push_row(vec![Value::Int(40)]);
        }
        let ds = b.finish();
        let anon = mondrian_anonymize(&ds, &[0], &MondrianConfig { k: 2 });
        assert_eq!(anon.classes().len(), 1);
        // The box is exact because every member shares the value.
        assert_eq!(anon.classes()[0].qi_box[0], GenValue::Exact(Value::Int(40)));
    }

    #[test]
    fn k1_recovers_singletons_when_values_distinct() {
        let schema = Schema::new(vec![AttributeDef::new(
            "age",
            DataType::Int,
            AttributeRole::QuasiIdentifier,
        )]);
        let mut b = DatasetBuilder::new(schema);
        for age in [10, 20, 30, 40] {
            b.push_row(vec![Value::Int(age)]);
        }
        let ds = b.finish();
        let anon = mondrian_anonymize(&ds, &[0], &MondrianConfig { k: 1 });
        assert_eq!(anon.classes().len(), 4);
        for c in anon.classes() {
            assert_eq!(c.size(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn rejects_zero_k() {
        let ds = random_dataset(10, 2);
        mondrian_anonymize(&ds, &[0], &MondrianConfig { k: 0 });
    }

    #[test]
    fn empty_dataset_handled() {
        let schema = Schema::new(vec![AttributeDef::new(
            "age",
            DataType::Int,
            AttributeRole::QuasiIdentifier,
        )]);
        let ds = DatasetBuilder::new(schema).finish();
        let anon = mondrian_anonymize(&ds, &[0], &MondrianConfig { k: 3 });
        assert!(anon.classes().is_empty());
        assert!(anon.is_partition());
    }
}
