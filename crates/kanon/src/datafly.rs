//! Full-domain generalization with suppression (Datafly lineage).
//!
//! The generalization-based anonymizer family the paper's toy example in
//! §1.1 illustrates: each quasi-identifier attribute has a generalization
//! ladder ([`AttributeHierarchy`]), the whole column is generalized to one
//! ladder level, and the algorithm greedily raises the level of the
//! attribute with the most distinct generalized values until every QI tuple
//! occurs at least `k` times — suppressing up to a configured fraction of
//! stragglers instead of over-generalizing.

use std::collections::HashMap;

use so_data::Dataset;

use crate::generalized::{AnonymizedDataset, EquivalenceClass, GenValue};
use crate::hierarchy::AttributeHierarchy;

/// Datafly parameters.
#[derive(Debug, Clone, Copy)]
pub struct DataflyConfig {
    /// The anonymity parameter `k ≥ 1`.
    pub k: usize,
    /// Maximum fraction of records that may be suppressed instead of
    /// generalizing further (classic Datafly allows a small budget).
    pub max_suppression_fraction: f64,
}

impl Default for DataflyConfig {
    fn default() -> Self {
        DataflyConfig {
            k: 5,
            max_suppression_fraction: 0.01,
        }
    }
}

/// Runs full-domain generalization over `qi_cols` with the given ladders.
///
/// # Panics
/// Panics if `k == 0`, arities mismatch, or the suppression fraction is not
/// in `[0, 1]`.
pub fn datafly_anonymize(
    ds: &Dataset,
    qi_cols: &[usize],
    hierarchies: &[AttributeHierarchy],
    config: &DataflyConfig,
) -> AnonymizedDataset {
    assert!(config.k >= 1, "k must be at least 1");
    assert_eq!(
        qi_cols.len(),
        hierarchies.len(),
        "one hierarchy per QI column"
    );
    assert!(
        (0.0..=1.0).contains(&config.max_suppression_fraction),
        "bad suppression fraction"
    );
    let n = ds.n_rows();
    let budget = (config.max_suppression_fraction * n as f64).floor() as usize;

    let mut levels = vec![0usize; qi_cols.len()];
    loop {
        // Generalize every row's QI tuple at the current levels.
        let mut groups: HashMap<Vec<GenValue>, Vec<usize>> = HashMap::new();
        for r in 0..n {
            let key: Vec<GenValue> = (0..qi_cols.len())
                .map(|qi| hierarchies[qi].generalize(&ds.get(r, qi_cols[qi]), levels[qi]))
                .collect();
            groups.entry(key).or_default().push(r);
        }
        let undersized: usize = groups
            .values()
            .filter(|rows| rows.len() < config.k)
            .map(|rows| rows.len())
            .sum();
        let exhausted = levels
            .iter()
            .zip(hierarchies)
            .all(|(&lvl, h)| lvl >= h.max_level());
        if undersized <= budget || exhausted {
            // Done: release big groups, suppress the stragglers.
            let mut classes = Vec::new();
            let mut suppressed = Vec::new();
            let mut keys: Vec<_> = groups.into_iter().collect();
            // Deterministic output order (hash maps shuffle).
            keys.sort_by_key(|(_, rows)| rows[0]);
            for (qi_box, rows) in keys {
                if rows.len() >= config.k {
                    classes.push(EquivalenceClass { rows, qi_box });
                } else {
                    suppressed.extend(rows);
                }
            }
            suppressed.sort_unstable();
            let taxonomies = hierarchies.iter().map(|h| h.taxonomy().cloned()).collect();
            return AnonymizedDataset::new(ds, qi_cols.to_vec(), classes, suppressed, taxonomies);
        }
        // Raise the level of the attribute with the most distinct
        // generalized values (the classic Datafly heuristic).
        let mut best: Option<(usize, usize)> = None; // (qi index, distinct)
        for (qi, (&_col, &lvl)) in qi_cols.iter().zip(&levels).enumerate() {
            if lvl >= hierarchies[qi].max_level() {
                continue;
            }
            let mut distinct: HashMap<GenValue, ()> = HashMap::new();
            for r in 0..n {
                distinct.insert(hierarchies[qi].generalize(&ds.get(r, qi_cols[qi]), lvl), ());
            }
            let d = distinct.len();
            if best.map_or(true, |(_, bd)| d > bd) {
                best = Some((qi, d));
            }
        }
        let (qi, _) = best.expect("not exhausted, so some attribute can rise");
        levels[qi] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::paper_disease_taxonomy;
    use crate::verify::is_k_anonymous;
    use rand::Rng;
    use so_data::rng::seeded_rng;
    use so_data::{AttributeDef, AttributeRole, DataType, DatasetBuilder, Schema, Value};

    fn dataset(n: usize, seed: u64) -> (Dataset, Vec<AttributeHierarchy>) {
        let schema = Schema::new(vec![
            AttributeDef::new("zip", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("disease", DataType::Str, AttributeRole::Sensitive),
        ]);
        let mut b = DatasetBuilder::new(schema);
        let diseases = [
            b.intern("COVID"),
            b.intern("Asthma"),
            b.intern("CF"),
            b.intern("Diabetes"),
        ];
        let mut rng = seeded_rng(seed);
        for _ in 0..n {
            b.push_row(vec![
                Value::Int(10_000 + rng.gen_range(0..100i64)),
                Value::Int(rng.gen_range(0..100i64)),
                Value::Str(diseases[rng.gen_range(0..4usize)]),
            ]);
        }
        let ds = b.finish();
        let hierarchies = vec![
            AttributeHierarchy::ZipPrefix { digits: 5 },
            AttributeHierarchy::Numeric {
                anchor: 0,
                widths: vec![5, 10, 25, 50],
            },
        ];
        (ds, hierarchies)
    }

    #[test]
    fn output_is_k_anonymous_and_sound() {
        let (ds, hier) = dataset(400, 11);
        for k in [2usize, 5, 10] {
            let anon = datafly_anonymize(
                &ds,
                &[0, 1],
                &hier,
                &DataflyConfig {
                    k,
                    max_suppression_fraction: 0.05,
                },
            );
            assert!(is_k_anonymous(&anon, k), "k = {k}");
            assert!(anon.is_sound(&ds), "k = {k}");
            assert!(anon.is_partition(), "k = {k}");
            let suppressed_frac = anon.suppressed_rows().len() as f64 / 400.0;
            assert!(
                suppressed_frac <= 0.05 + 1e-9,
                "suppressed {suppressed_frac}"
            );
        }
    }

    #[test]
    fn zero_suppression_budget_forces_generalization() {
        let (ds, hier) = dataset(200, 12);
        let anon = datafly_anonymize(
            &ds,
            &[0, 1],
            &hier,
            &DataflyConfig {
                k: 3,
                max_suppression_fraction: 0.0,
            },
        );
        assert!(
            anon.suppressed_rows().is_empty() || {
                // Only possible if even full suppression could not meet k —
                // impossible for n >= k, so assert emptiness.
                false
            }
        );
        assert!(is_k_anonymous(&anon, 3));
    }

    #[test]
    fn full_suppression_is_last_resort() {
        // n < k: even the fully-suppressed single class is undersized;
        // the algorithm must terminate and suppress everything or release
        // an undersized class — with budget 1.0 it suppresses.
        let (ds, hier) = dataset(2, 13);
        let anon = datafly_anonymize(
            &ds,
            &[0, 1],
            &hier,
            &DataflyConfig {
                k: 5,
                max_suppression_fraction: 1.0,
            },
        );
        assert_eq!(anon.suppressed_rows().len(), 2);
        assert!(anon.classes().is_empty());
    }

    #[test]
    fn categorical_hierarchy_participates() {
        let schema = Schema::new(vec![AttributeDef::new(
            "disease",
            DataType::Str,
            AttributeRole::QuasiIdentifier,
        )]);
        let mut b = DatasetBuilder::new(schema);
        let mut syms = Vec::new();
        for d in ["COVID", "Asthma", "CF", "Diabetes"] {
            syms.push(b.intern(d));
        }
        // 3 pulmonary + 1 metabolic: at level 1, PULM has 3 ≥ k=2 but
        // METABOLIC has 1 < k → suppressed (budget permitting).
        for &s in &[syms[0], syms[1], syms[2], syms[3]] {
            b.push_row(vec![Value::Str(s)]);
        }
        let ds = b.finish();
        let mut tax = paper_disease_taxonomy();
        tax.bind_symbols(ds.interner());
        let hier = vec![AttributeHierarchy::Categorical(tax)];
        let anon = datafly_anonymize(
            &ds,
            &[0],
            &hier,
            &DataflyConfig {
                k: 2,
                max_suppression_fraction: 0.25,
            },
        );
        assert!(is_k_anonymous(&anon, 2));
        assert!(anon.is_sound(&ds));
        assert_eq!(anon.suppressed_rows(), &[3]);
        // The surviving class is generalized to the PULM node.
        let class = &anon.classes()[0];
        match &class.qi_box[0] {
            GenValue::CategoryNode(n) => {
                assert_eq!(anon.taxonomy(0).unwrap().label(*n), "PULM");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn deterministic_output() {
        let (ds, hier) = dataset(300, 14);
        let cfg = DataflyConfig {
            k: 4,
            max_suppression_fraction: 0.02,
        };
        let a = datafly_anonymize(&ds, &[0, 1], &hier, &cfg);
        let b = datafly_anonymize(&ds, &[0, 1], &hier, &cfg);
        assert_eq!(a.classes().len(), b.classes().len());
        for (ca, cb) in a.classes().iter().zip(b.classes()) {
            assert_eq!(ca.rows, cb.rows);
            assert_eq!(ca.qi_box, cb.qi_box);
        }
    }
}
