#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # so-kanon — k-anonymity and friends
//!
//! The syntactic anonymization technology of §1.1: "a dataset x is
//! anonymized via the application of suppression and generalization of
//! potentially identifying attributes ... subject to the requirement that in
//! x′ every record is identical to at least k−1 other records."
//!
//! Since minimizing suppression is NP-hard (Meyerson–Williams, cited by the
//! paper), practical anonymizers are heuristics that "attempt to retain as
//! much as possible information in the k-anonymized data". That
//! information-greed is exactly what Theorem 2.10 exploits, so this crate
//! ships two standard greedy anonymizers for the attack experiments:
//!
//! * [`mondrian`] — Mondrian multidimensional partitioning (LeFevre et al.);
//! * [`datafly`] — full-domain generalization with hierarchies plus record
//!   suppression (Sweeney's Datafly lineage), over the hierarchy machinery
//!   in [`hierarchy`] (digit-suppressed ZIP codes, numeric bands, and the
//!   disease taxonomy from the paper's toy example: COVID → PULM).
//!
//! Verification and diagnostics: [`verify`] (the k-anonymity property
//! itself, equivalence classes), [`ldiversity`] and [`tcloseness`] (the
//! variants footnote 3 says the paper's analysis also covers), and [`loss`]
//! (information-content metrics used by the utility benchmarks).

pub mod datafly;
pub mod enforce;
pub mod generalized;
pub mod hierarchy;
pub mod ldiversity;
pub mod loss;
pub mod mondrian;
pub mod tcloseness;
pub mod verify;

pub use datafly::{datafly_anonymize, DataflyConfig};
pub use enforce::{enforce_l_diversity, enforce_l_diversity_scalar};
pub use generalized::{AnonymizedDataset, EquivalenceClass, GenValue};
pub use hierarchy::{AttributeHierarchy, Taxonomy};
pub use ldiversity::{distinct_l_diversity, entropy_l_diversity, is_l_diverse};
pub use loss::{average_class_size_ratio, discernibility_metric, generalization_loss};
pub use mondrian::{mondrian_anonymize, MondrianConfig};
pub use tcloseness::{t_closeness_categorical, t_closeness_numeric};
pub use verify::is_k_anonymous;
