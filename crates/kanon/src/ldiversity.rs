//! ℓ-diversity (Machanavajjhala et al.), the k-anonymity variant in
//! footnote 3 of the paper. Distinct ℓ-diversity: every equivalence class
//! must contain at least ℓ distinct values of the sensitive attribute.

use std::collections::HashSet;

use so_data::Dataset;

use crate::generalized::AnonymizedDataset;

/// The distinct-ℓ-diversity level of a release: the minimum, over classes,
/// of the number of distinct sensitive values. Returns 0 for an empty
/// release.
pub fn distinct_l_diversity(
    anon: &AnonymizedDataset,
    source: &Dataset,
    sensitive_col: usize,
) -> usize {
    anon.classes()
        .iter()
        .map(|c| {
            let distinct: HashSet<_> = c
                .rows
                .iter()
                .map(|&r| source.get(r, sensitive_col))
                .collect();
            distinct.len()
        })
        .min()
        .unwrap_or(0)
}

/// True iff the release is distinct-ℓ-diverse at level `l`.
pub fn is_l_diverse(
    anon: &AnonymizedDataset,
    source: &Dataset,
    sensitive_col: usize,
    l: usize,
) -> bool {
    distinct_l_diversity(anon, source, sensitive_col) >= l
}

/// Entropy ℓ-diversity (Machanavajjhala et al. §3): the release is entropy
/// ℓ-diverse when every class's sensitive-value distribution has entropy at
/// least `ln(l)`. Returns the *effective* ℓ — `exp(min class entropy)` —
/// which is 1.0 for a homogeneous class and `|class|` for a perfectly
/// spread one. Stricter than distinct ℓ-diversity: a class with values
/// {A×9, B×1} is distinct-2-diverse but only entropy-1.4-diverse.
pub fn entropy_l_diversity(
    anon: &AnonymizedDataset,
    source: &Dataset,
    sensitive_col: usize,
) -> f64 {
    anon.classes()
        .iter()
        .map(|c| {
            let mut counts: std::collections::HashMap<so_data::Value, usize> =
                std::collections::HashMap::new();
            for &r in &c.rows {
                *counts.entry(source.get(r, sensitive_col)).or_insert(0) += 1;
            }
            let n = c.rows.len() as f64;
            let entropy: f64 = counts
                .values()
                .map(|&k| {
                    let p = k as f64 / n;
                    -p * p.ln()
                })
                .sum();
            entropy.exp()
        })
        .fold(f64::INFINITY, f64::min)
        .min(f64::INFINITY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generalized::{EquivalenceClass, GenValue};
    use so_data::{AttributeDef, AttributeRole, DataType, DatasetBuilder, Schema, Value};

    fn setup(sensitive: &[&str], classes: &[Vec<usize>]) -> (Dataset, AnonymizedDataset) {
        let schema = Schema::new(vec![
            AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("disease", DataType::Str, AttributeRole::Sensitive),
        ]);
        let mut b = DatasetBuilder::new(schema);
        for (i, s) in sensitive.iter().enumerate() {
            let sym = b.intern(s);
            b.push_row(vec![Value::Int(i as i64), Value::Str(sym)]);
        }
        let ds = b.finish();
        let classes = classes
            .iter()
            .map(|rows| EquivalenceClass {
                rows: rows.clone(),
                qi_box: vec![GenValue::Suppressed],
            })
            .collect();
        let anon = AnonymizedDataset::new(&ds, vec![0], classes, vec![], vec![None]);
        (ds, anon)
    }

    #[test]
    fn homogeneous_class_has_diversity_one() {
        // The classic l-diversity failure: a class whose members all share
        // the sensitive value (like the paper's toy COVID class).
        let (ds, anon) = setup(
            &["COVID", "COVID", "CF", "Asthma"],
            &[vec![0, 1], vec![2, 3]],
        );
        assert_eq!(distinct_l_diversity(&anon, &ds, 1), 1);
        assert!(is_l_diverse(&anon, &ds, 1, 1));
        assert!(!is_l_diverse(&anon, &ds, 1, 2));
    }

    #[test]
    fn diverse_classes_pass() {
        let (ds, anon) = setup(
            &["COVID", "CF", "Asthma", "COVID"],
            &[vec![0, 1], vec![2, 3]],
        );
        assert_eq!(distinct_l_diversity(&anon, &ds, 1), 2);
        assert!(is_l_diverse(&anon, &ds, 1, 2));
    }

    #[test]
    fn empty_release_reports_zero() {
        let (ds, anon) = setup(&["COVID"], &[]);
        assert_eq!(distinct_l_diversity(&anon, &ds, 1), 0);
    }

    #[test]
    fn entropy_diversity_of_uniform_class_is_class_cardinality() {
        let (ds, anon) = setup(&["A", "B", "C", "D"], &[vec![0, 1, 2, 3]]);
        let l = entropy_l_diversity(&anon, &ds, 1);
        assert!((l - 4.0).abs() < 1e-9, "l = {l}");
    }

    #[test]
    fn entropy_diversity_penalizes_skew_more_than_distinct() {
        // {A×3, B×1}: distinct diversity 2, entropy diversity ≈ 1.75.
        let (ds, anon) = setup(&["A", "A", "A", "B"], &[vec![0, 1, 2, 3]]);
        assert_eq!(distinct_l_diversity(&anon, &ds, 1), 2);
        let l = entropy_l_diversity(&anon, &ds, 1);
        assert!(l < 2.0 && l > 1.0, "l = {l}");
    }

    #[test]
    fn entropy_diversity_of_homogeneous_class_is_one() {
        let (ds, anon) = setup(&["A", "A"], &[vec![0, 1]]);
        let l = entropy_l_diversity(&anon, &ds, 1);
        assert!((l - 1.0).abs() < 1e-9, "l = {l}");
    }
}
