//! Information-loss metrics for anonymized releases.
//!
//! "k-anonymizers attempt to retain as much as possible information in the
//! k-anonymized data" — these metrics quantify how well they did, and feed
//! the utility/privacy trade-off tables (experiment E14).

use so_data::{DataType, Dataset};

use crate::generalized::{AnonymizedDataset, GenValue};

/// The discernibility metric (Bayardo–Agrawal): `Σ_classes |class|²` plus
/// `n · #suppressed` — each record pays the size of the crowd it hides in;
/// suppressed records pay the full dataset size.
pub fn discernibility_metric(anon: &AnonymizedDataset) -> u64 {
    let class_cost: u64 = anon
        .classes()
        .iter()
        .map(|c| (c.size() as u64).pow(2))
        .sum();
    class_cost + (anon.suppressed_rows().len() as u64) * (anon.n_original_rows() as u64)
}

/// The average-class-size ratio `C_avg = (released / #classes) / k`:
/// 1.0 is ideal (every class exactly size k); larger means coarser.
pub fn average_class_size_ratio(anon: &AnonymizedDataset, k: usize) -> f64 {
    if anon.classes().is_empty() {
        return f64::INFINITY;
    }
    (anon.n_released_rows() as f64 / anon.classes().len() as f64) / k as f64
}

/// The generalization loss metric (Iyengar's LM, normalized to `[0, 1]`):
/// each generalized cell costs the fraction of its column's domain it
/// covers — 0 for exact values, 1 for suppression, interval span over
/// global span for ranges, leaf share for taxonomy nodes. Suppressed rows
/// cost 1 per QI cell. Returns the mean cost over all original rows' QI
/// cells.
pub fn generalization_loss(anon: &AnonymizedDataset, source: &Dataset) -> f64 {
    let qi = anon.qi_cols();
    if qi.is_empty() || anon.n_original_rows() == 0 {
        return 0.0;
    }
    // Global spans per QI column.
    let spans: Vec<f64> = qi
        .iter()
        .map(|&col| match source.schema().attr(col).dtype {
            DataType::Int | DataType::Date => {
                let mut lo = i64::MAX;
                let mut hi = i64::MIN;
                for r in 0..source.n_rows() {
                    if let Some(v) = ordinal(source, r, col) {
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                }
                ((hi - lo) as f64).max(1.0)
            }
            _ => {
                // Categorical: span in "distinct leaves" units.
                let mut distinct = std::collections::HashSet::new();
                for r in 0..source.n_rows() {
                    distinct.insert(source.get(r, col));
                }
                (distinct.len().saturating_sub(1) as f64).max(1.0)
            }
        })
        .collect();

    let mut total = 0.0;
    let mut cells = 0usize;
    for class in anon.classes() {
        for (qi_idx, g) in class.qi_box.iter().enumerate() {
            let cost = match g {
                GenValue::Exact(_) => 0.0,
                GenValue::Suppressed => 1.0,
                GenValue::IntRange { lo, hi } => {
                    (((hi - lo) as f64) / spans[qi_idx]).clamp(0.0, 1.0)
                }
                GenValue::CategoryNode(node) => {
                    let tax = anon
                        .taxonomy(qi_idx)
                        .expect("CategoryNode implies a taxonomy");
                    let leaves = tax.leaves_under(*node).len();
                    let all = tax.leaves_under(tax.root()).len();
                    if all <= 1 {
                        0.0
                    } else {
                        (leaves.saturating_sub(1) as f64) / (all - 1) as f64
                    }
                }
            };
            total += cost * class.size() as f64;
            cells += class.size();
        }
    }
    // Suppressed rows: full loss on every QI cell.
    total += (anon.suppressed_rows().len() * qi.len()) as f64;
    cells += anon.suppressed_rows().len() * qi.len();
    if cells == 0 {
        0.0
    } else {
        total / cells as f64
    }
}

fn ordinal(ds: &Dataset, row: usize, col: usize) -> Option<i64> {
    match ds.get(row, col) {
        so_data::Value::Int(x) => Some(x),
        so_data::Value::Date(d) => Some(i64::from(d.day_number())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generalized::EquivalenceClass;
    use so_data::{AttributeDef, AttributeRole, DataType, DatasetBuilder, Schema, Value};

    fn source(n: usize) -> Dataset {
        let schema = Schema::new(vec![AttributeDef::new(
            "age",
            DataType::Int,
            AttributeRole::QuasiIdentifier,
        )]);
        let mut b = DatasetBuilder::new(schema);
        for i in 0..n {
            b.push_row(vec![Value::Int(i as i64)]); // ages 0..n-1, span n-1
        }
        b.finish()
    }

    fn release(
        ds: &Dataset,
        classes: Vec<(Vec<usize>, GenValue)>,
        suppressed: Vec<usize>,
    ) -> AnonymizedDataset {
        let classes = classes
            .into_iter()
            .map(|(rows, g)| EquivalenceClass {
                rows,
                qi_box: vec![g],
            })
            .collect();
        AnonymizedDataset::new(ds, vec![0], classes, suppressed, vec![None])
    }

    #[test]
    fn discernibility_squares_class_sizes() {
        let ds = source(10);
        let anon = release(
            &ds,
            vec![
                ((0..4).collect(), GenValue::Suppressed),
                ((4..8).collect(), GenValue::Suppressed),
            ],
            vec![8, 9],
        );
        // 16 + 16 + 2*10 = 52.
        assert_eq!(discernibility_metric(&anon), 52);
    }

    #[test]
    fn average_class_size_ratio_ideal_is_one() {
        let ds = source(10);
        let anon = release(
            &ds,
            vec![
                ((0..5).collect(), GenValue::Suppressed),
                ((5..10).collect(), GenValue::Suppressed),
            ],
            vec![],
        );
        assert!((average_class_size_ratio(&anon, 5) - 1.0).abs() < 1e-12);
        assert!((average_class_size_ratio(&anon, 2) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn loss_zero_for_exact_one_for_suppressed() {
        let ds = source(10);
        let exact = release(
            &ds,
            vec![((0..10).collect(), GenValue::Exact(Value::Int(1)))],
            vec![],
        );
        assert_eq!(generalization_loss(&exact, &ds), 0.0);
        let supp = release(&ds, vec![((0..10).collect(), GenValue::Suppressed)], vec![]);
        assert_eq!(generalization_loss(&supp, &ds), 1.0);
    }

    #[test]
    fn loss_scales_with_interval_width() {
        let ds = source(10); // span 9
        let narrow = release(
            &ds,
            vec![((0..10).collect(), GenValue::IntRange { lo: 0, hi: 3 })],
            vec![],
        );
        let wide = release(
            &ds,
            vec![((0..10).collect(), GenValue::IntRange { lo: 0, hi: 9 })],
            vec![],
        );
        let ln = generalization_loss(&narrow, &ds);
        let lw = generalization_loss(&wide, &ds);
        assert!((ln - 3.0 / 9.0).abs() < 1e-12, "narrow {ln}");
        assert!((lw - 1.0).abs() < 1e-12, "wide {lw}");
    }

    #[test]
    fn suppressed_rows_count_as_full_loss() {
        let ds = source(4);
        let anon = release(
            &ds,
            vec![((0..2).collect(), GenValue::Exact(Value::Int(0)))],
            vec![2, 3],
        );
        // Cells: 2 exact (0.0) + 2 suppressed rows (1.0) → mean 0.5.
        assert!((generalization_loss(&anon, &ds) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_release_ratio_is_infinite() {
        let ds = source(3);
        let anon = release(&ds, vec![], vec![0, 1, 2]);
        assert!(average_class_size_ratio(&anon, 2).is_infinite());
    }
}
