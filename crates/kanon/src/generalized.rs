//! Generalized (anonymized) datasets.
//!
//! The output of a k-anonymizer is the input dataset with quasi-identifier
//! cells replaced by *generalized* values — intervals, taxonomy nodes, digit
//! prefixes, or full suppression — such that every record's generalized QI
//! tuple is shared with at least k−1 others. [`GenValue`] is the cell type,
//! [`EquivalenceClass`] a maximal group of records with identical
//! generalized QI tuples, and [`AnonymizedDataset`] the released object.

use std::sync::Arc;

use so_data::{Dataset, Schema, Value};

use crate::hierarchy::Taxonomy;

/// A generalized cell value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GenValue {
    /// Ungeneralized value.
    Exact(Value),
    /// Inclusive integer interval (ages, day numbers, ZIP blocks).
    IntRange {
        /// Inclusive lower endpoint.
        lo: i64,
        /// Inclusive upper endpoint.
        hi: i64,
    },
    /// A node of the column's taxonomy (e.g. `PULM` covering COVID and
    /// Asthma in the paper's toy example).
    CategoryNode(usize),
    /// Fully suppressed (`*`).
    Suppressed,
}

impl GenValue {
    /// Does this generalized cell cover raw value `v`?
    ///
    /// Categorical nodes need the column's [`Taxonomy`]; pass `None` for
    /// non-taxonomy columns.
    pub fn covers(&self, v: &Value, taxonomy: Option<&Taxonomy>) -> bool {
        match self {
            GenValue::Exact(e) => e == v,
            GenValue::IntRange { lo, hi } => match v {
                Value::Int(x) => x >= lo && x <= hi,
                Value::Date(d) => {
                    let dn = i64::from(d.day_number());
                    dn >= *lo && dn <= *hi
                }
                _ => false,
            },
            GenValue::CategoryNode(node) => match (v, taxonomy) {
                (Value::Str(s), Some(tax)) => tax
                    .leaf_of_symbol(*s)
                    .is_some_and(|leaf| tax.node_contains(*node, leaf)),
                _ => false,
            },
            GenValue::Suppressed => true,
        }
    }

    /// Renders the cell for display; taxonomy nodes are labeled if the
    /// taxonomy is supplied.
    pub fn display(&self, taxonomy: Option<&Taxonomy>) -> String {
        match self {
            GenValue::Exact(v) => v.to_string(),
            GenValue::IntRange { lo, hi } => format!("[{lo}-{hi}]"),
            GenValue::CategoryNode(n) => taxonomy
                .map(|t| t.label(*n).to_owned())
                .unwrap_or_else(|| format!("node#{n}")),
            GenValue::Suppressed => "*".to_owned(),
        }
    }
}

/// A maximal set of records sharing one generalized QI tuple.
#[derive(Debug, Clone)]
pub struct EquivalenceClass {
    /// Indices into the original dataset.
    pub rows: Vec<usize>,
    /// Generalized value per quasi-identifier column, aligned with
    /// [`AnonymizedDataset::qi_cols`].
    pub qi_box: Vec<GenValue>,
}

impl EquivalenceClass {
    /// Class size `|class| (≥ k)`.
    pub fn size(&self) -> usize {
        self.rows.len()
    }
}

/// The released k-anonymized dataset: the original rows grouped into
/// equivalence classes with generalized QI boxes. Non-QI columns are
/// released unchanged (as in the paper's toy example, where `Disease`
/// survives generalization into `PULM` only because it was *also* treated by
/// the taxonomy; sensitive columns outside the QI set pass through).
#[derive(Debug, Clone)]
pub struct AnonymizedDataset {
    schema: Arc<Schema>,
    qi_cols: Vec<usize>,
    classes: Vec<EquivalenceClass>,
    /// Row indices of the original dataset that were suppressed outright
    /// (Datafly-style anonymizers may drop small leftover classes).
    suppressed_rows: Vec<usize>,
    /// Per-QI-column taxonomies (None for numeric columns).
    taxonomies: Vec<Option<Taxonomy>>,
    n_original_rows: usize,
}

impl AnonymizedDataset {
    /// Assembles a release.
    ///
    /// # Panics
    /// Panics if box arity differs from `qi_cols`, or taxonomy arity
    /// mismatches.
    pub fn new(
        source: &Dataset,
        qi_cols: Vec<usize>,
        classes: Vec<EquivalenceClass>,
        suppressed_rows: Vec<usize>,
        taxonomies: Vec<Option<Taxonomy>>,
    ) -> Self {
        assert_eq!(qi_cols.len(), taxonomies.len(), "taxonomy arity mismatch");
        for c in &classes {
            assert_eq!(c.qi_box.len(), qi_cols.len(), "box arity mismatch");
        }
        AnonymizedDataset {
            schema: source.schema().clone(),
            qi_cols,
            classes,
            suppressed_rows,
            taxonomies,
            n_original_rows: source.n_rows(),
        }
    }

    /// The source schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Quasi-identifier column indices (into the source schema).
    pub fn qi_cols(&self) -> &[usize] {
        &self.qi_cols
    }

    /// The equivalence classes.
    pub fn classes(&self) -> &[EquivalenceClass] {
        &self.classes
    }

    /// Rows dropped entirely.
    pub fn suppressed_rows(&self) -> &[usize] {
        &self.suppressed_rows
    }

    /// Taxonomy for QI position `qi_idx` (not column index), if categorical.
    pub fn taxonomy(&self, qi_idx: usize) -> Option<&Taxonomy> {
        self.taxonomies[qi_idx].as_ref()
    }

    /// Number of rows in the source dataset.
    pub fn n_original_rows(&self) -> usize {
        self.n_original_rows
    }

    /// Number of released (non-suppressed) rows.
    pub fn n_released_rows(&self) -> usize {
        self.classes.iter().map(EquivalenceClass::size).sum()
    }

    /// Checks that every class box actually covers every member row of
    /// `source` — the structural soundness invariant of any anonymizer.
    pub fn is_sound(&self, source: &Dataset) -> bool {
        self.classes.iter().all(|class| {
            class.rows.iter().all(|&r| {
                self.qi_cols.iter().enumerate().all(|(qi_idx, &col)| {
                    let raw = source.get(r, col);
                    class.qi_box[qi_idx].covers(&raw, self.taxonomy(qi_idx))
                })
            })
        })
    }

    /// Checks that classes + suppressed rows partition the source rows.
    pub fn is_partition(&self) -> bool {
        let mut seen = vec![false; self.n_original_rows];
        for r in self
            .classes
            .iter()
            .flat_map(|c| c.rows.iter())
            .chain(self.suppressed_rows.iter())
        {
            if *r >= self.n_original_rows || seen[*r] {
                return false;
            }
            seen[*r] = true;
        }
        seen.iter().all(|&s| s)
    }
}

/// Equality key for generalized QI tuples (hashable view).
pub fn box_key(qi_box: &[GenValue]) -> Vec<GenValue> {
    qi_box.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use so_data::{AttributeDef, AttributeRole, DataType, DatasetBuilder, Date};

    fn tiny() -> Dataset {
        let schema = Schema::new(vec![
            AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("born", DataType::Date, AttributeRole::QuasiIdentifier),
        ]);
        let mut b = DatasetBuilder::new(schema);
        b.push_row(vec![
            Value::Int(30),
            Value::Date(Date::new(1990, 1, 1).unwrap()),
        ]);
        b.push_row(vec![
            Value::Int(35),
            Value::Date(Date::new(1991, 6, 1).unwrap()),
        ]);
        b.finish()
    }

    #[test]
    fn exact_covers_only_equal() {
        let g = GenValue::Exact(Value::Int(5));
        assert!(g.covers(&Value::Int(5), None));
        assert!(!g.covers(&Value::Int(6), None));
    }

    #[test]
    fn range_covers_ints_and_dates() {
        let g = GenValue::IntRange { lo: 30, hi: 39 };
        assert!(g.covers(&Value::Int(30), None));
        assert!(g.covers(&Value::Int(39), None));
        assert!(!g.covers(&Value::Int(40), None));
        let born = Date::new(1990, 1, 1).unwrap();
        let g2 = GenValue::IntRange {
            lo: i64::from(born.day_number()) - 10,
            hi: i64::from(born.day_number()) + 10,
        };
        assert!(g2.covers(&Value::Date(born), None));
    }

    #[test]
    fn suppressed_covers_anything() {
        let g = GenValue::Suppressed;
        assert!(g.covers(&Value::Int(1), None));
        assert!(g.covers(&Value::Missing, None));
        assert!(g.covers(&Value::Bool(true), None));
    }

    #[test]
    fn taxonomy_node_covers_descendant_leaves() {
        let mut tax = Taxonomy::new("ANY");
        let pulm = tax.add_child(tax.root(), "PULM");
        let covid = tax.add_child(pulm, "COVID");
        let asthma = tax.add_child(pulm, "Asthma");
        let other = tax.add_child(tax.root(), "CF");
        let mut interner = so_data::Interner::new();
        let covid_sym = interner.intern("COVID");
        let cf_sym = interner.intern("CF");
        tax.bind_symbols(&interner);
        let g = GenValue::CategoryNode(pulm);
        assert!(g.covers(&Value::Str(covid_sym), Some(&tax)));
        assert!(!g.covers(&Value::Str(cf_sym), Some(&tax)));
        // Leaf nodes cover themselves.
        let gc = GenValue::CategoryNode(covid);
        assert!(gc.covers(&Value::Str(covid_sym), Some(&tax)));
        let _ = (asthma, other);
    }

    #[test]
    fn soundness_and_partition_checks() {
        let ds = tiny();
        let day0 = i64::from(Date::new(1990, 1, 1).unwrap().day_number());
        let day1 = i64::from(Date::new(1991, 6, 1).unwrap().day_number());
        let anon = AnonymizedDataset::new(
            &ds,
            vec![0, 1],
            vec![EquivalenceClass {
                rows: vec![0, 1],
                qi_box: vec![
                    GenValue::IntRange { lo: 30, hi: 39 },
                    GenValue::IntRange { lo: day0, hi: day1 },
                ],
            }],
            vec![],
            vec![None, None],
        );
        assert!(anon.is_sound(&ds));
        assert!(anon.is_partition());
        assert_eq!(anon.n_released_rows(), 2);
    }

    #[test]
    fn unsound_box_detected() {
        let ds = tiny();
        let anon = AnonymizedDataset::new(
            &ds,
            vec![0],
            vec![EquivalenceClass {
                rows: vec![0, 1],
                qi_box: vec![GenValue::IntRange { lo: 0, hi: 31 }], // misses row 1 (35)
            }],
            vec![],
            vec![None],
        );
        assert!(!anon.is_sound(&ds));
    }

    #[test]
    fn non_partition_detected() {
        let ds = tiny();
        let mk = |rows: Vec<usize>, suppressed: Vec<usize>| {
            AnonymizedDataset::new(
                &ds,
                vec![0],
                vec![EquivalenceClass {
                    rows,
                    qi_box: vec![GenValue::Suppressed],
                }],
                suppressed,
                vec![None],
            )
        };
        assert!(!mk(vec![0], vec![]).is_partition()); // row 1 missing
        assert!(!mk(vec![0, 0], vec![1]).is_partition()); // duplicate
        assert!(mk(vec![0], vec![1]).is_partition());
        assert!(mk(vec![1, 0], vec![]).is_partition());
    }
}
