//! Post-processing a k-anonymous release into an ℓ-diverse one.
//!
//! Footnote 3 of the paper: "The analysis of k-anonymity throughout also
//! holds for variants of k-anonymity such as ℓ-diversity and t-closeness."
//! To test that claim empirically (experiment E8), we need releases that
//! actually *are* ℓ-diverse. This pass greedily merges equivalence classes
//! whose sensitive column lacks diversity into their nearest neighbour
//! (by box-hull growth), widening boxes to the hull of the merged pair,
//! until every class carries at least `l` distinct sensitive values.

use so_data::{Dataset, SelectionVector, Value};

use crate::generalized::{AnonymizedDataset, EquivalenceClass, GenValue};

/// Hull of two generalized cells: the tightest cell covering both.
fn hull(a: &GenValue, b: &GenValue) -> GenValue {
    fn range_of(g: &GenValue) -> Option<(i64, i64)> {
        match g {
            GenValue::IntRange { lo, hi } => Some((*lo, *hi)),
            GenValue::Exact(Value::Int(v)) => Some((*v, *v)),
            GenValue::Exact(Value::Date(d)) => {
                let dn = i64::from(d.day_number());
                Some((dn, dn))
            }
            _ => None,
        }
    }
    if a == b {
        return a.clone();
    }
    match (range_of(a), range_of(b)) {
        (Some((alo, ahi)), Some((blo, bhi))) => GenValue::IntRange {
            lo: alo.min(blo),
            hi: ahi.max(bhi),
        },
        // Incomparable cells (different exact strings, taxonomy nodes from
        // different subtrees, ...) merge to full suppression — conservative
        // and always sound.
        _ => GenValue::Suppressed,
    }
}

fn distinct_sensitive(class: &EquivalenceClass, source: &Dataset, col: usize) -> usize {
    let mut vals: Vec<Value> = class.rows.iter().map(|&r| source.get(r, col)).collect();
    vals.sort();
    vals.dedup();
    vals.len()
}

/// Width proxy of a box (sum of log-spans), used to pick the merge partner
/// that grows the hull least.
fn merge_cost(a: &[GenValue], b: &[GenValue]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| match hull(x, y) {
            GenValue::Suppressed => 60.0, // ~ log2 of a huge domain
            GenValue::IntRange { lo, hi } => (((hi - lo + 1) as f64).max(1.0)).log2(),
            _ => 0.0,
        })
        .sum()
}

fn assert_attainable(
    classes: &[EquivalenceClass],
    source: &Dataset,
    sensitive_col: usize,
    l: usize,
) {
    let mut all: Vec<Value> = classes
        .iter()
        .flat_map(|c| c.rows.iter().map(|&r| source.get(r, sensitive_col)))
        .collect();
    all.sort();
    all.dedup();
    assert!(
        all.len() >= l,
        "only {} distinct sensitive values released; ℓ = {l} unattainable",
        all.len()
    );
}

/// Greedily merges classes until every class has at least `l` distinct
/// values of `sensitive_col`. Returns the new release.
///
/// Deficient classes are tracked in a [`SelectionVector`] over class slots:
/// a class's diversity only changes when it absorbs another, so after each
/// merge only the merged class is re-checked (plus a bit move mirroring the
/// `swap_remove`) instead of re-scanning every class's rows. The next class
/// to fix is found with a word-skipping [`SelectionVector::next_set_bit`],
/// which visits classes in the same ascending order as the full rescan in
/// [`enforce_l_diversity_scalar`] — the two produce identical releases.
///
/// # Panics
/// Panics if the total number of distinct sensitive values in the released
/// rows is below `l` (no release can then be ℓ-diverse).
pub fn enforce_l_diversity(
    anon: &AnonymizedDataset,
    source: &Dataset,
    sensitive_col: usize,
    l: usize,
) -> AnonymizedDataset {
    let mut classes: Vec<EquivalenceClass> = anon.classes().to_vec();
    assert_attainable(&classes, source, sensitive_col, l);
    // Bit i set ⇔ classes[i] currently lacks diversity. The vector keeps its
    // original length; bits at or beyond classes.len() are always clear.
    let mut deficient = SelectionVector::from_fn(classes.len(), |i| {
        distinct_sensitive(&classes[i], source, sensitive_col) < l
    });
    while let Some(bad_idx) = deficient.next_set_bit(0) {
        if classes.len() == 1 {
            break; // single class with < l distinct — cannot happen (asserted)
        }
        // Cheapest merge partner.
        let (partner, _) = classes
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != bad_idx)
            .map(|(i, c)| (i, merge_cost(&classes[bad_idx].qi_box, &c.qi_box)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least two classes");
        let removed = bad_idx.max(partner);
        let last = classes.len() - 1;
        let absorbed = classes.swap_remove(removed);
        // Mirror the swap_remove in the bitmap: the class formerly in the
        // last slot now lives in `removed`'s slot.
        if removed != last {
            deficient.set(removed, deficient.get(last));
        }
        deficient.set(last, false);
        let keeper_idx = bad_idx.min(partner);
        let keeper = &mut classes[keeper_idx];
        keeper.qi_box = keeper
            .qi_box
            .iter()
            .zip(&absorbed.qi_box)
            .map(|(a, b)| hull(a, b))
            .collect();
        keeper.rows.extend(absorbed.rows);
        // Only the merged class's diversity changed.
        deficient.set(
            keeper_idx,
            distinct_sensitive(&classes[keeper_idx], source, sensitive_col) < l,
        );
    }
    AnonymizedDataset::new(
        source,
        anon.qi_cols().to_vec(),
        classes,
        anon.suppressed_rows().to_vec(),
        (0..anon.qi_cols().len())
            .map(|qi| anon.taxonomy(qi).cloned())
            .collect(),
    )
}

/// Reference implementation of [`enforce_l_diversity`] that re-scans every
/// class for deficiency after each merge. Kept as the oracle the
/// bitmap-tracked version is tested against.
///
/// # Panics
/// Panics if the total number of distinct sensitive values in the released
/// rows is below `l`.
pub fn enforce_l_diversity_scalar(
    anon: &AnonymizedDataset,
    source: &Dataset,
    sensitive_col: usize,
    l: usize,
) -> AnonymizedDataset {
    let mut classes: Vec<EquivalenceClass> = anon.classes().to_vec();
    assert_attainable(&classes, source, sensitive_col, l);
    while let Some(bad_idx) = classes
        .iter()
        .position(|c| distinct_sensitive(c, source, sensitive_col) < l)
    {
        if classes.len() == 1 {
            break; // single class with < l distinct — cannot happen (asserted)
        }
        // Cheapest merge partner.
        let (partner, _) = classes
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != bad_idx)
            .map(|(i, c)| (i, merge_cost(&classes[bad_idx].qi_box, &c.qi_box)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least two classes");
        let absorbed = classes.swap_remove(bad_idx.max(partner));
        let keeper_idx = bad_idx.min(partner);
        let keeper = &mut classes[keeper_idx];
        keeper.qi_box = keeper
            .qi_box
            .iter()
            .zip(&absorbed.qi_box)
            .map(|(a, b)| hull(a, b))
            .collect();
        keeper.rows.extend(absorbed.rows);
    }
    AnonymizedDataset::new(
        source,
        anon.qi_cols().to_vec(),
        classes,
        anon.suppressed_rows().to_vec(),
        (0..anon.qi_cols().len())
            .map(|qi| anon.taxonomy(qi).cloned())
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ldiversity::distinct_l_diversity;
    use crate::mondrian::{mondrian_anonymize, MondrianConfig};
    use crate::verify::is_k_anonymous;
    use rand::Rng;
    use so_data::rng::seeded_rng;
    use so_data::{AttributeDef, AttributeRole, DataType, DatasetBuilder, Schema};

    fn dataset(n: usize, n_diseases: usize, seed: u64) -> Dataset {
        let schema = Schema::new(vec![
            AttributeDef::new("zip", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("disease", DataType::Str, AttributeRole::Sensitive),
        ]);
        let mut b = DatasetBuilder::new(schema);
        let syms: Vec<_> = (0..n_diseases)
            .map(|i| b.intern(&format!("d{i}")))
            .collect();
        let mut rng = seeded_rng(seed);
        for _ in 0..n {
            b.push_row(vec![
                Value::Int(rng.gen_range(0..100_000)),
                Value::Int(rng.gen_range(0..36_500)),
                Value::Str(syms[rng.gen_range(0..n_diseases)]),
            ]);
        }
        b.finish()
    }

    #[test]
    fn enforcement_reaches_the_target_diversity() {
        let ds = dataset(400, 8, 900);
        let anon = mondrian_anonymize(&ds, &[0, 1], &MondrianConfig { k: 4 });
        let before = distinct_l_diversity(&anon, &ds, 2);
        let diverse = enforce_l_diversity(&anon, &ds, 2, 3);
        let after = distinct_l_diversity(&diverse, &ds, 2);
        assert!(after >= 3, "after {after} (before {before})");
        assert!(is_k_anonymous(&diverse, 4), "k-anonymity must survive");
        assert!(diverse.is_sound(&ds), "widened boxes must stay sound");
        assert!(diverse.is_partition());
    }

    #[test]
    fn already_diverse_release_is_untouched() {
        let ds = dataset(200, 40, 901);
        let anon = mondrian_anonymize(&ds, &[0, 1], &MondrianConfig { k: 10 });
        // With 40 uniform diseases and classes of ≥10, ℓ = 2 is essentially
        // always met already.
        let before_classes = anon.classes().len();
        let diverse = enforce_l_diversity(&anon, &ds, 2, 2);
        assert_eq!(diverse.classes().len(), before_classes);
    }

    #[test]
    #[should_panic(expected = "unattainable")]
    fn impossible_target_is_rejected() {
        let ds = dataset(50, 2, 902);
        let anon = mondrian_anonymize(&ds, &[0, 1], &MondrianConfig { k: 5 });
        let _ = enforce_l_diversity(&anon, &ds, 2, 5);
    }

    #[test]
    fn bitmap_tracking_matches_full_rescan() {
        // The bitmap-tracked merge loop must replay the oracle's merges
        // exactly: same classes, same rows, same widened boxes.
        for (n, n_diseases, k, l, seed) in [
            (400, 8, 4, 3, 900),
            (300, 5, 3, 4, 903),
            (120, 6, 2, 3, 904),
        ] {
            let ds = dataset(n, n_diseases, seed);
            let anon = mondrian_anonymize(&ds, &[0, 1], &MondrianConfig { k });
            let fast = enforce_l_diversity(&anon, &ds, 2, l);
            let slow = enforce_l_diversity_scalar(&anon, &ds, 2, l);
            assert_eq!(fast.classes().len(), slow.classes().len());
            for (a, b) in fast.classes().iter().zip(slow.classes()) {
                assert_eq!(a.rows, b.rows);
                assert_eq!(a.qi_box, b.qi_box);
            }
        }
    }

    #[test]
    fn hull_behaviour() {
        let a = GenValue::IntRange { lo: 0, hi: 9 };
        let b = GenValue::IntRange { lo: 20, hi: 29 };
        assert_eq!(hull(&a, &b), GenValue::IntRange { lo: 0, hi: 29 });
        let e = GenValue::Exact(Value::Int(5));
        assert_eq!(hull(&e, &b), GenValue::IntRange { lo: 5, hi: 29 });
        assert_eq!(hull(&a, &a), a.clone());
        // Incomparable → suppressed.
        let s1 = GenValue::Exact(Value::Bool(true));
        assert_eq!(hull(&s1, &a), GenValue::Suppressed);
    }
}
