//! t-closeness (Li–Li–Venkatasubramanian), the second k-anonymity variant
//! named in footnote 3. A release is t-close when, in every equivalence
//! class, the distribution of the sensitive attribute is within distance `t`
//! of its global distribution:
//!
//! * categorical sensitive attributes — total-variation distance;
//! * ordered (numeric) sensitive attributes — the ordered earth-mover's
//!   distance (mean absolute cumulative difference over the value ranks).

use std::collections::HashMap;

use so_data::{Dataset, Value};

use crate::generalized::AnonymizedDataset;

fn value_distribution(values: &[Value]) -> HashMap<Value, f64> {
    let mut counts: HashMap<Value, f64> = HashMap::new();
    for v in values {
        *counts.entry(*v).or_insert(0.0) += 1.0;
    }
    let n = values.len() as f64;
    for c in counts.values_mut() {
        *c /= n;
    }
    counts
}

fn column_values(source: &Dataset, rows: impl Iterator<Item = usize>, col: usize) -> Vec<Value> {
    rows.map(|r| source.get(r, col)).collect()
}

/// The t-closeness level of a release for a *categorical* sensitive column:
/// the maximum, over classes, of the total-variation distance between the
/// class distribution and the global distribution. Lower is better; 0 means
/// every class mirrors the population exactly.
pub fn t_closeness_categorical(
    anon: &AnonymizedDataset,
    source: &Dataset,
    sensitive_col: usize,
) -> f64 {
    let global = value_distribution(&column_values(source, 0..source.n_rows(), sensitive_col));
    anon.classes()
        .iter()
        .map(|c| {
            let local = value_distribution(&column_values(
                source,
                c.rows.iter().copied(),
                sensitive_col,
            ));
            // TV distance = ½ Σ |p - q| over the union of supports.
            let mut keys: Vec<&Value> = global.keys().chain(local.keys()).collect();
            keys.sort();
            keys.dedup();
            0.5 * keys
                .into_iter()
                .map(|k| {
                    (global.get(k).copied().unwrap_or(0.0) - local.get(k).copied().unwrap_or(0.0))
                        .abs()
                })
                .sum::<f64>()
        })
        .fold(0.0, f64::max)
}

/// The t-closeness level for an *ordered numeric* sensitive column, using
/// the standard ordered-EMD: sort the global distinct values, compute the
/// mean absolute difference of cumulative distributions over the ranks,
/// normalized by `(m − 1)` ground distance units.
pub fn t_closeness_numeric(
    anon: &AnonymizedDataset,
    source: &Dataset,
    sensitive_col: usize,
) -> f64 {
    let mut domain: Vec<i64> = (0..source.n_rows())
        .filter_map(|r| source.get(r, sensitive_col).as_int())
        .collect();
    domain.sort_unstable();
    domain.dedup();
    let m = domain.len();
    if m <= 1 {
        return 0.0;
    }
    let rank: HashMap<i64, usize> = domain.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let hist = |rows: &mut dyn Iterator<Item = usize>| -> Vec<f64> {
        let mut h = vec![0.0; m];
        let mut n = 0.0;
        for r in rows {
            if let Some(v) = source.get(r, sensitive_col).as_int() {
                h[rank[&v]] += 1.0;
                n += 1.0;
            }
        }
        if n > 0.0 {
            for x in &mut h {
                *x /= n;
            }
        }
        h
    };
    let global = hist(&mut (0..source.n_rows()));
    anon.classes()
        .iter()
        .map(|c| {
            let local = hist(&mut c.rows.iter().copied());
            // Ordered EMD: Σ |cumulative difference| / (m - 1).
            let mut acc = 0.0;
            let mut cum = 0.0;
            for i in 0..m {
                cum += local[i] - global[i];
                acc += cum.abs();
            }
            acc / (m as f64 - 1.0)
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generalized::{EquivalenceClass, GenValue};
    use so_data::{AttributeDef, AttributeRole, DataType, DatasetBuilder, Schema};

    fn numeric_release(values: &[i64], classes: &[Vec<usize>]) -> (Dataset, AnonymizedDataset) {
        let schema = Schema::new(vec![
            AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("salary", DataType::Int, AttributeRole::Sensitive),
        ]);
        let mut b = DatasetBuilder::new(schema);
        for (i, &v) in values.iter().enumerate() {
            b.push_row(vec![Value::Int(i as i64), Value::Int(v)]);
        }
        let ds = b.finish();
        let classes = classes
            .iter()
            .map(|rows| EquivalenceClass {
                rows: rows.clone(),
                qi_box: vec![GenValue::Suppressed],
            })
            .collect();
        let anon = AnonymizedDataset::new(&ds, vec![0], classes, vec![], vec![None]);
        (ds, anon)
    }

    fn categorical_release(
        values: &[&str],
        classes: &[Vec<usize>],
    ) -> (Dataset, AnonymizedDataset) {
        let schema = Schema::new(vec![
            AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("disease", DataType::Str, AttributeRole::Sensitive),
        ]);
        let mut b = DatasetBuilder::new(schema);
        for (i, s) in values.iter().enumerate() {
            let sym = b.intern(s);
            b.push_row(vec![Value::Int(i as i64), Value::Str(sym)]);
        }
        let ds = b.finish();
        let classes = classes
            .iter()
            .map(|rows| EquivalenceClass {
                rows: rows.clone(),
                qi_box: vec![GenValue::Suppressed],
            })
            .collect();
        let anon = AnonymizedDataset::new(&ds, vec![0], classes, vec![], vec![None]);
        (ds, anon)
    }

    #[test]
    fn perfectly_mirrored_classes_have_zero_distance() {
        let (ds, anon) = categorical_release(&["A", "B", "A", "B"], &[vec![0, 1], vec![2, 3]]);
        assert!(t_closeness_categorical(&anon, &ds, 1) < 1e-12);
    }

    #[test]
    fn homogeneous_class_maximizes_tv() {
        // Global: 50/50. A pure-A class has TV distance 0.5.
        let (ds, anon) = categorical_release(&["A", "A", "B", "B"], &[vec![0, 1], vec![2, 3]]);
        let t = t_closeness_categorical(&anon, &ds, 1);
        assert!((t - 0.5).abs() < 1e-12, "t = {t}");
    }

    #[test]
    fn numeric_emd_detects_order_skew() {
        // Salaries 1..4, global uniform. Class {1,2} is skewed low.
        let (ds, anon) = numeric_release(&[1, 2, 3, 4], &[vec![0, 1], vec![2, 3]]);
        let t = t_closeness_numeric(&anon, &ds, 1);
        // Cumulative diffs for class {1,2}: (.25,.5,.25,0)/3 → 1/3.
        assert!((t - 1.0 / 3.0).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn numeric_emd_smaller_for_interleaved_classes() {
        let (ds, skewed) = numeric_release(&[1, 2, 3, 4], &[vec![0, 1], vec![2, 3]]);
        let (_, mixed) = numeric_release(&[1, 2, 3, 4], &[vec![0, 3], vec![1, 2]]);
        let t_skew = t_closeness_numeric(&skewed, &ds, 1);
        let t_mixed = t_closeness_numeric(&mixed, &ds, 1);
        assert!(t_mixed < t_skew, "mixed {t_mixed} vs skewed {t_skew}");
    }

    #[test]
    fn single_valued_domain_is_trivially_close() {
        let (ds, anon) = numeric_release(&[7, 7, 7, 7], &[vec![0, 1], vec![2, 3]]);
        assert_eq!(t_closeness_numeric(&anon, &ds, 1), 0.0);
    }
}
