//! Property-based tests for the census pipeline.

use proptest::prelude::*;
use so_census::reconstruct::{records_matched, records_matched_within};
use so_census::{reconstruct_block, tabulate_block, Person, Race, Sex, SolverBudget};

fn arb_person() -> impl Strategy<Value = Person> {
    (0u8..100, any::<bool>(), 0usize..5).prop_map(|(age, sex, race)| Person {
        age,
        sex: if sex { Sex::F } else { Sex::M },
        race: Race::ALL[race],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tabulation invariants: counts sum to the block size; mean/median lie
    /// in the age range; the exact age sum is recovered for small blocks.
    #[test]
    fn tabulation_invariants(people in proptest::collection::vec(arb_person(), 1..12)) {
        let t = tabulate_block(&people);
        prop_assert_eq!(t.total, people.len());
        let cell_sum: usize = t
            .race_sex_band
            .iter()
            .flat_map(|bysex| bysex.iter())
            .flat_map(|bands| bands.iter())
            .sum();
        prop_assert_eq!(cell_sum, people.len());
        let ages: Vec<u8> = people.iter().map(|p| p.age).collect();
        let (lo, hi) = (
            *ages.iter().min().unwrap() as f64,
            *ages.iter().max().unwrap() as f64,
        );
        prop_assert!(t.mean_age >= lo - 0.01 && t.mean_age <= hi + 0.01);
        prop_assert!(t.median_age >= lo && t.median_age <= hi);
        let truth_sum: u32 = people.iter().map(|p| u32::from(p.age)).sum();
        prop_assert_eq!(t.exact_age_sum(), Some(truth_sum));
    }

    /// Any reconstruction guess reproduces the exact published tables, and
    /// a Unique outcome equals the true block up to record order.
    #[test]
    fn reconstruction_soundness(people in proptest::collection::vec(arb_person(), 1..8)) {
        let t = tabulate_block(&people);
        let out = reconstruct_block(&t, &SolverBudget::default());
        let guess = out.guess().expect("exact tables are always solvable");
        prop_assert_eq!(tabulate_block(guess), t.clone());
        if out.is_unique() {
            let mut a = people.clone();
            let mut b = guess.to_vec();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b, "unique solution must be the truth");
        }
        // The guess never contains more records than the block.
        prop_assert_eq!(guess.len(), people.len());
    }

    /// records_matched_within is monotone in the tolerance and bounded by
    /// the block size.
    #[test]
    fn match_metric_monotone(
        a in proptest::collection::vec(arb_person(), 0..10),
        b in proptest::collection::vec(arb_person(), 0..10),
    ) {
        let exact = records_matched(&a, &b);
        let tol1 = records_matched_within(&a, &b, 1);
        let tol5 = records_matched_within(&a, &b, 5);
        prop_assert!(exact <= tol1);
        prop_assert!(tol1 <= tol5);
        prop_assert!(tol5 <= a.len().min(b.len()));
        // Symmetry.
        prop_assert_eq!(tol1, records_matched_within(&b, &a, 1));
        // Self-match is total.
        prop_assert_eq!(records_matched(&a, &a), a.len());
    }
}
