//! Record swapping — the 2010-era disclosure-avoidance method.
//!
//! Before moving to differential privacy for 2020, the Census Bureau's
//! primary protection was *targeted record swapping*: exchange a small
//! fraction of households between nearby geographies and tabulate the
//! swapped file exactly. The paper's point — made concrete by experiment
//! E12 — is that this defense did NOT prevent the reconstruction attack:
//! the tables remain exact tabulations of a microdata file that is mostly
//! identical to the truth, so the solver still recovers most real people.

use rand::Rng;

use crate::microdata::{CensusData, Person};

/// Swapping parameters.
#[derive(Debug, Clone, Copy)]
pub struct SwapConfig {
    /// Fraction of people whose records are swapped to another block.
    pub swap_rate: f64,
}

impl Default for SwapConfig {
    fn default() -> Self {
        SwapConfig { swap_rate: 0.05 }
    }
}

/// Applies random pairwise swapping across blocks: each selected person is
/// exchanged with a random person from a different block (both move). The
/// swapped file has exactly the same national totals — the invariant real
/// swapping maintained — while block-level tables become slightly wrong.
///
/// Returns the swapped data plus the number of swap pairs performed.
pub fn swap_records<R: Rng + ?Sized>(
    census: &CensusData,
    config: &SwapConfig,
    rng: &mut R,
) -> (CensusData, usize) {
    assert!(
        (0.0..=1.0).contains(&config.swap_rate),
        "bad swap rate {}",
        config.swap_rate
    );
    let mut blocks: Vec<Vec<Person>> = (0..census.n_blocks())
        .map(|b| census.block(b).to_vec())
        .collect();
    if blocks.len() < 2 {
        let data = CensusData::from_blocks(blocks);
        return (data, 0);
    }
    let population: usize = blocks.iter().map(Vec::len).sum();
    let target_pairs = ((config.swap_rate * population as f64) / 2.0).round() as usize;
    let mut pairs = 0usize;
    let mut attempts = 0usize;
    while pairs < target_pairs && attempts < target_pairs * 50 + 10 {
        attempts += 1;
        let b1 = rng.gen_range(0..blocks.len());
        let b2 = rng.gen_range(0..blocks.len());
        if b1 == b2 || blocks[b1].is_empty() || blocks[b2].is_empty() {
            continue;
        }
        let i1 = rng.gen_range(0..blocks[b1].len());
        let i2 = rng.gen_range(0..blocks[b2].len());
        let tmp = blocks[b1][i1];
        blocks[b1][i1] = blocks[b2][i2];
        blocks[b2][i2] = tmp;
        pairs += 1;
    }
    (CensusData::from_blocks(blocks), pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microdata::CensusConfig;
    use so_data::rng::seeded_rng;

    fn census() -> CensusData {
        CensusData::generate(
            &CensusConfig {
                n_blocks: 40,
                ..CensusConfig::default()
            },
            &mut seeded_rng(600),
        )
    }

    #[test]
    fn swapping_preserves_national_totals() {
        let c = census();
        let (swapped, pairs) =
            swap_records(&c, &SwapConfig { swap_rate: 0.1 }, &mut seeded_rng(601));
        assert!(pairs > 0);
        assert_eq!(swapped.population(), c.population());
        // National multiset of persons is unchanged.
        let mut before: Vec<Person> = (0..c.n_blocks())
            .flat_map(|b| c.block(b).to_vec())
            .collect();
        let mut after: Vec<Person> = (0..swapped.n_blocks())
            .flat_map(|b| swapped.block(b).to_vec())
            .collect();
        before.sort();
        after.sort();
        assert_eq!(before, after);
    }

    #[test]
    fn swapping_changes_roughly_the_requested_fraction() {
        let c = census();
        let (swapped, _) = swap_records(&c, &SwapConfig { swap_rate: 0.2 }, &mut seeded_rng(602));
        let mut moved = 0usize;
        for b in 0..c.n_blocks() {
            moved += c
                .block(b)
                .iter()
                .zip(swapped.block(b))
                .filter(|(x, y)| x != y)
                .count();
        }
        let frac = moved as f64 / c.population() as f64;
        // Each pair moves 2 records; collisions and same-value swaps allow
        // slack.
        assert!((0.1..=0.3).contains(&frac), "moved fraction {frac}");
    }

    #[test]
    fn zero_rate_is_identity() {
        let c = census();
        let (swapped, pairs) =
            swap_records(&c, &SwapConfig { swap_rate: 0.0 }, &mut seeded_rng(603));
        assert_eq!(pairs, 0);
        for b in 0..c.n_blocks() {
            assert_eq!(c.block(b), swapped.block(b));
        }
    }
}
