#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # so-census — census publication and reconstruction
//!
//! Executable stand-in for the paper's headline real-world example: the
//! reconstruction of the 2010 Decennial Census from its published statistical
//! tables (Garfinkel–Abowd–Martindale, cited as \[24\]; results quoted in §1:
//! exact reconstruction for 71% of the population, re-identification of 17%
//! after matching with commercial databases, versus a prior risk estimate of
//! 0.003%).
//!
//! The pipeline mirrors the real attack at block scale:
//!
//! 1. [`microdata`] — synthetic block-level microdata (age, sex, race per
//!    person, blocks of realistic small sizes);
//! 2. [`tabulate`] — a publication system releasing census-style tables per
//!    block: total count, sex × age-decade × race counts (the P12A-I
//!    shape), mean age (rounded to 2 decimals) and median age;
//! 3. [`reconstruct`] — a constraint solver (depth-first search with sum and
//!    median pruning) that recovers the block's microdata from the tables
//!    alone, and reports whether the solution is *unique*;
//! 4. [`mod@reidentify`] — linkage of reconstructed records against a synthetic
//!    commercial database (name/id + block + age + sex) to attach
//!    identities and learn race — the step that turns reconstruction into
//!    re-identification;
//! 5. [`swapping`] — the 2010-era defense (targeted record swapping), which
//!    the reconstruction attack defeats — exactly the historical outcome
//!    the paper recounts;
//! 6. [`dp_publish`] — the same tables released through ε-DP geometric
//!    noise, demonstrating the remedy: the constraint system stops pinning
//!    down the truth and the attack collapses.

pub mod dp_publish;
pub mod microdata;
pub mod reconstruct;
pub mod reidentify;
pub mod swapping;
pub mod tabulate;

pub use dp_publish::{dp_tabulate_block, DpTablesConfig};
pub use microdata::{CensusConfig, CensusData, Person, Race, Sex};
pub use reconstruct::{reconstruct_block, ReconOutcome, SolverBudget};
pub use reidentify::{commercial_database, reidentify, CommercialConfig, ReidentifyOutcome};
pub use swapping::{swap_records, SwapConfig};
pub use tabulate::{tabulate_block, tabulate_block_planned, tabulate_block_scalar, BlockTables};
