//! Constraint-based reconstruction of block microdata from published tables.
//!
//! "These attacks on statistical databases are no longer a theoretical
//! danger" — the solver below recovers person records from nothing but the
//! tables `so-census::tabulate` publishes. The constraint system per block:
//!
//! * the (race, sex, five-year band) cell counts fix how many people of
//!   each race/sex fall in each age band;
//! * the mean (rounded to 2 decimals) pins the exact integer age sum for
//!   any block under 100 people;
//! * the median pins the middle order statistic(s).
//!
//! A depth-first search assigns ages within each cell in a fixed
//! midpoint-first order (multiset semantics — permutations are never
//! revisited; midpoint-first makes the attacker's first solution the
//! population-plausible one), pruning on achievable age-sum bounds, and
//! counts distinct solutions up to 2. A unique solution is an *exact*
//! reconstruction; even when several solutions exist they differ by small
//! age transfers inside five-year bands, which is why the paper's metric —
//! *"age up to one year difference for 71% of the US population"* — is the
//! one reported by [`records_matched_within`].

use crate::microdata::{Person, Race, Sex};
use crate::tabulate::{BlockTables, N_BANDS};

/// Node budget for the search.
#[derive(Debug, Clone, Copy)]
pub struct SolverBudget {
    /// Maximum DFS nodes expanded before giving up.
    pub max_nodes: u64,
}

impl Default for SolverBudget {
    fn default() -> Self {
        SolverBudget {
            max_nodes: 5_000_000,
        }
    }
}

/// Result of reconstructing one block.
#[derive(Debug, Clone)]
pub enum ReconOutcome {
    /// Exactly one microdata multiset is consistent with the tables.
    Unique(Vec<Person>),
    /// At least two distinct solutions exist; `example` is the first found.
    Multiple {
        /// The first solution found (the attacker's guess).
        example: Vec<Person>,
    },
    /// No assignment satisfies the constraints (only possible for noisy /
    /// inconsistent tables).
    Infeasible,
    /// The node budget ran out before the search completed.
    BudgetExceeded {
        /// A solution found before exhaustion, if any.
        example: Option<Vec<Person>>,
    },
}

impl ReconOutcome {
    /// The attacker's working guess, if any solution was found.
    pub fn guess(&self) -> Option<&[Person]> {
        match self {
            ReconOutcome::Unique(s) => Some(s),
            ReconOutcome::Multiple { example } => Some(example),
            ReconOutcome::BudgetExceeded { example } => example.as_deref(),
            ReconOutcome::Infeasible => None,
        }
    }

    /// True iff the block was pinned down exactly.
    pub fn is_unique(&self) -> bool {
        matches!(self, ReconOutcome::Unique(_))
    }
}

/// One (race, sex, band) cell to fill with ages.
#[derive(Debug, Clone)]
struct Cell {
    race: Race,
    sex: Sex,
    /// Candidate ages in search order (midpoint-first within the band).
    candidates: Vec<u8>,
    /// Min/max candidate age (for sum pruning).
    age_lo: u8,
    age_hi: u8,
    count: usize,
}

struct Search {
    cells: Vec<Cell>,
    sum_lo: i64,
    sum_hi: i64,
    median: Option<f64>,
    budget: u64,
    nodes: u64,
    /// Distinct solutions found so far (at most 2 kept).
    solutions: Vec<Vec<Person>>,
}

impl Search {
    /// Suffix minimal/maximal achievable age sums for cells `from..`.
    fn suffix_bounds(cells: &[Cell]) -> (Vec<i64>, Vec<i64>) {
        let mut min_s = vec![0i64; cells.len() + 1];
        let mut max_s = vec![0i64; cells.len() + 1];
        for i in (0..cells.len()).rev() {
            min_s[i] = min_s[i + 1] + i64::from(cells[i].age_lo) * cells[i].count as i64;
            max_s[i] = max_s[i + 1] + i64::from(cells[i].age_hi) * cells[i].count as i64;
        }
        (min_s, max_s)
    }

    fn run(&mut self) {
        let (min_s, max_s) = Self::suffix_bounds(&self.cells);
        let mut assignment: Vec<Vec<u8>> = self
            .cells
            .iter()
            .map(|c| Vec::with_capacity(c.count))
            .collect();
        self.dfs(0, 0, &min_s, &max_s, &mut assignment);
    }

    fn dfs(
        &mut self,
        cell_idx: usize,
        partial_sum: i64,
        min_s: &[i64],
        max_s: &[i64],
        assignment: &mut Vec<Vec<u8>>,
    ) {
        if self.solutions.len() >= 2 || self.nodes >= self.budget {
            return;
        }
        self.nodes += 1;
        if cell_idx == self.cells.len() {
            if partial_sum < self.sum_lo || partial_sum > self.sum_hi {
                return;
            }
            if let Some(med) = self.median {
                let mut ages: Vec<u8> = assignment.iter().flatten().copied().collect();
                ages.sort_unstable();
                if (crate::tabulate::median_of_sorted(&ages) - med).abs() > 1e-9 {
                    return;
                }
            }
            let mut sol: Vec<Person> = Vec::new();
            for (cell, ages) in self.cells.iter().zip(assignment.iter()) {
                for &age in ages {
                    sol.push(Person {
                        age,
                        sex: cell.sex,
                        race: cell.race,
                    });
                }
            }
            sol.sort();
            if !self.solutions.contains(&sol) {
                self.solutions.push(sol);
            }
            return;
        }
        self.fill_cell(cell_idx, 0, 0, partial_sum, min_s, max_s, assignment);
    }

    #[allow(clippy::too_many_arguments)]
    fn fill_cell(
        &mut self,
        cell_idx: usize,
        slot: usize,
        min_order: usize,
        partial_sum: i64,
        min_s: &[i64],
        max_s: &[i64],
        assignment: &mut Vec<Vec<u8>>,
    ) {
        if self.solutions.len() >= 2 || self.nodes >= self.budget {
            return;
        }
        let count = self.cells[cell_idx].count;
        if slot == count {
            self.dfs(cell_idx + 1, partial_sum, min_s, max_s, assignment);
            return;
        }
        self.nodes += 1;
        let remaining_here = (count - slot - 1) as i64;
        let n_candidates = self.cells[cell_idx].candidates.len();
        for order in min_order..n_candidates {
            let age = self.cells[cell_idx].candidates[order];
            let s = partial_sum + i64::from(age);
            // Bounds: remaining slots of this cell use its full age range
            // (slightly loose, but cells are only 5 wide); then suffix cells.
            let lo = i64::from(self.cells[cell_idx].age_lo);
            let hi = i64::from(self.cells[cell_idx].age_hi);
            let rest_min = s + remaining_here * lo + min_s[cell_idx + 1];
            let rest_max = s + remaining_here * hi + max_s[cell_idx + 1];
            if rest_min > self.sum_hi || rest_max < self.sum_lo {
                continue;
            }
            assignment[cell_idx].push(age);
            self.fill_cell(cell_idx, slot + 1, order, s, min_s, max_s, assignment);
            assignment[cell_idx].pop();
        }
    }
}

/// Midpoint-first order of the ages in band `b`: the attacker prefers the
/// centre of the band (matching the population prior) when several ages are
/// consistent.
fn band_candidates(band: usize) -> Vec<u8> {
    let lo = (band * 5) as u8;
    let hi = (band * 5 + 4).min(99) as u8;
    let mid = lo + (hi - lo) / 2;
    let mut order: Vec<u8> = vec![mid];
    for delta in 1..=4u8 {
        if mid >= delta && mid - delta >= lo {
            order.push(mid - delta);
        }
        if mid + delta <= hi {
            order.push(mid + delta);
        }
    }
    order
}

/// Reconstructs a block from exact published tables (cell counts, mean,
/// median).
pub fn reconstruct_block(tables: &BlockTables, budget: &SolverBudget) -> ReconOutcome {
    let (sum_lo, sum_hi) = match tables.exact_age_sum() {
        Some(s) => (i64::from(s), i64::from(s)),
        None => {
            // Mean rounding leaves an interval; derive it.
            let approx = tables.mean_age * tables.total as f64;
            let slack = 0.005 * tables.total as f64;
            (
                (approx - slack).ceil() as i64,
                (approx + slack).floor() as i64,
            )
        }
    };
    run_search(
        &tables.race_sex_band,
        sum_lo,
        sum_hi,
        Some(tables.median_age),
        budget,
    )
}

/// Reconstructs from band cell counts alone (the DP-release case: no usable
/// mean or median). The solution space is generally large; the attacker
/// gets the first (midpoint-first) consistent assignment.
pub fn reconstruct_counts_only(
    race_sex_band: &[[[usize; N_BANDS]; 2]; 5],
    budget: &SolverBudget,
) -> ReconOutcome {
    run_search(race_sex_band, i64::MIN / 2, i64::MAX / 2, None, budget)
}

/// Core entry: reconstruct subject to band cell counts, an age-sum
/// interval, and an optional exact median.
pub fn reconstruct_with_constraints(
    race_sex_band: &[[[usize; N_BANDS]; 2]; 5],
    sum_lo: i64,
    sum_hi: i64,
    median: Option<f64>,
    budget: &SolverBudget,
) -> ReconOutcome {
    run_search(race_sex_band, sum_lo, sum_hi, median, budget)
}

fn run_search(
    race_sex_band: &[[[usize; N_BANDS]; 2]; 5],
    sum_lo: i64,
    sum_hi: i64,
    median: Option<f64>,
    budget: &SolverBudget,
) -> ReconOutcome {
    let mut cells = Vec::new();
    for race in Race::ALL {
        for sex in Sex::ALL {
            for (b, &count) in race_sex_band[race.index()][sex.index()].iter().enumerate() {
                if count > 0 {
                    cells.push(Cell {
                        race,
                        sex,
                        candidates: band_candidates(b),
                        age_lo: (b * 5) as u8,
                        age_hi: (b * 5 + 4).min(99) as u8,
                        count,
                    });
                }
            }
        }
    }
    let mut search = Search {
        cells,
        sum_lo,
        sum_hi,
        median,
        budget: budget.max_nodes,
        nodes: 0,
        solutions: Vec::new(),
    };
    search.run();
    let exhausted = search.nodes >= search.budget;
    let mut sols = search.solutions;
    match (sols.len(), exhausted) {
        (0, false) => ReconOutcome::Infeasible,
        (0, true) => ReconOutcome::BudgetExceeded { example: None },
        (1, false) => ReconOutcome::Unique(sols.pop().expect("one")),
        (1, true) => ReconOutcome::BudgetExceeded {
            example: sols.pop(),
        },
        (_, _) => ReconOutcome::Multiple {
            example: sols.swap_remove(0),
        },
    }
}

/// Size of the multiset intersection between the true block and a guess —
/// the number of person records reconstructed *exactly*.
pub fn records_matched(truth: &[Person], guess: &[Person]) -> usize {
    records_matched_within(truth, guess, 0)
}

/// Number of true records matched by the guess with the same race and sex
/// and age within `age_tol` years (the paper's "age up to one year
/// difference" metric at `age_tol = 1`). Computed as an optimal one-to-one
/// matching, which for interval tolerance on a line is achieved greedily on
/// sorted ages within each (race, sex) group.
pub fn records_matched_within(truth: &[Person], guess: &[Person], age_tol: u8) -> usize {
    use std::collections::HashMap;
    let mut truth_groups: HashMap<(Race, Sex), Vec<u8>> = HashMap::new();
    for p in truth {
        truth_groups.entry((p.race, p.sex)).or_default().push(p.age);
    }
    let mut guess_groups: HashMap<(Race, Sex), Vec<u8>> = HashMap::new();
    for p in guess {
        guess_groups.entry((p.race, p.sex)).or_default().push(p.age);
    }
    let mut matched = 0usize;
    for (key, mut t_ages) in truth_groups {
        let Some(g_ages) = guess_groups.get_mut(&key) else {
            continue;
        };
        t_ages.sort_unstable();
        g_ages.sort_unstable();
        // Greedy two-pointer matching with tolerance.
        let (mut i, mut j) = (0usize, 0usize);
        while i < t_ages.len() && j < g_ages.len() {
            let dt = i16::from(t_ages[i]) - i16::from(g_ages[j]);
            if dt.unsigned_abs() as u8 <= age_tol {
                matched += 1;
                i += 1;
                j += 1;
            } else if dt > 0 {
                j += 1;
            } else {
                i += 1;
            }
        }
    }
    matched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microdata::{CensusConfig, CensusData};
    use crate::tabulate::tabulate_block;
    use so_data::rng::seeded_rng;

    fn p(age: u8, sex: Sex, race: Race) -> Person {
        Person { age, sex, race }
    }

    #[test]
    fn singleton_block_reconstructed_exactly() {
        let truth = vec![p(42, Sex::F, Race::Asian)];
        let t = tabulate_block(&truth);
        match reconstruct_block(&t, &SolverBudget::default()) {
            ReconOutcome::Unique(sol) => assert_eq!(sol, truth),
            other => panic!("expected unique, got {other:?}"),
        }
    }

    #[test]
    fn band_candidates_cover_band_midpoint_first() {
        let c = band_candidates(6); // ages 30..=34
        assert_eq!(c[0], 32);
        let mut sorted = c.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![30, 31, 32, 33, 34]);
    }

    #[test]
    fn pair_same_cell_reconstructed_exactly() {
        // Two men in the same 5-year band: sum pins a+b, and distinct cells
        // aren't needed — ambiguity is only the split of the sum within the
        // band, which the uniqueness check reports honestly.
        let truth = vec![p(31, Sex::M, Race::White), p(35, Sex::M, Race::White)];
        let t = tabulate_block(&truth);
        let out = reconstruct_block(&t, &SolverBudget::default());
        let guess = out.guess().expect("solvable");
        assert_eq!(tabulate_block(guess), t);
        // 31 ∈ band 6, 35 ∈ band 7 — singleton cells, sum 66. Candidates:
        // a ∈ [30,34], b ∈ [35,39], a+b = 66 → (31,35),(30,36)... but wait
        // the *median* 33 = mean adds nothing for pairs; alternatives
        // remain, yet every alternative is within ±1 of the truth.
        assert_eq!(records_matched_within(&truth, guess, 1), 2);
    }

    #[test]
    fn guesses_always_satisfy_the_tables() {
        let data = CensusData::generate(
            &CensusConfig {
                n_blocks: 30,
                ..CensusConfig::default()
            },
            &mut seeded_rng(90),
        );
        for b in 0..data.n_blocks() {
            let t = tabulate_block(data.block(b));
            let out = reconstruct_block(&t, &SolverBudget::default());
            if let Some(guess) = out.guess() {
                assert_eq!(tabulate_block(guess), t, "block {b}");
            } else {
                panic!("block {b}: exact tables cannot be infeasible");
            }
        }
    }

    #[test]
    fn most_records_recovered_within_one_year() {
        let data = CensusData::generate(
            &CensusConfig {
                n_blocks: 60,
                block_size_lo: 2,
                block_size_hi: 9,
                ..CensusConfig::default()
            },
            &mut seeded_rng(91),
        );
        let mut exact = 0usize;
        let mut within_one = 0usize;
        let mut total = 0usize;
        for b in 0..data.n_blocks() {
            let truth = data.block(b);
            let t = tabulate_block(truth);
            let out = reconstruct_block(&t, &SolverBudget::default());
            if let Some(g) = out.guess() {
                exact += records_matched(truth, g);
                within_one += records_matched_within(truth, g, 1);
            }
            total += truth.len();
        }
        // Shape target (paper: 71% with age within one year for the real
        // 2010 attack).
        let frac1 = within_one as f64 / total as f64;
        assert!(frac1 >= 0.7, "only {frac1} recovered within ±1 year");
        assert!(exact <= within_one);
        let frac0 = exact as f64 / total as f64;
        assert!(frac0 >= 0.3, "exact rate {frac0}");
    }

    #[test]
    fn counts_only_reconstruction_is_ambiguous() {
        let truth = vec![p(31, Sex::M, Race::White), p(35, Sex::M, Race::White)];
        let t = tabulate_block(&truth);
        let out = reconstruct_counts_only(&t.race_sex_band, &SolverBudget::default());
        assert!(
            matches!(out, ReconOutcome::Multiple { .. }),
            "without mean/median the ages float: {out:?}"
        );
    }

    #[test]
    fn inconsistent_tables_are_infeasible() {
        let truth = vec![p(20, Sex::F, Race::Black)];
        let mut t = tabulate_block(&truth);
        t.mean_age = 95.0; // impossible for a 20-something block
        let out = reconstruct_block(&t, &SolverBudget::default());
        assert!(matches!(out, ReconOutcome::Infeasible));
    }

    #[test]
    fn budget_exhaustion_reported() {
        let truth: Vec<Person> = (0..12).map(|i| p(20 + i, Sex::F, Race::White)).collect();
        let t = tabulate_block(&truth);
        let out = reconstruct_block(&t, &SolverBudget { max_nodes: 10 });
        assert!(matches!(out, ReconOutcome::BudgetExceeded { .. }));
    }

    #[test]
    fn records_matched_is_multiset_intersection() {
        let a = vec![
            p(30, Sex::F, Race::White),
            p(30, Sex::F, Race::White),
            p(40, Sex::M, Race::Black),
        ];
        let b = vec![
            p(30, Sex::F, Race::White),
            p(41, Sex::M, Race::Black),
            p(30, Sex::F, Race::White),
        ];
        assert_eq!(records_matched(&a, &b), 2);
        assert_eq!(records_matched_within(&a, &b, 1), 3);
        assert_eq!(records_matched(&a, &a), 3);
        assert_eq!(records_matched(&a, &[]), 0);
    }

    #[test]
    fn tolerance_matching_is_one_to_one() {
        // One guessed record cannot match two true records.
        let truth = vec![p(30, Sex::F, Race::White), p(31, Sex::F, Race::White)];
        let guess = vec![p(30, Sex::F, Race::White)];
        assert_eq!(records_matched_within(&truth, &guess, 1), 1);
    }
}
