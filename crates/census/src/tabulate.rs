//! The publication system: census-style tables per block.
//!
//! Modeled on the 2010 SF1 tables the real attack consumed: a total count
//! (P1), sex-by-five-year-age-band counts *per race* (the P12A–I family —
//! its race × sex × age coupling is what makes joint reconstruction
//! possible), and summary statistics of age (mean rounded to two decimals
//! and median, as the Census Bureau published). Exact single years of age
//! are never released — the attack recovers them anyway.

use so_data::SelectionVector;

use crate::microdata::{Person, Race, Sex};

/// Number of five-year age bands (ages 0–99).
pub const N_BANDS: usize = 20;

/// Published tables for one block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockTables {
    /// P1: total population of the block.
    pub total: usize,
    /// P12A-I: counts by race × sex × five-year age band.
    pub race_sex_band: [[[usize; N_BANDS]; 2]; 5],
    /// Mean age, rounded to 2 decimal places.
    pub mean_age: f64,
    /// Median age (lower-interpolated to 0.5 precision, as published).
    pub median_age: f64,
}

impl BlockTables {
    /// Count for a `(race, sex, band)` cell.
    pub fn cell(&self, race: Race, sex: Sex, band: usize) -> usize {
        self.race_sex_band[race.index()][sex.index()][band]
    }

    /// Marginal count by sex.
    pub fn by_sex(&self, sex: Sex) -> usize {
        self.race_sex_band
            .iter()
            .map(|by_sex| by_sex[sex.index()].iter().sum::<usize>())
            .sum()
    }

    /// Marginal count by race.
    pub fn by_race(&self, race: Race) -> usize {
        self.race_sex_band[race.index()]
            .iter()
            .map(|d| d.iter().sum::<usize>())
            .sum()
    }

    /// The exact age sum recoverable from the rounded mean: `mean` is
    /// rounded to 2 decimals, so the true sum lies within `±0.005·total` of
    /// `mean·total`; for block sizes below 100 that pins the integer sum
    /// exactly.
    pub fn exact_age_sum(&self) -> Option<u32> {
        let approx = self.mean_age * self.total as f64;
        let candidate = approx.round();
        let slack = 0.005 * self.total as f64 + 1e-9;
        if (approx - candidate).abs() <= slack {
            Some(candidate as u32)
        } else {
            None
        }
    }
}

/// Median with 0.5 precision: middle element (odd) or average of the two
/// middles (even).
pub fn median_of_sorted(ages: &[u8]) -> f64 {
    assert!(!ages.is_empty());
    debug_assert!(ages.windows(2).all(|w| w[0] <= w[1]));
    let n = ages.len();
    if n % 2 == 1 {
        f64::from(ages[n / 2])
    } else {
        f64::from(u16::from(ages[n / 2 - 1]) + u16::from(ages[n / 2])) / 2.0
    }
}

/// Publishes the tables for one block.
///
/// The P12 cells are computed on the word-parallel bitmap path: one
/// [`SelectionVector`] per race, sex, and age band, with each cell a
/// word-level AND + popcount. Empty race × sex planes are skipped without
/// touching their 20 band cells. [`tabulate_block_scalar`] keeps the
/// per-person scatter as the reference oracle.
///
/// # Panics
/// Panics on an empty block (the Census suppresses empty blocks).
pub fn tabulate_block(people: &[Person]) -> BlockTables {
    assert!(
        !people.is_empty(),
        "empty block is suppressed, not published"
    );
    let n = people.len();
    let race_bm: Vec<SelectionVector> = (0..5)
        .map(|ri| SelectionVector::from_fn(n, |i| people[i].race.index() == ri))
        .collect();
    let sex_bm: Vec<SelectionVector> = (0..2)
        .map(|si| SelectionVector::from_fn(n, |i| people[i].sex.index() == si))
        .collect();
    let band_bm: Vec<SelectionVector> = (0..N_BANDS)
        .map(|b| {
            SelectionVector::from_fn(n, |i| usize::from(people[i].age / 5).min(N_BANDS - 1) == b)
        })
        .collect();
    let mut race_sex_band = [[[0usize; N_BANDS]; 2]; 5];
    for (ri, race) in race_bm.iter().enumerate() {
        for (si, sex) in sex_bm.iter().enumerate() {
            let plane = race.and(sex);
            if plane.is_none() {
                continue;
            }
            for (b, band) in band_bm.iter().enumerate() {
                race_sex_band[ri][si][b] = plane.and(band).count();
            }
        }
    }
    let mut ages: Vec<u8> = people.iter().map(|p| p.age).collect();
    let sum: u32 = ages.iter().map(|&a| u32::from(a)).sum();
    ages.sort_unstable();
    let mean = f64::from(sum) / n as f64;
    BlockTables {
        total: n,
        race_sex_band,
        mean_age: (mean * 100.0).round() / 100.0,
        median_age: median_of_sorted(&ages),
    }
}

/// Workload-planned variant of [`tabulate_block`]: the 200 P12 cells are
/// declared as one batch of `race ∧ sex ∧ age-band` conjunctions over a
/// hash-consed [`so_plan::PredPool`] and compiled into a single
/// [`so_plan::QueryPlan`] against a columnar view of the block.
///
/// The planner recovers the plane-sharing of the hand-written bitmap path
/// automatically: the 5 race, 2 sex, and 20 band atoms are each scanned
/// exactly once (27 scans for 200 cells), and every cell is word-level ANDs
/// over cached child bitmaps. Kept alongside [`tabulate_block`] to pin the
/// two paths against each other; [`tabulate_block_scalar`] remains the
/// row-at-a-time oracle for both.
///
/// # Panics
/// Panics on an empty block (the Census suppresses empty blocks).
pub fn tabulate_block_planned(people: &[Person]) -> BlockTables {
    use so_data::{AttributeDef, AttributeRole, DataType, DatasetBuilder, Schema, Value};
    use so_plan::{Atom, NodeCache, ParallelExecutor, PlanOutcome, PredPool, QueryPlan};

    assert!(
        !people.is_empty(),
        "empty block is suppressed, not published"
    );
    let schema = Schema::new(vec![
        AttributeDef::new("race", DataType::Int, AttributeRole::QuasiIdentifier),
        AttributeDef::new("sex", DataType::Int, AttributeRole::QuasiIdentifier),
        AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
    ]);
    let mut b = DatasetBuilder::new(schema);
    for p in people {
        b.push_row(vec![
            Value::Int(p.race.index() as i64),
            Value::Int(p.sex.index() as i64),
            Value::Int(i64::from(p.age)),
        ]);
    }
    let ds = b.finish();

    let mut pool = PredPool::new();
    let mut targets = Vec::with_capacity(5 * 2 * N_BANDS);
    for ri in 0..5i64 {
        for si in 0..2i64 {
            for band in 0..N_BANDS {
                let race = pool.atom(Atom::ValueEquals {
                    col: 0,
                    value: Value::Int(ri),
                });
                let sex = pool.atom(Atom::ValueEquals {
                    col: 1,
                    value: Value::Int(si),
                });
                // The last band absorbs everything at and above its floor,
                // mirroring the `min(N_BANDS - 1)` clamp of the bitmap path.
                let (lo, hi) = if band == N_BANDS - 1 {
                    ((band * 5) as i64, i64::MAX)
                } else {
                    ((band * 5) as i64, (band * 5 + 4) as i64)
                };
                let age = pool.atom(Atom::IntRange { col: 2, lo, hi });
                targets.push(Some(pool.and(vec![race, sex, age])));
            }
        }
    }
    let plan = QueryPlan::compile(&pool, targets);
    let mut cache = NodeCache::new();
    let no_evaluators = std::collections::HashMap::new();
    // Sharded execution (SO_THREADS override); bit-identical to serial.
    let (outcomes, _) =
        ParallelExecutor::from_env().execute(&plan, &pool, &ds, &no_evaluators, &mut cache);

    let mut race_sex_band = [[[0usize; N_BANDS]; 2]; 5];
    let mut cells = outcomes.into_iter();
    for by_sex in race_sex_band.iter_mut() {
        for by_band in by_sex.iter_mut() {
            for cell in by_band.iter_mut() {
                match cells.next().expect("one outcome per cell") {
                    PlanOutcome::Count(c) => *cell = c,
                    PlanOutcome::Unanswerable => unreachable!("tabular atoms only"),
                }
            }
        }
    }
    let mut ages: Vec<u8> = people.iter().map(|p| p.age).collect();
    let sum: u32 = ages.iter().map(|&a| u32::from(a)).sum();
    ages.sort_unstable();
    let mean = f64::from(sum) / people.len() as f64;
    BlockTables {
        total: people.len(),
        race_sex_band,
        mean_age: (mean * 100.0).round() / 100.0,
        median_age: median_of_sorted(&ages),
    }
}

/// Row-at-a-time reference implementation of [`tabulate_block`], kept as the
/// oracle the bitmap path is tested against.
///
/// # Panics
/// Panics on an empty block (the Census suppresses empty blocks).
pub fn tabulate_block_scalar(people: &[Person]) -> BlockTables {
    assert!(
        !people.is_empty(),
        "empty block is suppressed, not published"
    );
    let mut race_sex_band = [[[0usize; N_BANDS]; 2]; 5];
    let mut ages: Vec<u8> = Vec::with_capacity(people.len());
    let mut sum = 0u32;
    for p in people {
        let band = usize::from(p.age / 5).min(N_BANDS - 1);
        race_sex_band[p.race.index()][p.sex.index()][band] += 1;
        ages.push(p.age);
        sum += u32::from(p.age);
    }
    ages.sort_unstable();
    let mean = f64::from(sum) / people.len() as f64;
    BlockTables {
        total: people.len(),
        race_sex_band,
        mean_age: (mean * 100.0).round() / 100.0,
        median_age: median_of_sorted(&ages),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(age: u8, sex: Sex, race: Race) -> Person {
        Person { age, sex, race }
    }

    #[test]
    fn tabulation_counts_are_consistent() {
        let people = vec![
            p(34, Sex::F, Race::White),
            p(37, Sex::M, Race::White),
            p(8, Sex::F, Race::Black),
            p(71, Sex::M, Race::Asian),
            p(65, Sex::F, Race::White),
        ];
        let t = tabulate_block(&people);
        assert_eq!(t.total, 5);
        assert_eq!(t.by_sex(Sex::F), 3);
        assert_eq!(t.by_sex(Sex::M), 2);
        assert_eq!(t.by_race(Race::White), 3);
        assert_eq!(t.cell(Race::White, Sex::F, 6), 1); // 34 → band 6
        assert_eq!(t.cell(Race::White, Sex::M, 7), 1); // 37 → band 7
        assert_eq!(t.cell(Race::Black, Sex::F, 1), 1); // 8 → band 1
        assert_eq!(t.cell(Race::Asian, Sex::M, 14), 1); // 71 → band 14
        assert_eq!(t.cell(Race::White, Sex::F, 13), 1); // 65 → band 13
        assert_eq!(t.median_age, 37.0);
        assert_eq!(t.mean_age, 43.0);
    }

    #[test]
    fn mean_rounding_still_reveals_exact_sum_for_small_blocks() {
        let people = vec![
            p(33, Sex::F, Race::White),
            p(34, Sex::M, Race::White),
            p(36, Sex::F, Race::Black),
        ];
        let t = tabulate_block(&people);
        // mean = 34.333... → published 34.33; 34.33*3 = 102.99 → 103.
        assert_eq!(t.mean_age, 34.33);
        assert_eq!(t.exact_age_sum(), Some(103));
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median_of_sorted(&[1, 2, 3]), 2.0);
        assert_eq!(median_of_sorted(&[1, 2, 3, 10]), 2.5);
        assert_eq!(median_of_sorted(&[5]), 5.0);
    }

    #[test]
    fn age_99_lands_in_last_band() {
        let t = tabulate_block(&[p(99, Sex::F, Race::Other)]);
        assert_eq!(t.cell(Race::Other, Sex::F, 19), 1);
    }

    #[test]
    #[should_panic(expected = "empty block")]
    fn empty_block_rejected() {
        tabulate_block(&[]);
    }

    #[test]
    fn bitmap_and_scalar_tabulation_agree() {
        use crate::microdata::{CensusConfig, CensusData};
        use so_data::rng::seeded_rng;

        let data = CensusData::generate(&CensusConfig::default(), &mut seeded_rng(0xC3115));
        for b in 0..data.n_blocks() {
            let people = data.block(b);
            if people.is_empty() {
                continue;
            }
            assert_eq!(
                tabulate_block(people),
                tabulate_block_scalar(people),
                "block {b} diverged"
            );
        }
    }

    /// The workload-planned tabulation matches the hand-written bitmap path
    /// on every generated block, and its plan scans each of the 27 atoms
    /// exactly once for all 200 cells.
    #[test]
    fn planned_and_bitmap_tabulation_agree() {
        use crate::microdata::{CensusConfig, CensusData};
        use so_data::rng::seeded_rng;

        let data = CensusData::generate(&CensusConfig::default(), &mut seeded_rng(0xC3116));
        for b in 0..data.n_blocks() {
            let people = data.block(b);
            if people.is_empty() {
                continue;
            }
            assert_eq!(
                tabulate_block_planned(people),
                tabulate_block(people),
                "block {b} diverged"
            );
        }
    }
}
