//! Re-identification of reconstructed census records via a commercial
//! database.
//!
//! The 2010 attack's second stage: reconstructed (block, sex, age, race)
//! records were matched against commercial databases carrying names with
//! block, sex, and age — attaching an identity to each match and thereby
//! learning the matched person's census responses (race/ethnicity). The
//! paper: "records were accurately reconstructed and re-identified for 52
//! million people (17% of the US population)".
//!
//! The synthetic commercial database covers a configurable fraction of the
//! population and carries age errors for a configurable fraction of its
//! rows (commercial data is dirty — that is what keeps precision below
//! 100%).

use rand::Rng;

use crate::microdata::{CensusData, Person, Sex};

/// One commercial-database row: an identified person with block, age, sex.
#[derive(Debug, Clone, Copy)]
pub struct CommercialRow {
    /// Identity: (block, index within block) of the person it refers to.
    pub person_ref: (usize, usize),
    /// Block id as recorded by the data broker.
    pub block: usize,
    /// Age as recorded (possibly off by a year or two).
    pub age: u8,
    /// Sex as recorded.
    pub sex: Sex,
}

/// Commercial-database generator knobs.
#[derive(Debug, Clone, Copy)]
pub struct CommercialConfig {
    /// Fraction of the population present in the broker data.
    pub coverage: f64,
    /// Fraction of present rows whose recorded age is perturbed by ±1–2.
    pub age_error_rate: f64,
}

impl Default for CommercialConfig {
    fn default() -> Self {
        CommercialConfig {
            coverage: 0.6,
            age_error_rate: 0.1,
        }
    }
}

/// Samples a commercial database from the true census microdata.
pub fn commercial_database<R: Rng + ?Sized>(
    census: &CensusData,
    config: &CommercialConfig,
    rng: &mut R,
) -> Vec<CommercialRow> {
    assert!((0.0..=1.0).contains(&config.coverage), "bad coverage");
    assert!(
        (0.0..=1.0).contains(&config.age_error_rate),
        "bad error rate"
    );
    let mut rows = Vec::new();
    for b in 0..census.n_blocks() {
        for (i, p) in census.block(b).iter().enumerate() {
            if rng.gen::<f64>() >= config.coverage {
                continue;
            }
            let age = if rng.gen::<f64>() < config.age_error_rate {
                let delta: i16 = *[-2i16, -1, 1, 2]
                    .get(rng.gen_range(0..4usize))
                    .expect("nonempty");
                (i16::from(p.age) + delta).clamp(0, 99) as u8
            } else {
                p.age
            };
            rows.push(CommercialRow {
                person_ref: (b, i),
                block: b,
                age,
                sex: p.sex,
            });
        }
    }
    rows
}

/// Result of the re-identification stage over the whole census.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReidentifyOutcome {
    /// Reconstructed records for which a unique commercial match existed
    /// (an identity was claimed).
    pub claimed: usize,
    /// Claims where the identity was correct AND the reconstructed race
    /// matches the person's true race (the attacker really learned the
    /// census response).
    pub correct: usize,
    /// Total population, for rate reporting.
    pub population: usize,
}

impl ReidentifyOutcome {
    /// Fraction of the population correctly re-identified.
    pub fn reidentification_rate(&self) -> f64 {
        if self.population == 0 {
            0.0
        } else {
            self.correct as f64 / self.population as f64
        }
    }

    /// Precision of the claims.
    pub fn precision(&self) -> f64 {
        if self.claimed == 0 {
            1.0
        } else {
            self.correct as f64 / self.claimed as f64
        }
    }
}

/// Matches per-block reconstructed records (`guesses[b]`) against the
/// commercial database on (block, sex, age within `age_tol`). A
/// reconstruction is claimed only when exactly one broker row is
/// compatible; a claim is correct when that row's person truly has the
/// reconstructed race (identity + learned attribute both right).
pub fn reidentify(
    census: &CensusData,
    guesses: &[Vec<Person>],
    commercial: &[CommercialRow],
    age_tol: u8,
) -> ReidentifyOutcome {
    assert_eq!(guesses.len(), census.n_blocks(), "one guess set per block");
    // Index commercial rows by block.
    let mut by_block: Vec<Vec<&CommercialRow>> = vec![Vec::new(); census.n_blocks()];
    for row in commercial {
        by_block[row.block].push(row);
    }
    let mut out = ReidentifyOutcome {
        population: census.population(),
        ..Default::default()
    };
    for (b, guess) in guesses.iter().enumerate() {
        // Track which commercial rows are already consumed so one broker row
        // cannot vouch for two reconstructed records.
        let mut used = vec![false; by_block[b].len()];
        for rec in guess {
            let compatible: Vec<usize> = by_block[b]
                .iter()
                .enumerate()
                .filter(|(j, row)| {
                    !used[*j]
                        && row.sex == rec.sex
                        && (i16::from(row.age) - i16::from(rec.age)).unsigned_abs() as u8 <= age_tol
                })
                .map(|(j, _)| j)
                .collect();
            if let [only] = compatible.as_slice() {
                used[*only] = true;
                out.claimed += 1;
                let (tb, ti) = by_block[b][*only].person_ref;
                let truth = census.block(tb)[ti];
                let age_ok =
                    (i16::from(truth.age) - i16::from(rec.age)).unsigned_abs() as u8 <= age_tol;
                if truth.race == rec.race && truth.sex == rec.sex && age_ok {
                    out.correct += 1;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microdata::{CensusConfig, Race};
    use crate::reconstruct::{reconstruct_block, SolverBudget};
    use crate::tabulate::tabulate_block;
    use so_data::rng::seeded_rng;

    fn small_census(seed: u64) -> CensusData {
        CensusData::generate(
            &CensusConfig {
                n_blocks: 40,
                block_size_lo: 2,
                block_size_hi: 8,
                ..CensusConfig::default()
            },
            &mut seeded_rng(seed),
        )
    }

    #[test]
    fn perfect_reconstruction_full_coverage_links_most_people() {
        let census = small_census(100);
        // Feed the TRUE microdata as "reconstruction" to isolate the
        // linkage stage.
        let guesses: Vec<Vec<Person>> = (0..census.n_blocks())
            .map(|b| census.block(b).to_vec())
            .collect();
        let commercial = commercial_database(
            &census,
            &CommercialConfig {
                coverage: 1.0,
                age_error_rate: 0.0,
            },
            &mut seeded_rng(101),
        );
        let out = reidentify(&census, &guesses, &commercial, 0);
        assert_eq!(out.claimed, out.correct, "clean data, clean claims");
        // Everyone with a unique (block, sex, age) gets linked.
        assert!(
            out.reidentification_rate() > 0.8,
            "rate {}",
            out.reidentification_rate()
        );
    }

    #[test]
    fn end_to_end_pipeline_reidentifies_a_large_fraction() {
        let census = small_census(102);
        let guesses: Vec<Vec<Person>> = (0..census.n_blocks())
            .map(|b| {
                let t = tabulate_block(census.block(b));
                reconstruct_block(&t, &SolverBudget::default())
                    .guess()
                    .expect("solvable")
                    .to_vec()
            })
            .collect();
        let commercial =
            commercial_database(&census, &CommercialConfig::default(), &mut seeded_rng(103));
        let out = reidentify(&census, &guesses, &commercial, 1);
        let rate = out.reidentification_rate();
        let precision = out.precision();
        // Shape: a substantial fraction of the whole population correctly
        // re-identified (paper: 17% of the US), with high precision.
        assert!(rate > 0.17, "re-identification rate {rate}");
        assert!(precision > 0.8, "precision {precision}");
    }

    #[test]
    fn zero_coverage_means_zero_claims() {
        let census = small_census(104);
        let guesses: Vec<Vec<Person>> = (0..census.n_blocks())
            .map(|b| census.block(b).to_vec())
            .collect();
        let commercial = commercial_database(
            &census,
            &CommercialConfig {
                coverage: 0.0,
                age_error_rate: 0.0,
            },
            &mut seeded_rng(105),
        );
        let out = reidentify(&census, &guesses, &commercial, 1);
        assert_eq!(out.claimed, 0);
        assert_eq!(out.correct, 0);
        assert_eq!(out.precision(), 1.0);
    }

    #[test]
    fn wrong_reconstruction_hurts_correctness_not_claims() {
        let census = small_census(106);
        // Corrupt every reconstructed record's race.
        let guesses: Vec<Vec<Person>> = (0..census.n_blocks())
            .map(|b| {
                census
                    .block(b)
                    .iter()
                    .map(|p| Person {
                        race: match p.race {
                            Race::White => Race::Black,
                            _ => Race::White,
                        },
                        ..*p
                    })
                    .collect()
            })
            .collect();
        let commercial = commercial_database(
            &census,
            &CommercialConfig {
                coverage: 1.0,
                age_error_rate: 0.0,
            },
            &mut seeded_rng(107),
        );
        let out = reidentify(&census, &guesses, &commercial, 0);
        assert!(out.claimed > 0);
        assert_eq!(out.correct, 0, "learned attribute is always wrong");
    }
}
