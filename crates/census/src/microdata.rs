//! Synthetic block-level census microdata.

use rand::Rng;

use so_data::dist::{Categorical, RecordDistribution};

/// Sex category (census binary coding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sex {
    /// Female.
    F,
    /// Male.
    M,
}

impl Sex {
    /// All categories in coding order.
    pub const ALL: [Sex; 2] = [Sex::F, Sex::M];

    /// Index in coding order.
    pub fn index(self) -> usize {
        match self {
            Sex::F => 0,
            Sex::M => 1,
        }
    }
}

/// Race category (coarse OMB-style coding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Race {
    /// White.
    White,
    /// Black or African American.
    Black,
    /// Asian.
    Asian,
    /// American Indian / Alaska Native.
    Aian,
    /// Native Hawaiian / Pacific Islander, other, or two-plus races.
    Other,
}

impl Race {
    /// All categories in coding order.
    pub const ALL: [Race; 5] = [
        Race::White,
        Race::Black,
        Race::Asian,
        Race::Aian,
        Race::Other,
    ];

    /// Index in coding order.
    pub fn index(self) -> usize {
        match self {
            Race::White => 0,
            Race::Black => 1,
            Race::Asian => 2,
            Race::Aian => 3,
            Race::Other => 4,
        }
    }
}

/// One census person record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Person {
    /// Age in whole years, 0–99.
    pub age: u8,
    /// Sex.
    pub sex: Sex,
    /// Race.
    pub race: Race,
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct CensusConfig {
    /// Number of blocks.
    pub n_blocks: usize,
    /// Minimum people per block.
    pub block_size_lo: usize,
    /// Maximum people per block.
    pub block_size_hi: usize,
    /// Race mix (weights over [`Race::ALL`]).
    pub race_weights: [f64; 5],
}

impl Default for CensusConfig {
    fn default() -> Self {
        CensusConfig {
            n_blocks: 100,
            block_size_lo: 3,
            block_size_hi: 12,
            race_weights: [6.0, 1.5, 0.8, 0.2, 0.5],
        }
    }
}

/// The full synthetic census: per-block person lists. Person identity for
/// re-identification purposes is `(block, index within block)`.
#[derive(Debug, Clone)]
pub struct CensusData {
    blocks: Vec<Vec<Person>>,
}

impl CensusData {
    /// Generates microdata according to `config`.
    ///
    /// # Panics
    /// Panics on an empty block-size range.
    pub fn generate<R: Rng + ?Sized>(config: &CensusConfig, rng: &mut R) -> CensusData {
        assert!(
            config.block_size_lo >= 1 && config.block_size_lo <= config.block_size_hi,
            "bad block size range"
        );
        let race_dist = Categorical::new(&config.race_weights);
        // Age pyramid: mildly decreasing mass with age.
        let age_weights: Vec<f64> = (0..100)
            .map(|a| {
                if a < 60 {
                    1.0
                } else {
                    1.0 - (a - 60) as f64 / 50.0
                }
            })
            .collect();
        let age_dist = Categorical::new(&age_weights);
        let blocks = (0..config.n_blocks)
            .map(|_| {
                let size = rng.gen_range(config.block_size_lo..=config.block_size_hi);
                (0..size)
                    .map(|_| Person {
                        age: age_dist.sample(rng) as u8,
                        sex: Sex::ALL[usize::from(rng.gen::<bool>())],
                        race: Race::ALL[race_dist.sample(rng)],
                    })
                    .collect()
            })
            .collect();
        CensusData { blocks }
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// People in block `b`.
    pub fn block(&self, b: usize) -> &[Person] {
        &self.blocks[b]
    }

    /// Total population.
    pub fn population(&self) -> usize {
        self.blocks.iter().map(Vec::len).sum()
    }

    /// Builds directly from per-block person lists (used by the swapping
    /// defense, which rearranges an existing census).
    pub fn from_blocks(blocks: Vec<Vec<Person>>) -> CensusData {
        CensusData { blocks }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use so_data::rng::seeded_rng;

    #[test]
    fn generates_requested_shape() {
        let cfg = CensusConfig {
            n_blocks: 50,
            ..CensusConfig::default()
        };
        let data = CensusData::generate(&cfg, &mut seeded_rng(80));
        assert_eq!(data.n_blocks(), 50);
        for b in 0..50 {
            let blk = data.block(b);
            assert!((3..=12).contains(&blk.len()));
            for p in blk {
                assert!(p.age <= 99);
            }
        }
        assert_eq!(
            data.population(),
            (0..50).map(|b| data.block(b).len()).sum::<usize>()
        );
    }

    #[test]
    fn race_mix_roughly_matches_weights() {
        let cfg = CensusConfig {
            n_blocks: 2_000,
            ..CensusConfig::default()
        };
        let data = CensusData::generate(&cfg, &mut seeded_rng(81));
        let total = data.population() as f64;
        let whites = (0..data.n_blocks())
            .flat_map(|b| data.block(b).iter())
            .filter(|p| p.race == Race::White)
            .count() as f64;
        let frac = whites / total;
        // Weight 6 of 9 total ≈ 0.667.
        assert!((0.6..=0.73).contains(&frac), "white fraction {frac}");
    }

    #[test]
    fn deterministic_with_seed() {
        let cfg = CensusConfig::default();
        let a = CensusData::generate(&cfg, &mut seeded_rng(5));
        let b = CensusData::generate(&cfg, &mut seeded_rng(5));
        for blk in 0..a.n_blocks() {
            assert_eq!(a.block(blk), b.block(blk));
        }
    }

    #[test]
    #[should_panic(expected = "bad block size range")]
    fn rejects_empty_size_range() {
        let cfg = CensusConfig {
            block_size_lo: 5,
            block_size_hi: 4,
            ..CensusConfig::default()
        };
        CensusData::generate(&cfg, &mut seeded_rng(1));
    }
}
