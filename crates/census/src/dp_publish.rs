//! Differentially private census publication (the remedy).
//!
//! After the reconstruction of the 2010 data, the Census Bureau moved its
//! 2020 disclosure-avoidance system to differential privacy. This module
//! releases the same per-block tables through the geometric mechanism:
//! every (race, sex, decade) cell gets independent integer noise and is
//! clamped at zero; the five-year bands, mean, and median are *not*
//! released (they would cost additional budget). The reconstruction attack
//! can still be pointed at the noisy counts — [`crate::reconstruct::
//! reconstruct_counts_only`] — but the constraint system no longer pins the
//! truth, and the re-identification rate collapses.

use rand::Rng;

use so_dp::GeometricCount;

use crate::microdata::Person;
use crate::tabulate::{tabulate_block, N_BANDS};

/// DP-publication knobs.
#[derive(Debug, Clone, Copy)]
pub struct DpTablesConfig {
    /// Total per-block privacy-loss budget ε for the table release.
    pub epsilon: f64,
}

impl Default for DpTablesConfig {
    fn default() -> Self {
        DpTablesConfig { epsilon: 1.0 }
    }
}

/// The DP release for one block: noisy decade-cell counts only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DpBlockTables {
    /// Noisy counts by race × sex × five-year band (clamped at 0).
    pub race_sex_band: [[[usize; N_BANDS]; 2]; 5],
    /// Noisy total (sum of the noisy cells, for internal consistency).
    pub total: usize,
}

/// Publishes one block's tables under ε-DP.
///
/// Under the substitution convention one person's change moves at most two
/// units of mass among the cells (L1 sensitivity 2), so spending the whole
/// budget on the cell histogram means per-cell geometric noise at parameter
/// `ε / 2`.
pub fn dp_tabulate_block<R: Rng + ?Sized>(
    people: &[Person],
    config: &DpTablesConfig,
    rng: &mut R,
) -> DpBlockTables {
    assert!(
        config.epsilon > 0.0 && config.epsilon.is_finite(),
        "bad epsilon"
    );
    let exact = tabulate_block(people);
    let mech = GeometricCount::new(config.epsilon / 2.0);
    let mut noisy = [[[0usize; N_BANDS]; 2]; 5];
    let mut total = 0usize;
    for (r, by_sex) in exact.race_sex_band.iter().enumerate() {
        for (s, by_decade) in by_sex.iter().enumerate() {
            for (d, &c) in by_decade.iter().enumerate() {
                let v = mech.release(c, rng).max(0) as usize;
                noisy[r][s][d] = v;
                total += v;
            }
        }
    }
    DpBlockTables {
        race_sex_band: noisy,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microdata::{CensusConfig, CensusData, Race, Sex};
    use crate::reconstruct::{
        reconstruct_block, reconstruct_counts_only, records_matched_within, SolverBudget,
    };
    use so_data::rng::seeded_rng;

    #[test]
    fn noisy_counts_are_near_truth_for_large_epsilon() {
        let people: Vec<Person> = (0..8)
            .map(|i| Person {
                age: 30 + i,
                sex: Sex::F,
                race: Race::White,
            })
            .collect();
        let mut rng = seeded_rng(110);
        let dp = dp_tabulate_block(&people, &DpTablesConfig { epsilon: 50.0 }, &mut rng);
        // With ε = 50 the noise is almost surely zero everywhere.
        assert_eq!(
            dp.race_sex_band[Race::White.index()][Sex::F.index()][6]
                + dp.race_sex_band[Race::White.index()][Sex::F.index()][7],
            8
        );
        assert_eq!(dp.total, 8);
    }

    #[test]
    fn small_epsilon_scrambles_counts() {
        let people: Vec<Person> = (0..8)
            .map(|i| Person {
                age: 30 + i,
                sex: Sex::F,
                race: Race::White,
            })
            .collect();
        let mut rng = seeded_rng(111);
        // Average absolute deviation of the true cell over repeats should be
        // clearly positive at ε = 0.5.
        let mut dev = 0.0;
        let reps = 200;
        for _ in 0..reps {
            let dp = dp_tabulate_block(&people, &DpTablesConfig { epsilon: 0.5 }, &mut rng);
            dev += (dp.race_sex_band[0][0][6] as f64 - 5.0).abs();
        }
        dev /= f64::from(reps);
        assert!(dev > 1.0, "mean deviation {dev}");
    }

    #[test]
    fn dp_release_collapses_the_reconstruction_attack() {
        let census = CensusData::generate(
            &CensusConfig {
                n_blocks: 25,
                block_size_lo: 2,
                block_size_hi: 8,
                ..CensusConfig::default()
            },
            &mut seeded_rng(112),
        );
        let mut rng = seeded_rng(113);
        let budget = SolverBudget::default();
        let mut exact_hits = 0usize;
        let mut exact_denom = 0usize;
        let mut dp_hits = 0usize;
        let mut dp_denom = 0usize;
        for b in 0..census.n_blocks() {
            let truth = census.block(b);
            // Attack on exact tables.
            let t = tabulate_block(truth);
            if let Some(g) = reconstruct_block(&t, &budget).guess() {
                exact_hits += records_matched_within(truth, g, 1);
                exact_denom += truth.len().max(g.len());
            } else {
                exact_denom += truth.len();
            }
            // Attack on the DP release. The denominator counts the larger of
            // the true and guessed record sets: clamped noise invents
            // phantom people, and claiming 300 records for an 8-person block
            // is not a successful reconstruction even if 3 match by chance.
            let dp = dp_tabulate_block(truth, &DpTablesConfig { epsilon: 0.5 }, &mut rng);
            if let Some(g) = reconstruct_counts_only(&dp.race_sex_band, &budget).guess() {
                dp_hits += records_matched_within(truth, g, 1);
                dp_denom += truth.len().max(g.len());
            } else {
                dp_denom += truth.len();
            }
        }
        let exact_rate = exact_hits as f64 / exact_denom as f64;
        let dp_rate = dp_hits as f64 / dp_denom as f64;
        assert!(exact_rate > 0.7, "exact-tables rate {exact_rate}");
        assert!(
            dp_rate < exact_rate / 2.0,
            "dp rate {dp_rate} vs exact {exact_rate}"
        );
    }

    #[test]
    #[should_panic(expected = "bad epsilon")]
    fn rejects_bad_epsilon() {
        dp_tabulate_block(
            &[Person {
                age: 1,
                sex: Sex::F,
                race: Race::Other,
            }],
            &DpTablesConfig { epsilon: 0.0 },
            &mut seeded_rng(1),
        );
    }
}
