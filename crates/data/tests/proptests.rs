//! Property-based tests for the dataset substrate.

use proptest::prelude::*;
use so_data::csv::{from_csv, to_csv};
use so_data::{
    AttributeDef, AttributeRole, BitVec, DataType, Dataset, DatasetBuilder, Date, Schema, Value,
};

fn arb_value(dtype: DataType) -> BoxedStrategy<ValueSpec> {
    match dtype {
        DataType::Int => (any::<i64>()).prop_map(ValueSpec::Int).boxed(),
        DataType::Float => proptest::num::f64::NORMAL
            .prop_map(ValueSpec::Float)
            .boxed(),
        DataType::Bool => any::<bool>().prop_map(ValueSpec::Bool).boxed(),
        DataType::Date => (-200_000i32..200_000)
            .prop_map(|d| ValueSpec::Date(Date::from_day_number(d)))
            .boxed(),
        DataType::Str => "[ -~]{0,12}".prop_map(ValueSpec::Str).boxed(),
    }
}

/// Owned value description (strings carried as text, interned at build time).
#[derive(Debug, Clone)]
enum ValueSpec {
    Int(i64),
    Float(f64),
    Bool(bool),
    Date(Date),
    Str(String),
    Missing,
}

fn build_dataset(dtypes: &[DataType], rows: &[Vec<ValueSpec>]) -> Dataset {
    let attrs = dtypes
        .iter()
        .enumerate()
        .map(|(i, &d)| AttributeDef::new(&format!("c{i}"), d, AttributeRole::Insensitive))
        .collect();
    let schema = Schema::new(attrs);
    let mut b = DatasetBuilder::new(schema);
    for row in rows {
        let vals: Vec<Value> = row
            .iter()
            .map(|v| match v {
                ValueSpec::Int(x) => Value::Int(*x),
                ValueSpec::Float(x) => Value::Float(*x),
                ValueSpec::Bool(x) => Value::Bool(*x),
                ValueSpec::Date(x) => Value::Date(*x),
                ValueSpec::Str(s) => Value::Str(b.intern(s)),
                ValueSpec::Missing => Value::Missing,
            })
            .collect();
        b.push_row(vals);
    }
    b.finish()
}

fn arb_dataset() -> impl Strategy<Value = (Vec<DataType>, Vec<Vec<ValueSpec>>)> {
    let dtype = prop_oneof![
        Just(DataType::Int),
        Just(DataType::Float),
        Just(DataType::Bool),
        Just(DataType::Date),
        Just(DataType::Str),
    ];
    proptest::collection::vec(dtype, 1..5).prop_flat_map(|dtypes| {
        let row_strategy: Vec<_> = dtypes
            .iter()
            .map(|&d| {
                prop_oneof![
                    9 => arb_value(d),
                    1 => Just(ValueSpec::Missing),
                ]
            })
            .collect();
        let rows = proptest::collection::vec(row_strategy, 0..20);
        (Just(dtypes), rows)
    })
}

proptest! {
    /// CSV round-trips preserve shape, schema, and every cell.
    #[test]
    fn csv_round_trip((dtypes, rows) in arb_dataset()) {
        // Empty-string Str cells are indistinguishable from Missing in CSV;
        // normalize the expectation accordingly.
        let ds = build_dataset(&dtypes, &rows);
        let back = from_csv(&to_csv(&ds)).unwrap();
        prop_assert_eq!(back.n_rows(), ds.n_rows());
        prop_assert_eq!(back.n_cols(), ds.n_cols());
        for r in 0..ds.n_rows() {
            for c in 0..ds.n_cols() {
                let a = ds.get(r, c);
                let b = back.get(r, c);
                match (a, b) {
                    (Value::Str(x), Value::Str(y)) => {
                        prop_assert_eq!(ds.resolve(x), back.resolve(y));
                    }
                    (Value::Missing, Value::Str(y)) => {
                        // Missing non-str is empty text; for Str columns the
                        // empty string is the canonical missing image.
                        prop_assert_eq!(back.resolve(y), "");
                    }
                    (a, b) => prop_assert_eq!(a, b),
                }
            }
        }
    }

    /// Date day-number round trip over a wide range.
    #[test]
    fn date_round_trip(dn in -500_000i32..500_000) {
        let d = Date::from_day_number(dn);
        let (y, m, day) = d.ymd();
        prop_assert_eq!(Date::new(y, m, day).unwrap().day_number(), dn);
    }

    /// Date ordering agrees with day-number ordering.
    #[test]
    fn date_order_consistent(a in -200_000i32..200_000, b in -200_000i32..200_000) {
        let (da, db) = (Date::from_day_number(a), Date::from_day_number(b));
        prop_assert_eq!(da.cmp(&db), a.cmp(&b));
    }

    /// BitVec set/get behaves like a Vec<bool>.
    #[test]
    fn bitvec_models_vec_bool(bits in proptest::collection::vec(any::<bool>(), 0..200)) {
        let v = BitVec::from_bools(&bits);
        prop_assert_eq!(v.len(), bits.len());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(v.get(i), b);
        }
        prop_assert_eq!(v.count_ones(), bits.iter().filter(|&&b| b).count());
    }

    /// The word-at-a-time builders agree with a bit-at-a-time reference
    /// (`zeros` + `set`), including `len % 64 != 0` tails, and uphold the
    /// trailing-bits-are-zero invariant so `count_ones`, `low_u64`, and
    /// `hamming_distance` see no garbage.
    #[test]
    fn bitvec_builders_agree_with_bit_at_a_time(
        bits in proptest::collection::vec(any::<bool>(), 0..300),
    ) {
        let mut reference = BitVec::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            reference.set(i, b);
        }
        let from_slice = BitVec::from_bools(&bits);
        let from_iter = BitVec::from_iter_bits(bits.iter().copied());
        prop_assert_eq!(&from_slice, &reference);
        prop_assert_eq!(&from_iter, &reference);
        prop_assert_eq!(from_slice.words(), reference.words());
        // Trailing bits beyond len are zero in the last word.
        let tail = bits.len() % 64;
        if tail != 0 {
            prop_assert_eq!(from_slice.words().last().unwrap() >> tail, 0);
            prop_assert_eq!(from_iter.words().last().unwrap() >> tail, 0);
        }
        prop_assert_eq!(from_slice.count_ones(), reference.count_ones());
        prop_assert_eq!(from_iter.low_u64(), reference.low_u64());
        prop_assert_eq!(from_slice.hamming_distance(&reference), 0);
        prop_assert_eq!(from_iter.hamming_distance(&reference), 0);
    }

    /// Hamming distance is a metric: symmetric, zero iff equal, triangle.
    #[test]
    fn hamming_is_a_metric(
        a in proptest::collection::vec(any::<bool>(), 32),
        b in proptest::collection::vec(any::<bool>(), 32),
        c in proptest::collection::vec(any::<bool>(), 32),
    ) {
        let (va, vb, vc) = (
            BitVec::from_bools(&a),
            BitVec::from_bools(&b),
            BitVec::from_bools(&c),
        );
        prop_assert_eq!(va.hamming_distance(&vb), vb.hamming_distance(&va));
        prop_assert_eq!(va.hamming_distance(&va), 0);
        prop_assert!(
            va.hamming_distance(&vc)
                <= va.hamming_distance(&vb) + vb.hamming_distance(&vc)
        );
    }

    /// group_by partitions the row set exactly.
    #[test]
    fn group_by_partitions((dtypes, rows) in arb_dataset()) {
        let ds = build_dataset(&dtypes, &rows);
        let groups = ds.group_by(&[0]);
        let mut all: Vec<usize> = groups.values().flatten().copied().collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..ds.n_rows()).collect();
        prop_assert_eq!(all, expected);
    }

    /// select_rows preserves the selected cells in order.
    #[test]
    fn select_rows_preserves_cells((dtypes, rows) in arb_dataset()) {
        let ds = build_dataset(&dtypes, &rows);
        if ds.n_rows() == 0 {
            return Ok(());
        }
        let idx: Vec<usize> = (0..ds.n_rows()).rev().collect();
        let sel = ds.select_rows(&idx);
        prop_assert_eq!(sel.n_rows(), ds.n_rows());
        for (new_i, &old_i) in idx.iter().enumerate() {
            for c in 0..ds.n_cols() {
                let a = ds.get(old_i, c);
                let b = sel.get(new_i, c);
                match (a, b) {
                    (Value::Str(x), Value::Str(y)) => {
                        prop_assert_eq!(ds.resolve(x), sel.resolve(y));
                    }
                    (a, b) => prop_assert_eq!(a, b),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// SelectionVector bitmap algebra vs naive boolean vectors.
// ---------------------------------------------------------------------------

use so_data::{column_counts, SelectionVector};

proptest! {
    /// Packed bitmaps agree with plain `Vec<bool>` semantics bit-for-bit:
    /// count, get, indices, and next_set_bit. Lengths straddle word
    /// boundaries, so the `len % 64 != 0` tail word is routinely hit.
    #[test]
    fn selection_matches_bool_vector(bits in proptest::collection::vec(any::<bool>(), 1..300)) {
        let v = SelectionVector::from_bools(&bits);
        prop_assert_eq!(v.len(), bits.len());
        prop_assert_eq!(v.count(), bits.iter().filter(|&&b| b).count());
        let expected: Vec<usize> =
            (0..bits.len()).filter(|&i| bits[i]).collect();
        prop_assert_eq!(v.indices(), expected.clone());
        prop_assert_eq!(v.next_set_bit(0), expected.first().copied());
        for (i, &bit) in bits.iter().enumerate() {
            prop_assert_eq!(v.get(i), bit, "bit {}", i);
        }
    }

    /// AND/OR/NOT match pointwise boolean algebra; NOT never leaks bits
    /// into the tail word.
    #[test]
    fn selection_algebra_matches_pointwise(
        a in proptest::collection::vec(any::<bool>(), 1..300),
        b in proptest::collection::vec(any::<bool>(), 1..300),
    ) {
        let n = a.len().min(b.len());
        let va = SelectionVector::from_bools(&a[..n]);
        let vb = SelectionVector::from_bools(&b[..n]);
        let (and, or, not) = (va.and(&vb), va.or(&vb), va.not());
        for i in 0..n {
            prop_assert_eq!(and.get(i), a[i] && b[i]);
            prop_assert_eq!(or.get(i), a[i] || b[i]);
            prop_assert_eq!(not.get(i), !a[i]);
        }
        prop_assert_eq!(not.count(), n - va.count());
        prop_assert_eq!(va.and(&va.not()).count(), 0);
        prop_assert_eq!(va.or(&va.not()).count(), n);
    }

    /// Packed segments are a lossless re-encoding: decoded cells, missing
    /// flags, equality scans, and range scans all agree with the
    /// uncompressed oracle column on arbitrary datasets (any dtype mix,
    /// ~10% missing cells).
    #[test]
    fn packed_segments_agree_with_oracle((dtypes, rows) in arb_dataset()) {
        use so_data::{ColumnSegment, PackedColumn};
        let ds = build_dataset(&dtypes, &rows);
        for c in 0..ds.n_cols() {
            let col = ds.column(c);
            let Some(packed) = PackedColumn::from_column(col) else {
                // Only Float columns lack a packed form at these sizes.
                prop_assert_eq!(dtypes[c], DataType::Float);
                continue;
            };
            prop_assert_eq!(packed.len(), ds.n_rows());
            prop_assert_eq!(ColumnSegment::dtype(&packed), dtypes[c]);
            for row in 0..ds.n_rows() {
                prop_assert_eq!(packed.value(row), ds.get(row, c), "row {}", row);
                prop_assert_eq!(
                    packed.is_missing(row),
                    col.missing_mask()[row],
                    "row {}", row
                );
            }
            // Equality scan against every cell value (incl. Missing).
            for target_row in 0..ds.n_rows() {
                let target = ds.get(target_row, c);
                let hits = packed.scan_value_equals(&target, 0..ds.n_rows());
                for row in 0..ds.n_rows() {
                    prop_assert_eq!(
                        hits.get(row),
                        ds.get(row, c) == target,
                        "target row {} row {}", target_row, row
                    );
                }
            }
            // Range scan against the oracle row semantics.
            if dtypes[c] == DataType::Int {
                let vals = col.int_values().unwrap();
                let (lo, hi) = (
                    vals.iter().copied().min().unwrap_or(0),
                    vals.iter().copied().max().unwrap_or(0).saturating_sub(1),
                );
                let hits = packed.scan_int_range(lo, hi, 0..ds.n_rows());
                for row in 0..ds.n_rows() {
                    let expect = ds
                        .get(row, c)
                        .as_int()
                        .is_some_and(|v| v >= lo && v <= hi);
                    prop_assert_eq!(hits.get(row), expect, "row {}", row);
                }
            }
        }
    }

    /// The transpose-based column_counts equals a per-bit count.
    #[test]
    fn column_counts_matches_per_bit(
        rows in proptest::collection::vec(
            proptest::collection::vec(any::<bool>(), 70),
            0..70,
        ),
    ) {
        let width = 70;
        let bvs: Vec<BitVec> = rows.iter().map(|r| BitVec::from_bools(r)).collect();
        let counts = column_counts(&bvs, width);
        for j in 0..width {
            let naive = rows.iter().filter(|r| r[j]).count();
            prop_assert_eq!(counts[j], naive, "column {}", j);
        }
    }
}
