//! Property-based tests for the dataset substrate.

use proptest::prelude::*;
use so_data::csv::{from_csv, to_csv};
use so_data::{
    AttributeDef, AttributeRole, BitVec, DataType, Dataset, DatasetBuilder, Date, Schema, Value,
};

fn arb_value(dtype: DataType) -> BoxedStrategy<ValueSpec> {
    match dtype {
        DataType::Int => (any::<i64>()).prop_map(ValueSpec::Int).boxed(),
        DataType::Float => proptest::num::f64::NORMAL
            .prop_map(ValueSpec::Float)
            .boxed(),
        DataType::Bool => any::<bool>().prop_map(ValueSpec::Bool).boxed(),
        DataType::Date => (-200_000i32..200_000)
            .prop_map(|d| ValueSpec::Date(Date::from_day_number(d)))
            .boxed(),
        DataType::Str => "[ -~]{0,12}".prop_map(ValueSpec::Str).boxed(),
    }
}

/// Owned value description (strings carried as text, interned at build time).
#[derive(Debug, Clone)]
enum ValueSpec {
    Int(i64),
    Float(f64),
    Bool(bool),
    Date(Date),
    Str(String),
    Missing,
}

fn build_dataset(dtypes: &[DataType], rows: &[Vec<ValueSpec>]) -> Dataset {
    let attrs = dtypes
        .iter()
        .enumerate()
        .map(|(i, &d)| AttributeDef::new(&format!("c{i}"), d, AttributeRole::Insensitive))
        .collect();
    let schema = Schema::new(attrs);
    let mut b = DatasetBuilder::new(schema);
    for row in rows {
        let vals: Vec<Value> = row
            .iter()
            .map(|v| match v {
                ValueSpec::Int(x) => Value::Int(*x),
                ValueSpec::Float(x) => Value::Float(*x),
                ValueSpec::Bool(x) => Value::Bool(*x),
                ValueSpec::Date(x) => Value::Date(*x),
                ValueSpec::Str(s) => Value::Str(b.intern(s)),
                ValueSpec::Missing => Value::Missing,
            })
            .collect();
        b.push_row(vals);
    }
    b.finish()
}

fn arb_dataset() -> impl Strategy<Value = (Vec<DataType>, Vec<Vec<ValueSpec>>)> {
    let dtype = prop_oneof![
        Just(DataType::Int),
        Just(DataType::Float),
        Just(DataType::Bool),
        Just(DataType::Date),
        Just(DataType::Str),
    ];
    proptest::collection::vec(dtype, 1..5).prop_flat_map(|dtypes| {
        let row_strategy: Vec<_> = dtypes
            .iter()
            .map(|&d| {
                prop_oneof![
                    9 => arb_value(d),
                    1 => Just(ValueSpec::Missing),
                ]
            })
            .collect();
        let rows = proptest::collection::vec(row_strategy, 0..20);
        (Just(dtypes), rows)
    })
}

proptest! {
    /// CSV round-trips preserve shape, schema, and every cell.
    #[test]
    fn csv_round_trip((dtypes, rows) in arb_dataset()) {
        // Empty-string Str cells are indistinguishable from Missing in CSV;
        // normalize the expectation accordingly.
        let ds = build_dataset(&dtypes, &rows);
        let back = from_csv(&to_csv(&ds)).unwrap();
        prop_assert_eq!(back.n_rows(), ds.n_rows());
        prop_assert_eq!(back.n_cols(), ds.n_cols());
        for r in 0..ds.n_rows() {
            for c in 0..ds.n_cols() {
                let a = ds.get(r, c);
                let b = back.get(r, c);
                match (a, b) {
                    (Value::Str(x), Value::Str(y)) => {
                        prop_assert_eq!(ds.resolve(x), back.resolve(y));
                    }
                    (Value::Missing, Value::Str(y)) => {
                        // Missing non-str is empty text; for Str columns the
                        // empty string is the canonical missing image.
                        prop_assert_eq!(back.resolve(y), "");
                    }
                    (a, b) => prop_assert_eq!(a, b),
                }
            }
        }
    }

    /// Date day-number round trip over a wide range.
    #[test]
    fn date_round_trip(dn in -500_000i32..500_000) {
        let d = Date::from_day_number(dn);
        let (y, m, day) = d.ymd();
        prop_assert_eq!(Date::new(y, m, day).unwrap().day_number(), dn);
    }

    /// Date ordering agrees with day-number ordering.
    #[test]
    fn date_order_consistent(a in -200_000i32..200_000, b in -200_000i32..200_000) {
        let (da, db) = (Date::from_day_number(a), Date::from_day_number(b));
        prop_assert_eq!(da.cmp(&db), a.cmp(&b));
    }

    /// BitVec set/get behaves like a Vec<bool>.
    #[test]
    fn bitvec_models_vec_bool(bits in proptest::collection::vec(any::<bool>(), 0..200)) {
        let v = BitVec::from_bools(&bits);
        prop_assert_eq!(v.len(), bits.len());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(v.get(i), b);
        }
        prop_assert_eq!(v.count_ones(), bits.iter().filter(|&&b| b).count());
    }

    /// Hamming distance is a metric: symmetric, zero iff equal, triangle.
    #[test]
    fn hamming_is_a_metric(
        a in proptest::collection::vec(any::<bool>(), 32),
        b in proptest::collection::vec(any::<bool>(), 32),
        c in proptest::collection::vec(any::<bool>(), 32),
    ) {
        let (va, vb, vc) = (
            BitVec::from_bools(&a),
            BitVec::from_bools(&b),
            BitVec::from_bools(&c),
        );
        prop_assert_eq!(va.hamming_distance(&vb), vb.hamming_distance(&va));
        prop_assert_eq!(va.hamming_distance(&va), 0);
        prop_assert!(
            va.hamming_distance(&vc)
                <= va.hamming_distance(&vb) + vb.hamming_distance(&vc)
        );
    }

    /// group_by partitions the row set exactly.
    #[test]
    fn group_by_partitions((dtypes, rows) in arb_dataset()) {
        let ds = build_dataset(&dtypes, &rows);
        let groups = ds.group_by(&[0]);
        let mut all: Vec<usize> = groups.values().flatten().copied().collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..ds.n_rows()).collect();
        prop_assert_eq!(all, expected);
    }

    /// select_rows preserves the selected cells in order.
    #[test]
    fn select_rows_preserves_cells((dtypes, rows) in arb_dataset()) {
        let ds = build_dataset(&dtypes, &rows);
        if ds.n_rows() == 0 {
            return Ok(());
        }
        let idx: Vec<usize> = (0..ds.n_rows()).rev().collect();
        let sel = ds.select_rows(&idx);
        prop_assert_eq!(sel.n_rows(), ds.n_rows());
        for (new_i, &old_i) in idx.iter().enumerate() {
            for c in 0..ds.n_cols() {
                let a = ds.get(old_i, c);
                let b = sel.get(new_i, c);
                match (a, b) {
                    (Value::Str(x), Value::Str(y)) => {
                        prop_assert_eq!(ds.resolve(x), sel.resolve(y));
                    }
                    (a, b) => prop_assert_eq!(a, b),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// SelectionVector bitmap algebra vs naive boolean vectors.
// ---------------------------------------------------------------------------

use so_data::{column_counts, SelectionVector};

proptest! {
    /// Packed bitmaps agree with plain `Vec<bool>` semantics bit-for-bit:
    /// count, get, indices, and next_set_bit. Lengths straddle word
    /// boundaries, so the `len % 64 != 0` tail word is routinely hit.
    #[test]
    fn selection_matches_bool_vector(bits in proptest::collection::vec(any::<bool>(), 1..300)) {
        let v = SelectionVector::from_bools(&bits);
        prop_assert_eq!(v.len(), bits.len());
        prop_assert_eq!(v.count(), bits.iter().filter(|&&b| b).count());
        let expected: Vec<usize> =
            (0..bits.len()).filter(|&i| bits[i]).collect();
        prop_assert_eq!(v.indices(), expected.clone());
        prop_assert_eq!(v.next_set_bit(0), expected.first().copied());
        for (i, &bit) in bits.iter().enumerate() {
            prop_assert_eq!(v.get(i), bit, "bit {}", i);
        }
    }

    /// AND/OR/NOT match pointwise boolean algebra; NOT never leaks bits
    /// into the tail word.
    #[test]
    fn selection_algebra_matches_pointwise(
        a in proptest::collection::vec(any::<bool>(), 1..300),
        b in proptest::collection::vec(any::<bool>(), 1..300),
    ) {
        let n = a.len().min(b.len());
        let va = SelectionVector::from_bools(&a[..n]);
        let vb = SelectionVector::from_bools(&b[..n]);
        let (and, or, not) = (va.and(&vb), va.or(&vb), va.not());
        for i in 0..n {
            prop_assert_eq!(and.get(i), a[i] && b[i]);
            prop_assert_eq!(or.get(i), a[i] || b[i]);
            prop_assert_eq!(not.get(i), !a[i]);
        }
        prop_assert_eq!(not.count(), n - va.count());
        prop_assert_eq!(va.and(&va.not()).count(), 0);
        prop_assert_eq!(va.or(&va.not()).count(), n);
    }

    /// The transpose-based column_counts equals a per-bit count.
    #[test]
    fn column_counts_matches_per_bit(
        rows in proptest::collection::vec(
            proptest::collection::vec(any::<bool>(), 70),
            0..70,
        ),
    ) {
        let width = 70;
        let bvs: Vec<BitVec> = rows.iter().map(|r| BitVec::from_bools(r)).collect();
        let counts = column_counts(&bvs, width);
        for j in 0..width {
            let naive = rows.iter().filter(|r| r[j]).count();
            prop_assert_eq!(counts[j], naive, "column {}", j);
        }
    }
}
