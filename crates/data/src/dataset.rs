//! Columnar tabular datasets.
//!
//! A [`Dataset`] is the concrete `x ∈ X^n` for tabular data universes:
//! typed columns, a shared [`Schema`], and an [`Interner`] for categorical
//! strings. Storage is column-major with a per-column missing mask, which
//! keeps predicate evaluation (the hot loop of every counting mechanism and
//! every equivalence-class grouping) a tight scan over a homogeneous vector.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use crate::date::Date;
use crate::interner::{Interner, Symbol};
use crate::schema::{DataType, Schema};
use crate::storage::{ColumnSegment, PackedColumn, StorageEngine};
use crate::value::Value;

/// Typed storage for one column.
#[derive(Debug, Clone)]
enum ColumnData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Str(Vec<Symbol>),
    Bool(Vec<bool>),
    Date(Vec<i32>),
}

impl ColumnData {
    fn new(dtype: DataType) -> Self {
        match dtype {
            DataType::Int => ColumnData::Int(Vec::new()),
            DataType::Float => ColumnData::Float(Vec::new()),
            DataType::Str => ColumnData::Str(Vec::new()),
            DataType::Bool => ColumnData::Bool(Vec::new()),
            DataType::Date => ColumnData::Date(Vec::new()),
        }
    }

    fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Date(v) => v.len(),
        }
    }

    fn get(&self, i: usize) -> Value {
        match self {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Str(v) => Value::Str(v[i]),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Date(v) => Value::Date(Date::from_day_number(v[i])),
        }
    }

    /// Pushes `v`; returns false on a type mismatch.
    fn push(&mut self, v: Value) -> bool {
        match (self, v) {
            (ColumnData::Int(col), Value::Int(x)) => col.push(x),
            (ColumnData::Float(col), Value::Float(x)) => col.push(x),
            (ColumnData::Str(col), Value::Str(x)) => col.push(x),
            (ColumnData::Bool(col), Value::Bool(x)) => col.push(x),
            (ColumnData::Date(col), Value::Date(x)) => col.push(x.day_number()),
            _ => return false,
        }
        true
    }

    /// Pushes an arbitrary placeholder for a missing cell.
    fn push_default(&mut self) {
        match self {
            ColumnData::Int(col) => col.push(0),
            ColumnData::Float(col) => col.push(0.0),
            // Index 0 always exists: builders reserve it by interning "".
            ColumnData::Str(col) => col.push(Symbol::from_index(0)),
            ColumnData::Bool(col) => col.push(false),
            ColumnData::Date(col) => col.push(0),
        }
    }

    fn dtype(&self) -> DataType {
        match self {
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Str(_) => DataType::Str,
            ColumnData::Bool(_) => DataType::Bool,
            ColumnData::Date(_) => DataType::Date,
        }
    }

    /// Typed gather: copies the cells at `indices` (in order) into a new
    /// vector of the same type — no per-cell boxing through [`Value`].
    fn gather(&self, indices: &[usize]) -> ColumnData {
        match self {
            ColumnData::Int(v) => ColumnData::Int(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Float(v) => ColumnData::Float(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Str(v) => ColumnData::Str(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Bool(v) => ColumnData::Bool(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Date(v) => ColumnData::Date(indices.iter().map(|&i| v[i]).collect()),
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            ColumnData::Int(v) => std::mem::size_of_val(v.as_slice()),
            ColumnData::Float(v) => std::mem::size_of_val(v.as_slice()),
            ColumnData::Str(v) => std::mem::size_of_val(v.as_slice()),
            ColumnData::Bool(v) => std::mem::size_of_val(v.as_slice()),
            ColumnData::Date(v) => std::mem::size_of_val(v.as_slice()),
        }
    }
}

/// One column: typed data plus a missing mask.
#[derive(Debug, Clone)]
pub struct Column {
    data: ColumnData,
    missing: Vec<bool>,
}

impl Column {
    fn new(dtype: DataType) -> Self {
        Column {
            data: ColumnData::new(dtype),
            missing: Vec::new(),
        }
    }

    /// Cell value at row `i` ([`Value::Missing`] if masked).
    pub fn get(&self, i: usize) -> Value {
        if self.missing[i] {
            Value::Missing
        } else {
            self.data.get(i)
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.missing.len()
    }

    /// True iff no rows.
    pub fn is_empty(&self) -> bool {
        self.missing.is_empty()
    }

    /// The raw `i64` slice if this is an Int column (missing rows hold a
    /// placeholder — consult [`Column::missing_mask`]).
    pub fn int_values(&self) -> Option<&[i64]> {
        match &self.data {
            ColumnData::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The raw `f64` slice if this is a Float column.
    pub fn float_values(&self) -> Option<&[f64]> {
        match &self.data {
            ColumnData::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The raw symbol slice if this is a Str column.
    pub fn str_values(&self) -> Option<&[Symbol]> {
        match &self.data {
            ColumnData::Str(v) => Some(v),
            _ => None,
        }
    }

    /// The raw bool slice if this is a Bool column.
    pub fn bool_values(&self) -> Option<&[bool]> {
        match &self.data {
            ColumnData::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// The raw day-number slice if this is a Date column.
    pub fn date_values(&self) -> Option<&[i32]> {
        match &self.data {
            ColumnData::Date(v) => Some(v),
            _ => None,
        }
    }

    /// Per-row missing flags (true = cell is missing and the typed slice
    /// holds a placeholder at that position).
    pub fn missing_mask(&self) -> &[bool] {
        &self.missing
    }

    /// Element type of this column.
    pub fn dtype(&self) -> DataType {
        self.data.dtype()
    }

    /// New column holding the cells at `indices`, in order — a typed copy
    /// (value slice + mask), never a [`Value`] round-trip.
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn gather(&self, indices: &[usize]) -> Column {
        Column {
            data: self.data.gather(indices),
            missing: indices.iter().map(|&i| self.missing[i]).collect(),
        }
    }

    fn push(&mut self, v: Value, dtype: DataType) {
        if v.is_missing() {
            self.data.push_default();
            self.missing.push(true);
        } else {
            assert!(
                self.data.push(v),
                "type mismatch: pushed {v:?} into {dtype:?} column"
            );
            self.missing.push(false);
        }
        debug_assert_eq!(self.data.len(), self.missing.len());
    }
}

impl ColumnSegment for Column {
    fn len(&self) -> usize {
        self.missing.len()
    }

    fn dtype(&self) -> DataType {
        self.data.dtype()
    }

    fn value(&self, row: usize) -> Value {
        self.get(row)
    }

    fn is_missing(&self, row: usize) -> bool {
        self.missing[row]
    }

    fn scan_bytes(&self) -> usize {
        self.data.heap_bytes() + std::mem::size_of_val(self.missing.as_slice())
    }
}

/// A columnar dataset: `n` rows over a fixed [`Schema`].
///
/// The uncompressed typed columns are always present (they are the oracle
/// representation and the source for raw-slice access); when the dataset's
/// [`StorageEngine`] is [`StorageEngine::Packed`], compressed
/// [`PackedColumn`] segments are built lazily, once per column, on first
/// packed scan ([`Dataset::packed_column`]) and shared across clones.
///
/// Datasets are immutable once built except for [`Dataset::append_rows`],
/// the mutation primitive behind the incremental engine's open delta
/// segment. Every append bumps [`Dataset::version`] and installs a fresh
/// packed-slot cache stamped with the new version, so a stale packed
/// segment (encoded before the append) can never be served for the grown
/// column: [`Dataset::packed_column`] refuses slots whose stamp does not
/// match the dataset's current version.
#[derive(Debug, Clone)]
pub struct Dataset {
    schema: Arc<Schema>,
    interner: Arc<Interner>,
    columns: Vec<Column>,
    n_rows: usize,
    engine: StorageEngine,
    /// Monotone content version: 0 at build, +1 per [`Dataset::append_rows`].
    version: u64,
    /// Lazily built packed segments, stamped with the dataset version they
    /// were allocated for (see [`PackedSlots`]).
    packed: Arc<PackedSlots>,
}

/// Version-keyed packed-segment cache: one lazy slot per column plus the
/// dataset version the slots describe. `None` inside a cell records "this
/// column has no packed form" (e.g. Float), so the encode attempt runs at
/// most once. Mutation never writes through this structure — appends swap
/// in a fresh `Arc<PackedSlots>` with a bumped stamp (copy-on-write), so
/// clones of the pre-append dataset keep reading their own still-valid
/// slots.
#[derive(Debug)]
struct PackedSlots {
    version: u64,
    slots: Vec<OnceLock<Option<PackedColumn>>>,
}

fn packed_slots(n_cols: usize, version: u64) -> Arc<PackedSlots> {
    Arc::new(PackedSlots {
        version,
        slots: (0..n_cols).map(|_| OnceLock::new()).collect(),
    })
}

impl Dataset {
    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The shared string interner.
    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// Resolves an interned string.
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// Number of rows `n`.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// True iff the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Borrow column `c`.
    pub fn column(&self, c: usize) -> &Column {
        &self.columns[c]
    }

    /// Column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.schema.index_of(name)
    }

    /// Cell at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> Value {
        self.columns[col].get(row)
    }

    /// Lightweight view of row `i`.
    pub fn row(&self, i: usize) -> RowRef<'_> {
        assert!(i < self.n_rows, "row {i} out of range {}", self.n_rows);
        RowRef { ds: self, idx: i }
    }

    /// Iterates over row views.
    pub fn rows(&self) -> impl Iterator<Item = RowRef<'_>> {
        (0..self.n_rows).map(move |i| RowRef { ds: self, idx: i })
    }

    /// Materializes row `i` as owned values.
    pub fn row_values(&self, i: usize) -> Vec<Value> {
        (0..self.n_cols()).map(|c| self.get(i, c)).collect()
    }

    /// The storage engine scan kernels should use for this dataset.
    pub fn engine(&self) -> StorageEngine {
        self.engine
    }

    /// Monotone content version: 0 when built, bumped by every
    /// [`Dataset::append_rows`]. Caches keyed on `(dataset identity,
    /// version)` — the packed-segment slots here, the incremental engine's
    /// per-segment selection caches above — use this to detect staleness.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The same logical dataset under a different [`StorageEngine`].
    /// Typed columns are shared-cloned; packed segments are rebuilt lazily
    /// (a fresh cache, since the engines must never alias state).
    pub fn with_engine(&self, engine: StorageEngine) -> Dataset {
        Dataset {
            schema: self.schema.clone(),
            interner: self.interner.clone(),
            n_rows: self.n_rows,
            engine,
            version: self.version,
            packed: packed_slots(self.columns.len(), self.version),
            columns: self.columns.clone(),
        }
    }

    /// The packed segment for column `c`, building it on first use.
    ///
    /// Returns `None` when the engine is [`StorageEngine::Uncompressed`],
    /// the column has no packed form (Float, pathological spans), or the
    /// cached slots are stale (stamped with a version other than the
    /// dataset's current one — impossible through the public API, where
    /// [`Dataset::append_rows`] swaps in freshly stamped slots, but checked
    /// anyway so a stale packed column is *never* served). Callers fall back
    /// to the uncompressed oracle path on `None`. Thread-safe: concurrent
    /// shard workers race at most on the one-time encode.
    pub fn packed_column(&self, c: usize) -> Option<&PackedColumn> {
        if !self.engine.is_packed() {
            return None;
        }
        if self.packed.version != self.version {
            return None;
        }
        self.packed.slots[c]
            .get_or_init(|| PackedColumn::from_column(&self.columns[c]))
            .as_ref()
    }

    /// Appends rows in place — the mutation primitive behind the
    /// incremental engine's open delta segment.
    ///
    /// Bumps [`Dataset::version`] and installs a fresh packed-slot cache
    /// stamped with the new version (copy-on-write: clones taken before the
    /// append keep their own slots and their own version, so they are
    /// unaffected). Because the interner is shared and append-only-frozen,
    /// [`Value::Str`] cells must carry symbols already interned — derive
    /// them via [`Dataset::interner`] lookups or intern everything up front
    /// in the builder.
    ///
    /// An empty `rows` slice is a no-op: no version bump, caches stay warm.
    ///
    /// # Panics
    /// Panics on arity or type mismatch, or on a `Str` symbol outside the
    /// shared interner.
    pub fn append_rows(&mut self, rows: &[Vec<Value>]) {
        if rows.is_empty() {
            return;
        }
        for values in rows {
            assert_eq!(
                values.len(),
                self.columns.len(),
                "row arity {} != schema arity {}",
                values.len(),
                self.columns.len()
            );
            for (c, v) in values.iter().enumerate() {
                if let Value::Str(sym) = v {
                    assert!(
                        (sym.index() as usize) < self.interner.len(),
                        "symbol {sym} not in the shared interner"
                    );
                }
                self.columns[c].push(*v, self.schema.attr(c).dtype);
            }
            self.n_rows += 1;
        }
        self.version += 1;
        self.packed = packed_slots(self.columns.len(), self.version);
    }

    /// An empty dataset over the same schema, interner, and engine — the
    /// constructor for a fresh delta segment whose symbols resolve through
    /// the base dataset's interner.
    pub fn empty_like(&self) -> Dataset {
        Dataset {
            schema: self.schema.clone(),
            interner: self.interner.clone(),
            columns: self
                .schema
                .attrs()
                .iter()
                .map(|a| Column::new(a.dtype))
                .collect(),
            n_rows: 0,
            engine: self.engine,
            version: 0,
            packed: packed_slots(self.schema.attrs().len(), 0),
        }
    }

    /// New dataset containing the given rows (in the given order). Shares
    /// the schema and the interner allocation (`Arc` clones — symbols in
    /// the derived dataset resolve through the *same* interner), and copies
    /// typed column slices directly without boxing cells through [`Value`].
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn select_rows(&self, indices: &[usize]) -> Dataset {
        let columns: Vec<Column> = self.columns.iter().map(|c| c.gather(indices)).collect();
        Dataset {
            schema: self.schema.clone(),
            interner: self.interner.clone(),
            packed: packed_slots(columns.len(), 0),
            columns,
            n_rows: indices.len(),
            engine: self.engine,
            version: 0,
        }
    }

    /// Groups row indices by their tuple of values over `cols`.
    pub fn group_by(&self, cols: &[usize]) -> HashMap<Vec<Value>, Vec<usize>> {
        let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for i in 0..self.n_rows {
            let key: Vec<Value> = cols.iter().map(|&c| self.get(i, c)).collect();
            groups.entry(key).or_default().push(i);
        }
        groups
    }

    /// Counts rows for which `pred` holds.
    pub fn count_rows<F: FnMut(RowRef<'_>) -> bool>(&self, mut pred: F) -> usize {
        self.rows().filter(|r| pred(*r)).count()
    }
}

/// A borrowed view of a single row.
#[derive(Clone, Copy)]
pub struct RowRef<'a> {
    ds: &'a Dataset,
    idx: usize,
}

impl<'a> RowRef<'a> {
    /// Row index within the dataset.
    pub fn index(&self) -> usize {
        self.idx
    }

    /// Cell at column `c`.
    pub fn get(&self, c: usize) -> Value {
        self.ds.get(self.idx, c)
    }

    /// Cell by column name.
    ///
    /// # Panics
    /// Panics if the column does not exist.
    pub fn get_by_name(&self, name: &str) -> Value {
        let c = self
            .ds
            .column_index(name)
            .unwrap_or_else(|| panic!("no column named {name:?}"));
        self.get(c)
    }

    /// Owning dataset.
    pub fn dataset(&self) -> &'a Dataset {
        self.ds
    }

    /// Materializes the row.
    pub fn values(&self) -> Vec<Value> {
        self.ds.row_values(self.idx)
    }
}

impl std::fmt::Debug for RowRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Row#{}{:?}", self.idx, self.values())
    }
}

/// Row-at-a-time builder for [`Dataset`].
#[derive(Debug)]
pub struct DatasetBuilder {
    schema: Arc<Schema>,
    interner: Interner,
    columns: Vec<Column>,
    n_rows: usize,
}

impl DatasetBuilder {
    /// Starts an empty dataset over `schema`.
    pub fn new(schema: Arc<Schema>) -> Self {
        Self::from_parts(schema, Interner::new())
    }

    /// Starts from an existing interner (used when deriving datasets).
    pub fn from_parts(schema: Arc<Schema>, mut interner: Interner) -> Self {
        // Index 0 is reserved as the placeholder for missing Str cells.
        interner.intern("");
        let columns = schema
            .attrs()
            .iter()
            .map(|a| Column::new(a.dtype))
            .collect();
        DatasetBuilder {
            schema,
            interner,
            columns,
            n_rows: 0,
        }
    }

    /// Interns a string for use as a [`Value::Str`] cell.
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.interner.intern(s)
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics on arity or type mismatch.
    pub fn push_row(&mut self, values: Vec<Value>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row arity {} != schema arity {}",
            values.len(),
            self.columns.len()
        );
        for (c, v) in values.into_iter().enumerate() {
            self.columns[c].push(v, self.schema.attr(c).dtype);
        }
        self.n_rows += 1;
    }

    /// Current number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Freezes into an immutable [`Dataset`] under the process-default
    /// storage engine ([`StorageEngine::from_env`], packed unless
    /// `SO_STORAGE=unpacked`).
    pub fn finish(self) -> Dataset {
        self.finish_with_engine(StorageEngine::from_env())
    }

    /// Freezes into an immutable [`Dataset`] under an explicit engine —
    /// the constructor tests and benches use to compare the two layouts
    /// deterministically, independent of the environment.
    pub fn finish_with_engine(self, engine: StorageEngine) -> Dataset {
        let packed = packed_slots(self.columns.len(), 0);
        Dataset {
            schema: self.schema,
            interner: Arc::new(self.interner),
            columns: self.columns,
            n_rows: self.n_rows,
            engine,
            version: 0,
            packed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttributeDef, AttributeRole};

    fn toy_schema() -> Arc<Schema> {
        Schema::new(vec![
            AttributeDef::new("zip", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("sex", DataType::Str, AttributeRole::QuasiIdentifier),
            AttributeDef::new("disease", DataType::Str, AttributeRole::Sensitive),
        ])
    }

    /// Builds the 4-record toy dataset from §1.1 of the paper.
    fn toy_dataset() -> Dataset {
        let mut b = DatasetBuilder::new(toy_schema());
        let f = b.intern("F");
        let m = b.intern("M");
        let covid = b.intern("COVID");
        let cf = b.intern("CF");
        let asthma = b.intern("Asthma");
        b.push_row(vec![
            Value::Int(23456),
            Value::Int(55),
            Value::Str(f),
            Value::Str(covid),
        ]);
        b.push_row(vec![
            Value::Int(23456),
            Value::Int(42),
            Value::Str(f),
            Value::Str(covid),
        ]);
        b.push_row(vec![
            Value::Int(12345),
            Value::Int(30),
            Value::Str(m),
            Value::Str(cf),
        ]);
        b.push_row(vec![
            Value::Int(12346),
            Value::Int(33),
            Value::Str(f),
            Value::Str(asthma),
        ]);
        b.finish()
    }

    #[test]
    fn build_and_read_back() {
        let ds = toy_dataset();
        assert_eq!(ds.n_rows(), 4);
        assert_eq!(ds.n_cols(), 4);
        assert_eq!(ds.get(0, 0), Value::Int(23456));
        assert_eq!(ds.get(2, 1), Value::Int(30));
        let sex = ds.get(2, 2).as_str_symbol().unwrap();
        assert_eq!(ds.resolve(sex), "M");
    }

    #[test]
    fn row_view_accessors() {
        let ds = toy_dataset();
        let r = ds.row(3);
        assert_eq!(r.get_by_name("age"), Value::Int(33));
        assert_eq!(r.index(), 3);
        assert_eq!(r.values().len(), 4);
    }

    #[test]
    fn missing_cells_round_trip() {
        let mut b = DatasetBuilder::new(toy_schema());
        let f = b.intern("F");
        b.push_row(vec![
            Value::Missing,
            Value::Int(20),
            Value::Str(f),
            Value::Missing,
        ]);
        let ds = b.finish();
        assert!(ds.get(0, 0).is_missing());
        assert_eq!(ds.get(0, 1), Value::Int(20));
        assert!(ds.get(0, 3).is_missing());
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        let mut b = DatasetBuilder::new(toy_schema());
        b.push_row(vec![
            Value::Bool(true),
            Value::Int(20),
            Value::Missing,
            Value::Missing,
        ]);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut b = DatasetBuilder::new(toy_schema());
        b.push_row(vec![Value::Int(1)]);
    }

    #[test]
    fn select_rows_projects() {
        let ds = toy_dataset();
        let sub = ds.select_rows(&[2, 0]);
        assert_eq!(sub.n_rows(), 2);
        assert_eq!(sub.get(0, 1), Value::Int(30));
        assert_eq!(sub.get(1, 1), Value::Int(55));
        // Symbols remain resolvable through the shared interner.
        let sym = sub.get(0, 3).as_str_symbol().unwrap();
        assert_eq!(sub.resolve(sym), "CF");
    }

    #[test]
    fn select_rows_shares_interner_allocation() {
        // Regression: select_rows used to deep-clone the Interner and
        // re-box every cell through Value. The derived dataset must resolve
        // symbols through the *same* interner allocation.
        let ds = toy_dataset();
        let sub = ds.select_rows(&[1, 3]);
        assert!(Arc::ptr_eq(ds.interner(), sub.interner()));
        assert!(Arc::ptr_eq(ds.schema(), sub.schema()));
        assert_eq!(sub.engine(), ds.engine());
        // And a second derivation still shares it.
        let subsub = sub.select_rows(&[0]);
        assert!(Arc::ptr_eq(ds.interner(), subsub.interner()));
    }

    #[test]
    fn select_rows_preserves_missing_and_duplicates() {
        let mut b = DatasetBuilder::new(toy_schema());
        let f = b.intern("F");
        b.push_row(vec![
            Value::Missing,
            Value::Int(20),
            Value::Str(f),
            Value::Missing,
        ]);
        b.push_row(vec![
            Value::Int(99),
            Value::Missing,
            Value::Missing,
            Value::Str(f),
        ]);
        let ds = b.finish();
        let sub = ds.select_rows(&[1, 0, 1]);
        assert_eq!(sub.n_rows(), 3);
        for (out_row, src_row) in [(0usize, 1usize), (1, 0), (2, 1)] {
            assert_eq!(sub.row_values(out_row), ds.row_values(src_row));
        }
        assert!(sub.get(1, 0).is_missing());
        assert_eq!(sub.get(0, 0), Value::Int(99));
        // Empty selection keeps the schema and shares the interner.
        let empty = ds.select_rows(&[]);
        assert_eq!(empty.n_rows(), 0);
        assert!(Arc::ptr_eq(ds.interner(), empty.interner()));
    }

    #[test]
    fn storage_engine_plumbing() {
        use crate::storage::StorageEngine;
        let ds = toy_dataset().with_engine(StorageEngine::Uncompressed);
        assert_eq!(ds.engine(), StorageEngine::Uncompressed);
        // Uncompressed engine never exposes packed segments.
        assert!(ds.packed_column(0).is_none());
        let packed = ds.with_engine(StorageEngine::Packed);
        assert_eq!(packed.engine(), StorageEngine::Packed);
        let seg = packed.packed_column(1).expect("Int column packs");
        use crate::storage::ColumnSegment as _;
        for row in 0..packed.n_rows() {
            assert_eq!(seg.value(row), packed.get(row, 1), "row {row}");
        }
        // Lazy cache: the same allocation answers the second call.
        let again = packed.packed_column(1).unwrap();
        assert!(std::ptr::eq(seg, again));
    }

    #[test]
    fn append_rows_bumps_version_and_refreshes_packed_cache() {
        use crate::storage::{ColumnSegment as _, StorageEngine};
        let mut ds = toy_dataset().with_engine(StorageEngine::Packed);
        assert_eq!(ds.version(), 0);
        let seg0 = ds.packed_column(1).expect("Int column packs") as *const _;
        let f = ds.interner().get("F").unwrap();
        let covid = ds.interner().get("COVID").unwrap();
        ds.append_rows(&[vec![
            Value::Int(99999),
            Value::Int(61),
            Value::Str(f),
            Value::Str(covid),
        ]]);
        assert_eq!(ds.version(), 1);
        assert_eq!(ds.n_rows(), 5);
        assert_eq!(ds.get(4, 1), Value::Int(61));
        // The packed segment is rebuilt for the new version and covers the
        // appended row — the stale 4-row encoding is never served.
        {
            let seg1 = ds.packed_column(1).expect("still packs");
            assert!(!std::ptr::eq(seg0, seg1));
            assert_eq!(seg1.len(), 5);
            for row in 0..5 {
                assert_eq!(seg1.value(row), ds.get(row, 1), "row {row}");
            }
        }
        let seg1 = ds.packed_column(1).unwrap() as *const _;
        // Empty append is a no-op: version unchanged, cache stays warm.
        ds.append_rows(&[]);
        assert_eq!(ds.version(), 1);
        assert!(std::ptr::eq(seg1, ds.packed_column(1).unwrap()));
    }

    #[test]
    fn append_rows_leaves_pre_append_clones_untouched() {
        use crate::storage::StorageEngine;
        let mut ds = toy_dataset().with_engine(StorageEngine::Packed);
        let before = ds.clone();
        let before_seg = before.packed_column(1).unwrap() as *const _;
        let f = ds.interner().get("F").unwrap();
        ds.append_rows(&[vec![
            Value::Int(1),
            Value::Int(2),
            Value::Str(f),
            Value::Missing,
        ]]);
        // Copy-on-write: the clone's rows, version, and packed slots are
        // exactly what they were before the append.
        assert_eq!(before.n_rows(), 4);
        assert_eq!(before.version(), 0);
        assert!(std::ptr::eq(before_seg, before.packed_column(1).unwrap()));
        assert_eq!(ds.n_rows(), 5);
    }

    #[test]
    fn empty_like_shares_schema_and_interner() {
        let ds = toy_dataset();
        let delta = ds.empty_like();
        assert_eq!(delta.n_rows(), 0);
        assert_eq!(delta.n_cols(), ds.n_cols());
        assert_eq!(delta.engine(), ds.engine());
        assert!(Arc::ptr_eq(ds.interner(), delta.interner()));
        assert!(Arc::ptr_eq(ds.schema(), delta.schema()));
    }

    #[test]
    #[should_panic(expected = "not in the shared interner")]
    fn append_rows_rejects_foreign_symbols() {
        let mut ds = toy_dataset();
        let foreign = {
            let mut other = Interner::new();
            for i in 0..100 {
                other.intern(&format!("s{i}"));
            }
            other.intern("outsider")
        };
        ds.append_rows(&[vec![
            Value::Int(1),
            Value::Int(2),
            Value::Str(foreign),
            Value::Missing,
        ]]);
    }

    #[test]
    fn typed_column_slices() {
        let ds = toy_dataset();
        let ages = ds.column(1).int_values().unwrap();
        assert_eq!(ages, &[55, 42, 30, 33]);
        assert!(ds.column(1).float_values().is_none());
        assert!(ds.column(2).str_values().is_some());
        assert_eq!(ds.column(1).missing_mask(), &[false; 4]);
    }

    #[test]
    fn group_by_zip() {
        let ds = toy_dataset();
        let groups = ds.group_by(&[0]);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[&vec![Value::Int(23456)]], vec![0, 1]);
    }

    #[test]
    fn count_rows_with_predicate() {
        let ds = toy_dataset();
        let n = ds.count_rows(|r| r.get(1).as_int().unwrap() >= 33);
        assert_eq!(n, 3);
    }

    #[test]
    fn rows_iterator_covers_all() {
        let ds = toy_dataset();
        assert_eq!(ds.rows().count(), 4);
        let ages: Vec<i64> = ds.rows().map(|r| r.get(1).as_int().unwrap()).collect();
        assert_eq!(ages, vec![55, 42, 30, 33]);
    }
}
