//! Probability distributions over data universes.
//!
//! Section 2.2 of the paper fixes the data-generation model: records are
//! sampled i.i.d. from a distribution `D ∈ Δ(X)` unknown to the attacker.
//! [`RecordDistribution`] is the abstract `D`; the implementations here cover
//! the domains used in the experiments:
//!
//! * [`UniformBits`] / [`ProductBernoulli`] — bit-string universes for the
//!   composition attack (Theorem 2.8) and baseline-isolation studies;
//! * [`Categorical`] / [`Zipf`] — finite domains such as the birthday
//!   example in §2.2 (uniform over 365 dates) and long-tailed title
//!   popularity for the Netflix-style experiment;
//! * [`RowDistribution`] — product distributions over tabular rows, the
//!   model under which the k-anonymity predicate-singling-out attack is
//!   analyzed (Theorem 2.10) and under which equivalence-class predicate
//!   weights can be computed *exactly* rather than by Monte Carlo.

use rand::Rng;

use crate::bits::{BitDataset, BitVec};
use crate::dataset::{Dataset, DatasetBuilder};
use crate::schema::Schema;
use crate::value::Value;
use std::sync::Arc;

/// A distribution `D ∈ Δ(X)` over records of type `X`.
pub trait RecordDistribution {
    /// The record type `X`.
    type Record;

    /// Samples one record.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::Record;

    /// Samples a dataset `x ~ D^n` as a vector of records.
    fn sample_n<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Self::Record> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Uniform distribution over `{0,1}^width`.
#[derive(Debug, Clone, Copy)]
pub struct UniformBits {
    width: usize,
}

impl UniformBits {
    /// Uniform over bit strings of the given width.
    pub fn new(width: usize) -> Self {
        UniformBits { width }
    }

    /// Record width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Samples a whole [`BitDataset`] of `n` records.
    pub fn sample_dataset<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> BitDataset {
        BitDataset::from_rows(self.width, self.sample_n(n, rng))
    }

    /// Exact probability that a fixed record is drawn: `2^-width`.
    pub fn point_mass(&self) -> f64 {
        0.5f64.powi(self.width as i32)
    }
}

impl RecordDistribution for UniformBits {
    type Record = BitVec;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> BitVec {
        let mut v = BitVec::zeros(self.width);
        for i in 0..self.width {
            v.set(i, rng.gen::<bool>());
        }
        v
    }
}

/// Independent-bit distribution with per-bit probabilities `p_i`.
#[derive(Debug, Clone)]
pub struct ProductBernoulli {
    probs: Vec<f64>,
}

impl ProductBernoulli {
    /// Per-bit success probabilities (each must lie in `[0,1]`).
    ///
    /// # Panics
    /// Panics if any probability is outside `[0,1]` or non-finite.
    pub fn new(probs: Vec<f64>) -> Self {
        for &p in &probs {
            assert!(p.is_finite() && (0.0..=1.0).contains(&p), "bad prob {p}");
        }
        ProductBernoulli { probs }
    }

    /// Uniform p for every one of `width` bits.
    pub fn uniform_p(width: usize, p: f64) -> Self {
        Self::new(vec![p; width])
    }

    /// Record width in bits.
    pub fn width(&self) -> usize {
        self.probs.len()
    }

    /// Exact probability of drawing exactly `record`.
    pub fn point_probability(&self, record: &BitVec) -> f64 {
        assert_eq!(record.len(), self.probs.len());
        self.probs
            .iter()
            .enumerate()
            .map(|(i, &p)| if record.get(i) { p } else { 1.0 - p })
            .product()
    }
}

impl RecordDistribution for ProductBernoulli {
    type Record = BitVec;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> BitVec {
        let mut v = BitVec::zeros(self.probs.len());
        for (i, &p) in self.probs.iter().enumerate() {
            v.set(i, rng.gen::<f64>() < p);
        }
        v
    }
}

/// A categorical distribution over `0..k` given by (unnormalized) weights.
#[derive(Debug, Clone)]
pub struct Categorical {
    cumulative: Vec<f64>,
    probs: Vec<f64>,
}

impl Categorical {
    /// Builds from non-negative weights (at least one strictly positive).
    ///
    /// # Panics
    /// Panics on empty/negative/non-finite weights or all-zero total.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "empty categorical");
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "categorical weights must sum to a positive finite value"
        );
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "bad weight {w}");
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        let mut probs = Vec::with_capacity(weights.len());
        for &w in weights {
            acc += w / total;
            cumulative.push(acc);
            probs.push(w / total);
        }
        // Guard against floating-point drift so sampling never falls off the end.
        *cumulative.last_mut().expect("nonempty") = 1.0;
        Categorical { cumulative, probs }
    }

    /// Uniform over `k` outcomes.
    pub fn uniform(k: usize) -> Self {
        Self::new(&vec![1.0; k])
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True iff there are no outcomes (impossible by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Exact probability of outcome `i`.
    pub fn probability(&self, i: usize) -> f64 {
        self.probs[i]
    }
}

impl RecordDistribution for Categorical {
    type Record = usize;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // Binary search the cumulative table: first index with cdf >= u.
        self.cumulative.partition_point(|&c| c < u)
    }
}

/// Zipf distribution over ranks `0..k` with exponent `s`:
/// `P(rank i) ∝ 1/(i+1)^s`. Used for long-tailed title popularity.
#[derive(Debug, Clone)]
pub struct Zipf {
    inner: Categorical,
}

impl Zipf {
    /// Zipf over `k` ranks with exponent `s > 0`.
    pub fn new(k: usize, s: f64) -> Self {
        assert!(s > 0.0 && s.is_finite(), "bad Zipf exponent {s}");
        let weights: Vec<f64> = (0..k).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
        Zipf {
            inner: Categorical::new(&weights),
        }
    }

    /// Exact probability of rank `i`.
    pub fn probability(&self, i: usize) -> f64 {
        self.inner.probability(i)
    }
}

impl RecordDistribution for Zipf {
    type Record = usize;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.inner.sample(rng)
    }
}

/// How to generate one tabular attribute.
#[derive(Debug, Clone)]
pub enum AttributeDistribution {
    /// Integer chosen from a fixed list with categorical weights.
    IntChoice {
        /// Candidate values.
        values: Vec<i64>,
        /// Matching categorical distribution (same length as `values`).
        dist: Categorical,
    },
    /// Integer uniform over an inclusive range.
    IntUniform {
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
    },
    /// Interned string chosen from a fixed list with categorical weights.
    StrChoice {
        /// Candidate values (interned at dataset build time).
        values: Vec<String>,
        /// Matching categorical distribution.
        dist: Categorical,
    },
    /// Bernoulli boolean.
    BoolBernoulli {
        /// P(true).
        p: f64,
    },
}

impl AttributeDistribution {
    /// Exact point probability of a concrete value under this attribute
    /// distribution (0.0 for values outside the support).
    pub fn point_probability(&self, v: &Value, resolve: &dyn Fn(crate::Symbol) -> String) -> f64 {
        match (self, v) {
            (AttributeDistribution::IntChoice { values, dist }, Value::Int(x)) => values
                .iter()
                .position(|c| c == x)
                .map_or(0.0, |i| dist.probability(i)),
            (AttributeDistribution::IntUniform { lo, hi }, Value::Int(x)) if x >= lo && x <= hi => {
                1.0 / ((hi - lo + 1) as f64)
            }
            (AttributeDistribution::StrChoice { values, dist }, Value::Str(s)) => {
                let name = resolve(*s);
                values
                    .iter()
                    .position(|c| *c == name)
                    .map_or(0.0, |i| dist.probability(i))
            }
            (AttributeDistribution::BoolBernoulli { p }, Value::Bool(b)) => {
                if *b {
                    *p
                } else {
                    1.0 - *p
                }
            }
            _ => 0.0,
        }
    }

    /// Probability mass inside an inclusive integer interval (for interval
    /// predicates / generalization boxes). Zero for non-integer attributes.
    pub fn interval_probability(&self, lo: i64, hi: i64) -> f64 {
        match self {
            AttributeDistribution::IntChoice { values, dist } => values
                .iter()
                .enumerate()
                .filter(|(_, v)| **v >= lo && **v <= hi)
                .map(|(i, _)| dist.probability(i))
                .sum(),
            AttributeDistribution::IntUniform { lo: a, hi: b } => {
                let l = lo.max(*a);
                let h = hi.min(*b);
                if l > h {
                    0.0
                } else {
                    (h - l + 1) as f64 / (b - a + 1) as f64
                }
            }
            _ => 0.0,
        }
    }
}

/// A product distribution over tabular rows matching a [`Schema`].
#[derive(Debug, Clone)]
pub struct RowDistribution {
    schema: Arc<Schema>,
    attrs: Vec<AttributeDistribution>,
}

impl RowDistribution {
    /// Builds a product distribution; one attribute distribution per column.
    ///
    /// # Panics
    /// Panics if the arity does not match the schema.
    pub fn new(schema: Arc<Schema>, attrs: Vec<AttributeDistribution>) -> Self {
        assert_eq!(
            schema.len(),
            attrs.len(),
            "need one distribution per schema attribute"
        );
        RowDistribution { schema, attrs }
    }

    /// The schema rows are generated for.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Per-attribute distributions.
    pub fn attrs(&self) -> &[AttributeDistribution] {
        &self.attrs
    }

    /// Samples a full dataset `x ~ D^n`.
    pub fn sample_dataset<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Dataset {
        let mut b = DatasetBuilder::new(self.schema.clone());
        // Pre-intern all categorical values so sampling is allocation-free.
        let interned: Vec<Option<Vec<crate::Symbol>>> = self
            .attrs
            .iter()
            .map(|a| match a {
                AttributeDistribution::StrChoice { values, .. } => {
                    Some(values.iter().map(|v| b.intern(v)).collect())
                }
                _ => None,
            })
            .collect();
        for _ in 0..n {
            let row: Vec<Value> = self
                .attrs
                .iter()
                .enumerate()
                .map(|(c, a)| match a {
                    AttributeDistribution::IntChoice { values, dist } => {
                        Value::Int(values[dist.sample(rng)])
                    }
                    AttributeDistribution::IntUniform { lo, hi } => {
                        Value::Int(rng.gen_range(*lo..=*hi))
                    }
                    AttributeDistribution::StrChoice { dist, .. } => {
                        let syms = interned[c].as_ref().expect("interned");
                        Value::Str(syms[dist.sample(rng)])
                    }
                    AttributeDistribution::BoolBernoulli { p } => {
                        Value::Bool(rng.gen::<f64>() < *p)
                    }
                })
                .collect();
            b.push_row(row);
        }
        b.finish()
    }

    /// Builds a [`RowSampler`] with all categorical values pre-interned, for
    /// efficient record-at-a-time sampling (the PSO game loop).
    pub fn sampler(&self) -> RowSampler {
        let mut interner = crate::Interner::new();
        interner.intern(""); // reserve the missing-cell placeholder
        let interned: Vec<Option<Vec<crate::Symbol>>> = self
            .attrs
            .iter()
            .map(|a| match a {
                AttributeDistribution::StrChoice { values, .. } => {
                    Some(values.iter().map(|v| interner.intern(v)).collect())
                }
                _ => None,
            })
            .collect();
        RowSampler {
            dist: self.clone(),
            interner: Arc::new(interner),
            interned,
        }
    }

    /// Exact probability that a sampled row equals `row` cell-for-cell.
    pub fn point_probability(
        &self,
        row: &[Value],
        resolve: &dyn Fn(crate::Symbol) -> String,
    ) -> f64 {
        assert_eq!(row.len(), self.attrs.len());
        self.attrs
            .iter()
            .zip(row)
            .map(|(a, v)| a.point_probability(v, resolve))
            .product()
    }
}

/// Record-at-a-time sampler for a [`RowDistribution`] with a fixed, shared
/// interner (so symbols from different samples are comparable and the hot
/// loop allocates only the row vector).
#[derive(Debug, Clone)]
pub struct RowSampler {
    dist: RowDistribution,
    interner: Arc<crate::Interner>,
    interned: Vec<Option<Vec<crate::Symbol>>>,
}

impl RowSampler {
    /// The underlying distribution.
    pub fn distribution(&self) -> &RowDistribution {
        &self.dist
    }

    /// The interner binding this sampler's string symbols.
    pub fn interner(&self) -> &Arc<crate::Interner> {
        &self.interner
    }

    /// Samples one row.
    pub fn sample_row<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Value> {
        self.dist
            .attrs
            .iter()
            .enumerate()
            .map(|(c, a)| match a {
                AttributeDistribution::IntChoice { values, dist } => {
                    Value::Int(values[dist.sample(rng)])
                }
                AttributeDistribution::IntUniform { lo, hi } => {
                    Value::Int(rng.gen_range(*lo..=*hi))
                }
                AttributeDistribution::StrChoice { dist, .. } => {
                    let syms = self.interned[c].as_ref().expect("interned");
                    Value::Str(syms[dist.sample(rng)])
                }
                AttributeDistribution::BoolBernoulli { p } => Value::Bool(rng.gen::<f64>() < *p),
            })
            .collect()
    }

    /// Samples `n` rows.
    pub fn sample_rows<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Vec<Value>> {
        (0..n).map(|_| self.sample_row(rng)).collect()
    }

    /// Exact point probability of `row` (symbols must come from this
    /// sampler's interner).
    pub fn point_probability(&self, row: &[Value]) -> f64 {
        let interner = self.interner.clone();
        let resolve = move |s: crate::Symbol| interner.resolve(s).to_owned();
        self.dist.point_probability(row, &resolve)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;
    use crate::schema::{AttributeDef, AttributeRole, DataType};

    #[test]
    fn uniform_bits_balanced() {
        let d = UniformBits::new(16);
        let mut rng = seeded_rng(1);
        let samples = d.sample_n(2000, &mut rng);
        let mean_ones: f64 = samples.iter().map(|s| s.count_ones() as f64).sum::<f64>() / 2000.0;
        assert!((7.0..=9.0).contains(&mean_ones), "mean ones {mean_ones}");
        assert_eq!(d.point_mass(), 1.0 / 65536.0);
    }

    #[test]
    fn product_bernoulli_respects_probs() {
        let d = ProductBernoulli::new(vec![0.0, 1.0, 0.5]);
        let mut rng = seeded_rng(2);
        let mut ones = [0usize; 3];
        let n = 4000;
        for _ in 0..n {
            let s = d.sample(&mut rng);
            for (i, c) in ones.iter_mut().enumerate() {
                *c += usize::from(s.get(i));
            }
        }
        assert_eq!(ones[0], 0);
        assert_eq!(ones[1], n);
        let frac = ones[2] as f64 / n as f64;
        assert!((0.45..=0.55).contains(&frac), "frac {frac}");
    }

    #[test]
    fn product_bernoulli_point_probability() {
        let d = ProductBernoulli::new(vec![0.25, 0.5]);
        let r = BitVec::from_bools(&[true, false]);
        assert!((d.point_probability(&r) - 0.125).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bad prob")]
    fn bernoulli_rejects_bad_probability() {
        ProductBernoulli::new(vec![1.5]);
    }

    #[test]
    fn categorical_frequencies_match() {
        let d = Categorical::new(&[1.0, 3.0]);
        let mut rng = seeded_rng(3);
        let n = 20_000;
        let ones = (0..n).filter(|_| d.sample(&mut rng) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((0.72..=0.78).contains(&frac), "frac {frac}");
        assert!((d.probability(0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn categorical_uniform_probabilities() {
        let d = Categorical::uniform(365);
        assert_eq!(d.len(), 365);
        assert!((d.probability(100) - 1.0 / 365.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty categorical")]
    fn categorical_rejects_empty() {
        Categorical::new(&[]);
    }

    #[test]
    fn zipf_is_monotone_decreasing() {
        let z = Zipf::new(100, 1.2);
        for i in 1..100 {
            assert!(z.probability(i) <= z.probability(i - 1));
        }
        let mut rng = seeded_rng(4);
        // Rank 0 should dominate noticeably.
        let n = 5000;
        let zeros = (0..n).filter(|_| z.sample(&mut rng) == 0).count();
        assert!(zeros > n / 10, "zeros {zeros}");
    }

    fn tiny_schema() -> Arc<Schema> {
        Schema::new(vec![
            AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("sex", DataType::Str, AttributeRole::QuasiIdentifier),
            AttributeDef::new("flag", DataType::Bool, AttributeRole::Sensitive),
        ])
    }

    fn tiny_dist() -> RowDistribution {
        RowDistribution::new(
            tiny_schema(),
            vec![
                AttributeDistribution::IntUniform { lo: 0, hi: 9 },
                AttributeDistribution::StrChoice {
                    values: vec!["F".into(), "M".into()],
                    dist: Categorical::new(&[0.5, 0.5]),
                },
                AttributeDistribution::BoolBernoulli { p: 0.1 },
            ],
        )
    }

    #[test]
    fn row_distribution_samples_valid_rows() {
        let d = tiny_dist();
        let mut rng = seeded_rng(5);
        let ds = d.sample_dataset(500, &mut rng);
        assert_eq!(ds.n_rows(), 500);
        for r in ds.rows() {
            let age = r.get(0).as_int().unwrap();
            assert!((0..=9).contains(&age));
            let sex = ds.resolve(r.get(1).as_str_symbol().unwrap()).to_owned();
            assert!(sex == "F" || sex == "M");
        }
    }

    #[test]
    fn row_point_probability_product() {
        let d = tiny_dist();
        let mut rng = seeded_rng(6);
        let ds = d.sample_dataset(1, &mut rng);
        let interner = ds.interner().clone();
        let resolve = move |s: crate::Symbol| interner.resolve(s).to_owned();
        let row = ds.row_values(0);
        let p = d.point_probability(&row, &resolve);
        // Each row has probability (1/10) * (1/2) * (0.1 or 0.9).
        assert!(p == 0.1 * 0.5 * 0.1 || p == 0.1 * 0.5 * 0.9, "p = {p}");
    }

    #[test]
    fn interval_probability_uniform() {
        let a = AttributeDistribution::IntUniform { lo: 0, hi: 99 };
        assert!((a.interval_probability(0, 9) - 0.1).abs() < 1e-12);
        assert_eq!(a.interval_probability(200, 300), 0.0);
        assert!((a.interval_probability(-50, 199) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn row_sampler_matches_distribution() {
        let d = tiny_dist();
        let sampler = d.sampler();
        let mut rng = seeded_rng(77);
        let rows = sampler.sample_rows(2_000, &mut rng);
        assert_eq!(rows.len(), 2_000);
        let mut trues = 0;
        for row in &rows {
            assert_eq!(row.len(), 3);
            let age = row[0].as_int().unwrap();
            assert!((0..=9).contains(&age));
            let sex = sampler.interner().resolve(row[1].as_str_symbol().unwrap());
            assert!(sex == "F" || sex == "M");
            if row[2].as_bool().unwrap() {
                trues += 1;
            }
        }
        let frac = f64::from(trues) / 2_000.0;
        assert!((0.07..=0.13).contains(&frac), "flag rate {frac}");
        // Point probability via the sampler's own interner.
        let p = sampler.point_probability(&rows[0]);
        assert!(p == 0.1 * 0.5 * 0.1 || p == 0.1 * 0.5 * 0.9, "p = {p}");
    }

    #[test]
    fn interval_probability_choice() {
        let a = AttributeDistribution::IntChoice {
            values: vec![10, 20, 30],
            dist: Categorical::new(&[1.0, 1.0, 2.0]),
        };
        assert!((a.interval_probability(15, 35) - 0.75).abs() < 1e-12);
    }
}
