//! Minimal CSV serialization for [`Dataset`].
//!
//! Experiment binaries dump generated datasets and results as CSV so runs
//! can be inspected and diffed without extra tooling. The dialect is
//! deliberately simple: comma separator, RFC-4180-style quoting for fields
//! containing commas/quotes/newlines, one header row of `name:type` pairs.

use std::fmt::Write as _;
use std::sync::Arc;

use crate::dataset::{Dataset, DatasetBuilder};
use crate::date::Date;
use crate::schema::{AttributeDef, AttributeRole, DataType, Schema};
use crate::value::Value;

/// Errors from CSV parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// Input had no header row.
    MissingHeader,
    /// A header entry was not `name:type`.
    BadHeader(String),
    /// A data row had the wrong number of fields.
    ArityMismatch {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        got: usize,
        /// Fields expected.
        expected: usize,
    },
    /// A field failed to parse as its column type.
    BadField {
        /// 1-based line number.
        line: usize,
        /// Column index.
        col: usize,
        /// Offending text.
        text: String,
    },
    /// Unterminated quoted field.
    UnterminatedQuote {
        /// 1-based line number where the field started.
        line: usize,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::MissingHeader => write!(f, "missing header row"),
            CsvError::BadHeader(h) => write!(f, "bad header entry {h:?} (want name:type)"),
            CsvError::ArityMismatch {
                line,
                got,
                expected,
            } => {
                write!(f, "line {line}: {got} fields, expected {expected}")
            }
            CsvError::BadField { line, col, text } => {
                write!(f, "line {line}, column {col}: cannot parse {text:?}")
            }
            CsvError::UnterminatedQuote { line } => {
                write!(f, "line {line}: unterminated quoted field")
            }
        }
    }
}

impl std::error::Error for CsvError {}

fn needs_quoting(s: &str) -> bool {
    s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r')
}

fn write_field(out: &mut String, s: &str) {
    if needs_quoting(s) {
        out.push('"');
        for ch in s.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
    } else {
        out.push_str(s);
    }
}

/// Serializes a dataset to CSV text. Header cells are `name:type`; the
/// attribute role is encoded as a `#role=` suffix so round-trips preserve it.
pub fn to_csv(ds: &Dataset) -> String {
    let mut out = String::new();
    for (i, attr) in ds.schema().attrs().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let role = match attr.role {
            AttributeRole::DirectIdentifier => "id",
            AttributeRole::QuasiIdentifier => "qi",
            AttributeRole::Sensitive => "sens",
            AttributeRole::Insensitive => "none",
        };
        let header = format!("{}:{}#role={}", attr.name, attr.dtype, role);
        write_field(&mut out, &header);
    }
    out.push('\n');
    for r in 0..ds.n_rows() {
        for c in 0..ds.n_cols() {
            if c > 0 {
                out.push(',');
            }
            match ds.get(r, c) {
                Value::Int(v) => {
                    let _ = write!(out, "{v}");
                }
                Value::Float(v) => {
                    // `{:?}` keeps full round-trip precision for f64.
                    let _ = write!(out, "{v:?}");
                }
                Value::Bool(v) => {
                    let _ = write!(out, "{v}");
                }
                Value::Date(d) => {
                    let _ = write!(out, "{d}");
                }
                Value::Str(s) => write_field(&mut out, ds.resolve(s)),
                Value::Missing => {}
            }
        }
        out.push('\n');
    }
    out
}

/// Splits one logical CSV record (handles quoted fields; `lines` is the raw
/// remaining input iterator so quoted newlines can span lines).
fn parse_record(
    first_line: &str,
    line_no: usize,
    rest: &mut std::str::Lines<'_>,
) -> Result<Vec<String>, CsvError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars: Vec<char> = first_line.chars().collect();
    let mut i = 0;
    let mut in_quotes = false;
    loop {
        if i >= chars.len() {
            if in_quotes {
                // Quoted newline: pull the next physical line.
                match rest.next() {
                    Some(next) => {
                        cur.push('\n');
                        chars = next.chars().collect();
                        i = 0;
                        continue;
                    }
                    None => return Err(CsvError::UnterminatedQuote { line: line_no }),
                }
            }
            fields.push(std::mem::take(&mut cur));
            return Ok(fields);
        }
        let ch = chars[i];
        if in_quotes {
            if ch == '"' {
                if chars.get(i + 1) == Some(&'"') {
                    cur.push('"');
                    i += 2;
                    continue;
                }
                in_quotes = false;
                i += 1;
                continue;
            }
            cur.push(ch);
            i += 1;
        } else {
            match ch {
                ',' => {
                    fields.push(std::mem::take(&mut cur));
                    i += 1;
                }
                '"' if cur.is_empty() => {
                    in_quotes = true;
                    i += 1;
                }
                _ => {
                    cur.push(ch);
                    i += 1;
                }
            }
        }
    }
}

fn parse_header_entry(entry: &str) -> Result<AttributeDef, CsvError> {
    let (name_ty, role_str) = match entry.split_once("#role=") {
        Some((a, b)) => (a, b),
        None => (entry, "none"),
    };
    let (name, ty) = name_ty
        .rsplit_once(':')
        .ok_or_else(|| CsvError::BadHeader(entry.to_owned()))?;
    let dtype = match ty {
        "int" => DataType::Int,
        "float" => DataType::Float,
        "str" => DataType::Str,
        "bool" => DataType::Bool,
        "date" => DataType::Date,
        _ => return Err(CsvError::BadHeader(entry.to_owned())),
    };
    let role = match role_str {
        "id" => AttributeRole::DirectIdentifier,
        "qi" => AttributeRole::QuasiIdentifier,
        "sens" => AttributeRole::Sensitive,
        "none" => AttributeRole::Insensitive,
        _ => return Err(CsvError::BadHeader(entry.to_owned())),
    };
    Ok(AttributeDef::new(name, dtype, role))
}

fn parse_date(s: &str) -> Option<Date> {
    let mut parts = s.split('-');
    let y: i32 = parts.next()?.parse().ok()?;
    let m: u8 = parts.next()?.parse().ok()?;
    let d: u8 = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Date::new(y, m, d)
}

/// Parses CSV text produced by [`to_csv`] back into a [`Dataset`].
pub fn from_csv(text: &str) -> Result<Dataset, CsvError> {
    let mut lines = text.lines();
    let header_line = lines.next().ok_or(CsvError::MissingHeader)?;
    let mut line_no = 1;
    let header = parse_record(header_line, line_no, &mut lines)?;
    let attrs: Vec<AttributeDef> = header
        .iter()
        .map(|h| parse_header_entry(h))
        .collect::<Result<_, _>>()?;
    let schema: Arc<Schema> = Schema::new(attrs);
    let mut b = DatasetBuilder::new(schema.clone());
    while let Some(line) = lines.next() {
        line_no += 1;
        // Blank lines are skipped as formatting noise — except for
        // single-column schemas, where an empty line is a legitimate record
        // (one empty field, i.e. a missing cell).
        if line.is_empty() && schema.len() > 1 {
            continue;
        }
        let fields = parse_record(line, line_no, &mut lines)?;
        if fields.len() != schema.len() {
            return Err(CsvError::ArityMismatch {
                line: line_no,
                got: fields.len(),
                expected: schema.len(),
            });
        }
        let mut row = Vec::with_capacity(fields.len());
        for (c, field) in fields.iter().enumerate() {
            let bad = || CsvError::BadField {
                line: line_no,
                col: c,
                text: field.clone(),
            };
            let v = if field.is_empty() && schema.attr(c).dtype != DataType::Str {
                Value::Missing
            } else {
                match schema.attr(c).dtype {
                    DataType::Int => Value::Int(field.parse().map_err(|_| bad())?),
                    DataType::Float => Value::Float(field.parse().map_err(|_| bad())?),
                    DataType::Bool => Value::Bool(field.parse().map_err(|_| bad())?),
                    DataType::Date => Value::Date(parse_date(field).ok_or_else(bad)?),
                    DataType::Str => Value::Str(b.intern(field)),
                }
            };
            row.push(v);
        }
        b.push_row(row);
    }
    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttributeRole;

    fn sample() -> Dataset {
        let schema = Schema::new(vec![
            AttributeDef::new("zip", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("note", DataType::Str, AttributeRole::Insensitive),
            AttributeDef::new("score", DataType::Float, AttributeRole::Sensitive),
            AttributeDef::new("active", DataType::Bool, AttributeRole::Insensitive),
            AttributeDef::new("born", DataType::Date, AttributeRole::QuasiIdentifier),
        ]);
        let mut b = DatasetBuilder::new(schema);
        let plain = b.intern("plain");
        let tricky = b.intern("has,comma \"and\" quotes\nand newline");
        b.push_row(vec![
            Value::Int(12345),
            Value::Str(plain),
            Value::Float(0.125),
            Value::Bool(true),
            Value::Date(Date::new(1980, 2, 29).unwrap()),
        ]);
        b.push_row(vec![
            Value::Int(-7),
            Value::Str(tricky),
            Value::Missing,
            Value::Bool(false),
            Value::Missing,
        ]);
        b.finish()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let ds = sample();
        let text = to_csv(&ds);
        let back = from_csv(&text).unwrap();
        assert_eq!(back.n_rows(), ds.n_rows());
        assert_eq!(back.schema().attrs(), ds.schema().attrs());
        for r in 0..ds.n_rows() {
            for c in 0..ds.n_cols() {
                let (a, b) = (ds.get(r, c), back.get(r, c));
                match (a, b) {
                    (Value::Str(x), Value::Str(y)) => {
                        assert_eq!(ds.resolve(x), back.resolve(y));
                    }
                    _ => assert_eq!(a, b, "cell ({r},{c})"),
                }
            }
        }
    }

    #[test]
    fn header_encodes_roles() {
        let text = to_csv(&sample());
        let header = text.lines().next().unwrap();
        assert!(header.contains("zip:int#role=qi"));
        assert!(header.contains("score:float#role=sens"));
    }

    #[test]
    fn missing_header_is_an_error() {
        assert!(matches!(from_csv(""), Err(CsvError::MissingHeader)));
    }

    #[test]
    fn arity_mismatch_reported_with_line() {
        let text = "a:int#role=none,b:int#role=none\n1,2\n3\n";
        match from_csv(text) {
            Err(CsvError::ArityMismatch {
                line,
                got,
                expected,
            }) => {
                assert_eq!((line, got, expected), (3, 1, 2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_field_reported() {
        let text = "a:int#role=none\nxyz\n";
        assert!(matches!(from_csv(text), Err(CsvError::BadField { .. })));
    }

    #[test]
    fn bad_header_reported() {
        assert!(matches!(
            from_csv("justaname\n"),
            Err(CsvError::BadHeader(_))
        ));
        assert!(matches!(
            from_csv("a:unknown\n"),
            Err(CsvError::BadHeader(_))
        ));
    }

    #[test]
    fn unterminated_quote_reported() {
        let text = "a:str#role=none\n\"open\n";
        assert!(matches!(
            from_csv(text),
            Err(CsvError::UnterminatedQuote { .. })
        ));
    }

    #[test]
    fn float_precision_survives() {
        let schema = Schema::new(vec![AttributeDef::new(
            "x",
            DataType::Float,
            AttributeRole::Insensitive,
        )]);
        let mut b = DatasetBuilder::new(schema);
        b.push_row(vec![Value::Float(std::f64::consts::PI)]);
        b.push_row(vec![Value::Float(1.0e-300)]);
        let ds = b.finish();
        let back = from_csv(&to_csv(&ds)).unwrap();
        assert_eq!(back.get(0, 0), Value::Float(std::f64::consts::PI));
        assert_eq!(back.get(1, 0), Value::Float(1.0e-300));
    }
}
