//! String interning.
//!
//! Tabular datasets store categorical strings (disease names, ZIP codes as
//! labels, race categories) as compact [`Symbol`] handles so that equality in
//! equivalence-class grouping and linkage joins is an integer comparison.

use std::collections::HashMap;
use std::fmt;

/// Handle to an interned string; valid only for the [`Interner`] that
/// produced it (datasets carry their interner alongside the columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// Raw index into the interner's table.
    pub fn index(&self) -> u32 {
        self.0
    }

    /// Crate-internal constructor used for the missing-cell placeholder
    /// (index 0, which builders reserve by interning `""` eagerly).
    pub(crate) fn from_index(index: u32) -> Symbol {
        Symbol(index)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// An append-only string table with O(1) two-way lookup.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    strings: Vec<Box<str>>,
    lookup: HashMap<Box<str>, Symbol>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning the existing symbol if already present.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.lookup.get(s) {
            return sym;
        }
        let sym = Symbol(
            u32::try_from(self.strings.len()).expect("interner overflow: >4e9 distinct strings"),
        );
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.lookup.insert(boxed, sym);
        sym
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this interner (index out of range).
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Looks up a string without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.lookup.get(s).copied()
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over `(Symbol, &str)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("COVID");
        let b = i.intern("COVID");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("Asthma");
        let b = i.intern("CF");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "Asthma");
        assert_eq!(i.resolve(b), "CF");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        let s = i.intern("x");
        assert_eq!(i.get("x"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iter_preserves_order() {
        let mut i = Interner::new();
        let syms: Vec<_> = ["a", "b", "c"].iter().map(|s| i.intern(s)).collect();
        let collected: Vec<_> = i.iter().collect();
        assert_eq!(collected.len(), 3);
        for (k, (sym, s)) in collected.iter().enumerate() {
            assert_eq!(*sym, syms[k]);
            assert_eq!(*s, ["a", "b", "c"][k]);
        }
    }

    #[test]
    fn empty_state() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
