//! Schemas for tabular datasets.
//!
//! Attributes carry a [`AttributeRole`], mirroring the disclosure-limitation
//! vocabulary the paper uses: *direct identifiers* (redacted by HIPAA-style
//! safe harbor), *quasi-identifiers* (Sweeney's ZIP × birth date × sex), and
//! *sensitive* attributes (the disease column in the paper's toy example).

use std::fmt;
use std::sync::Arc;

/// Cell type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integers.
    Int,
    /// 64-bit floats.
    Float,
    /// Interned categorical strings.
    Str,
    /// Booleans.
    Bool,
    /// Calendar dates.
    Date,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Bool => "bool",
            DataType::Date => "date",
        };
        f.write_str(s)
    }
}

/// Disclosure-limitation role of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttributeRole {
    /// Directly identifying (name, SSN); redacted before release.
    DirectIdentifier,
    /// Indirectly identifying in combination (ZIP, birth date, sex).
    QuasiIdentifier,
    /// The private payload (disease, salary).
    Sensitive,
    /// Neither identifying nor sensitive.
    Insensitive,
}

/// Definition of one attribute (column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeDef {
    /// Column name; unique within a schema.
    pub name: String,
    /// Cell type.
    pub dtype: DataType,
    /// Disclosure-limitation role.
    pub role: AttributeRole,
}

impl AttributeDef {
    /// Convenience constructor.
    pub fn new(name: &str, dtype: DataType, role: AttributeRole) -> Self {
        AttributeDef {
            name: name.to_owned(),
            dtype,
            role,
        }
    }
}

/// An ordered collection of attribute definitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attrs: Vec<AttributeDef>,
}

impl Schema {
    /// Builds a schema, validating name uniqueness.
    ///
    /// # Panics
    /// Panics if two attributes share a name.
    pub fn new(attrs: Vec<AttributeDef>) -> Arc<Self> {
        for (i, a) in attrs.iter().enumerate() {
            for b in &attrs[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate attribute name {:?}", a.name);
            }
        }
        Arc::new(Schema { attrs })
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True iff the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Attribute definition at `idx`.
    pub fn attr(&self, idx: usize) -> &AttributeDef {
        &self.attrs[idx]
    }

    /// All attribute definitions in order.
    pub fn attrs(&self) -> &[AttributeDef] {
        &self.attrs
    }

    /// Index of the attribute named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// Indices of all attributes with the given role.
    pub fn indices_with_role(&self, role: AttributeRole) -> Vec<usize> {
        self.attrs
            .iter()
            .enumerate()
            .filter(|(_, a)| a.role == role)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of the quasi-identifier attributes.
    pub fn quasi_identifiers(&self) -> Vec<usize> {
        self.indices_with_role(AttributeRole::QuasiIdentifier)
    }

    /// Indices of the direct-identifier attributes.
    pub fn direct_identifiers(&self) -> Vec<usize> {
        self.indices_with_role(AttributeRole::DirectIdentifier)
    }

    /// Indices of the sensitive attributes.
    pub fn sensitive(&self) -> Vec<usize> {
        self.indices_with_role(AttributeRole::Sensitive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Arc<Schema> {
        Schema::new(vec![
            AttributeDef::new("name", DataType::Str, AttributeRole::DirectIdentifier),
            AttributeDef::new("zip", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("sex", DataType::Str, AttributeRole::QuasiIdentifier),
            AttributeDef::new("disease", DataType::Str, AttributeRole::Sensitive),
        ])
    }

    #[test]
    fn index_lookup() {
        let s = toy();
        assert_eq!(s.index_of("zip"), Some(1));
        assert_eq!(s.index_of("disease"), Some(4));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn role_queries() {
        let s = toy();
        assert_eq!(s.quasi_identifiers(), vec![1, 2, 3]);
        assert_eq!(s.direct_identifiers(), vec![0]);
        assert_eq!(s.sensitive(), vec![4]);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute name")]
    fn duplicate_names_rejected() {
        Schema::new(vec![
            AttributeDef::new("a", DataType::Int, AttributeRole::Insensitive),
            AttributeDef::new("a", DataType::Str, AttributeRole::Insensitive),
        ]);
    }

    #[test]
    fn attr_access() {
        let s = toy();
        assert_eq!(s.attr(2).name, "age");
        assert_eq!(s.attr(2).dtype, DataType::Int);
        assert_eq!(s.attr(2).role, AttributeRole::QuasiIdentifier);
    }

    #[test]
    fn empty_schema() {
        let s = Schema::new(vec![]);
        assert!(s.is_empty());
        assert!(s.quasi_identifiers().is_empty());
    }
}
