//! Synthetic sparse rating data (Netflix-Prize stand-in).
//!
//! Narayanan and Shmatikov showed that "the movies rated by a subscriber and
//! the approximate times of their rating often makes the subscriber unique in
//! the dataset". What their attack exploits is (a) extreme sparsity — each
//! user rates a tiny subset of a large catalog — and (b) a long-tailed title
//! popularity, so that rating any non-blockbuster title is highly
//! identifying. The generator reproduces both: titles are chosen from a Zipf
//! distribution, ratings are skewed toward high scores, and rating dates are
//! spread over a multi-year window.

use rand::Rng;

use crate::dist::{Categorical, RecordDistribution, Zipf};

/// One (title, rating, day) triple in a user's history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RatingEntry {
    /// Title index in `0..n_titles`.
    pub title: u32,
    /// Star rating 1–5.
    pub rating: u8,
    /// Day offset within the observation window.
    pub day: u32,
}

/// Configuration for the synthetic rating matrix.
#[derive(Debug, Clone)]
pub struct RatingsConfig {
    /// Number of users.
    pub n_users: usize,
    /// Catalog size.
    pub n_titles: usize,
    /// Zipf exponent for title popularity (NS08 operates in the long tail).
    pub zipf_exponent: f64,
    /// Mean number of ratings per user (geometric-ish spread around this).
    pub mean_ratings_per_user: usize,
    /// Length of the observation window in days.
    pub window_days: u32,
}

impl Default for RatingsConfig {
    fn default() -> Self {
        RatingsConfig {
            n_users: 5_000,
            n_titles: 2_000,
            zipf_exponent: 1.1,
            mean_ratings_per_user: 30,
            window_days: 730,
        }
    }
}

/// A sparse user × title rating matrix.
#[derive(Debug, Clone)]
pub struct RatingsData {
    users: Vec<Vec<RatingEntry>>,
    n_titles: usize,
}

impl RatingsData {
    /// Generates a rating matrix according to `config`.
    pub fn generate<R: Rng + ?Sized>(config: &RatingsConfig, rng: &mut R) -> RatingsData {
        assert!(config.n_titles > 0 && config.n_users > 0);
        let popularity = Zipf::new(config.n_titles, config.zipf_exponent);
        // Star ratings skew positive, like real rating data.
        let stars = Categorical::new(&[1.0, 1.5, 3.0, 4.0, 3.5]);
        let mut users = Vec::with_capacity(config.n_users);
        for _ in 0..config.n_users {
            // Ratings-per-user: uniform in [mean/2, 3*mean/2] — enough spread
            // to exercise both sparse and dense histories.
            let lo = (config.mean_ratings_per_user / 2).max(1);
            let hi = (config.mean_ratings_per_user * 3) / 2;
            let k = rng.gen_range(lo..=hi.max(lo));
            let mut history: Vec<RatingEntry> = Vec::with_capacity(k);
            let mut seen = std::collections::HashSet::with_capacity(k * 2);
            let mut attempts = 0;
            while history.len() < k && attempts < k * 50 {
                attempts += 1;
                let title = popularity.sample(rng) as u32;
                if !seen.insert(title) {
                    continue; // at most one rating per (user, title)
                }
                history.push(RatingEntry {
                    title,
                    rating: (stars.sample(rng) + 1) as u8,
                    day: rng.gen_range(0..config.window_days),
                });
            }
            history.sort_by_key(|e| e.title);
            users.push(history);
        }
        RatingsData {
            users,
            n_titles: config.n_titles,
        }
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.users.len()
    }

    /// Catalog size.
    pub fn n_titles(&self) -> usize {
        self.n_titles
    }

    /// A user's full history, sorted by title.
    pub fn user(&self, u: usize) -> &[RatingEntry] {
        &self.users[u]
    }

    /// Looks up user `u`'s rating of `title`, if any (binary search).
    pub fn rating_of(&self, u: usize, title: u32) -> Option<RatingEntry> {
        let h = &self.users[u];
        h.binary_search_by_key(&title, |e| e.title)
            .ok()
            .map(|i| h[i])
    }

    /// Global number of ratings.
    pub fn total_ratings(&self) -> usize {
        self.users.iter().map(Vec::len).sum()
    }

    /// Number of users who rated `title` (support size — low in the Zipf
    /// tail, which is what makes tail titles identifying).
    pub fn title_support(&self, title: u32) -> usize {
        self.users
            .iter()
            .filter(|h| h.binary_search_by_key(&title, |e| e.title).is_ok())
            .count()
    }

    /// Samples an *auxiliary-knowledge* view of user `u`, as NS08 model it:
    /// `k` of the user's ratings, each with its rating value kept exactly and
    /// its date perturbed by up to `date_fuzz_days` (uniform, both
    /// directions). Returns fewer than `k` entries if the history is short.
    pub fn auxiliary_sample<R: Rng + ?Sized>(
        &self,
        u: usize,
        k: usize,
        date_fuzz_days: u32,
        rng: &mut R,
    ) -> Vec<RatingEntry> {
        let h = &self.users[u];
        let mut idx: Vec<usize> = (0..h.len()).collect();
        // Fisher–Yates prefix shuffle for a k-subset.
        let take = k.min(h.len());
        for i in 0..take {
            let j = rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        idx[..take]
            .iter()
            .map(|&i| {
                let e = h[i];
                let fuzz = if date_fuzz_days == 0 {
                    0
                } else {
                    rng.gen_range(-(date_fuzz_days as i64)..=(date_fuzz_days as i64))
                };
                RatingEntry {
                    title: e.title,
                    rating: e.rating,
                    day: (e.day as i64 + fuzz).clamp(0, i64::MAX) as u32,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    fn small() -> RatingsData {
        let cfg = RatingsConfig {
            n_users: 300,
            n_titles: 500,
            mean_ratings_per_user: 20,
            ..RatingsConfig::default()
        };
        RatingsData::generate(&cfg, &mut seeded_rng(21))
    }

    #[test]
    fn histories_are_sorted_and_deduplicated() {
        let d = small();
        for u in 0..d.n_users() {
            let h = d.user(u);
            for w in h.windows(2) {
                assert!(w[0].title < w[1].title, "unsorted or duplicate titles");
            }
        }
    }

    #[test]
    fn ratings_are_valid_stars() {
        let d = small();
        for u in 0..d.n_users() {
            for e in d.user(u) {
                assert!((1..=5).contains(&e.rating));
                assert!(e.day < 730);
            }
        }
    }

    #[test]
    fn popularity_is_long_tailed() {
        let d = small();
        let head = d.title_support(0);
        // Average support over a tail slice.
        let tail_avg: f64 = (400..500).map(|t| d.title_support(t) as f64).sum::<f64>() / 100.0;
        assert!(
            head as f64 > 5.0 * (tail_avg + 0.1),
            "head {head} vs tail {tail_avg}"
        );
    }

    #[test]
    fn rating_lookup_round_trips() {
        let d = small();
        let h = d.user(7);
        assert!(!h.is_empty());
        let e = h[h.len() / 2];
        assert_eq!(d.rating_of(7, e.title), Some(e));
        // A title the user did not rate.
        let unrated = (0..d.n_titles() as u32)
            .find(|t| h.binary_search_by_key(t, |e| e.title).is_err())
            .unwrap();
        assert_eq!(d.rating_of(7, unrated), None);
    }

    #[test]
    fn auxiliary_sample_subset_semantics() {
        let d = small();
        let mut rng = seeded_rng(5);
        let aux = d.auxiliary_sample(3, 5, 0, &mut rng);
        assert!(aux.len() <= 5);
        for e in &aux {
            // With zero fuzz, every auxiliary entry matches the history.
            assert_eq!(d.rating_of(3, e.title), Some(*e));
        }
        // Distinct titles within the sample.
        let mut titles: Vec<_> = aux.iter().map(|e| e.title).collect();
        titles.sort_unstable();
        titles.dedup();
        assert_eq!(titles.len(), aux.len());
    }

    #[test]
    fn auxiliary_sample_fuzzes_dates_only() {
        let d = small();
        let mut rng = seeded_rng(6);
        let aux = d.auxiliary_sample(3, 8, 14, &mut rng);
        for e in &aux {
            let orig = d.rating_of(3, e.title).expect("title from history");
            assert_eq!(orig.rating, e.rating);
            let drift = (i64::from(orig.day) - i64::from(e.day)).abs();
            assert!(drift <= 14, "drift {drift}");
        }
    }

    #[test]
    fn mean_history_length_near_configured() {
        let d = small();
        let mean = d.total_ratings() as f64 / d.n_users() as f64;
        assert!((15.0..=25.0).contains(&mean), "mean {mean}");
    }
}
