//! Versioned mutable datasets: delta segments + tombstone bitmaps over an
//! immutable packed base.
//!
//! The paper's production story — and the attacks aimed at it — concern
//! *live* databases that keep answering as rows arrive and depart. A
//! [`VersionedDataset`] makes the repo's build-once [`Dataset`] mutable
//! without giving up any of the properties the query stack relies on:
//!
//! * the **base** dataset stays immutable (its packed segments and cached
//!   selections remain valid for as long as the base exists);
//! * **inserts** append to an open tail **delta segment** — a small
//!   [`Dataset`] sharing the base's schema and interner — which freezes at
//!   [`DELTA_SEGMENT_ROWS`] rows, after which a new tail opens;
//! * **deletes** set bits in per-segment **tombstone bitmaps**
//!   ([`SelectionVector`]s); no row ever moves, so cached per-segment
//!   selections stay valid and a live count is just
//!   [`SelectionVector::count_and_not`] against the mask;
//! * once the delta count reaches the **compaction threshold**
//!   (`SO_COMPACT_THRESHOLD`, default [`DEFAULT_COMPACT_THRESHOLD`]), the
//!   live rows are gathered into a fresh packed base, tombstones are
//!   cleared, and [`VersionedDataset::base_epoch`] is bumped so downstream
//!   caches know the segment layout changed wholesale.
//!
//! Row identity follows **live indices**: position `k` in the live
//! ordering (base rows first, then delta segments in creation order,
//! tombstoned rows skipped). Mutations address live indices, which makes a
//! replayed mutation transcript independent of *when* compaction ran —
//! the answer to any counting query is invariant under the threshold.

use std::collections::BTreeSet;

use crate::dataset::Dataset;
use crate::selection::SelectionVector;
use crate::value::Value;

/// Rows after which the open tail delta freezes and a new one opens.
/// Small enough that a delta rescan (the repair step of the incremental
/// engine) is cheap; large enough that segment bookkeeping stays trivial.
pub const DELTA_SEGMENT_ROWS: usize = 1024;

/// Compaction threshold used when `SO_COMPACT_THRESHOLD` is unset or
/// unusable: compact once this many delta segments have accumulated.
pub const DEFAULT_COMPACT_THRESHOLD: usize = 8;

/// Environment variable overriding the compaction threshold.
pub const COMPACT_ENV: &str = "SO_COMPACT_THRESHOLD";

/// Parses a compaction threshold the way [`compact_threshold_from_env`]
/// does, from an explicit optional string: a positive integer (surrounding
/// whitespace tolerated) wins, anything else — unset, empty, garbage, or
/// zero — falls back to [`DEFAULT_COMPACT_THRESHOLD`]. Mirrors the pinned
/// `SO_THREADS`/`SO_STORAGE`/`SO_SCHEDULE` fallback treatment.
fn threshold_from(env: Option<&str>) -> usize {
    match env.and_then(|s| s.trim().parse::<usize>().ok()) {
        Some(t) if t >= 1 => t,
        _ => DEFAULT_COMPACT_THRESHOLD,
    }
}

/// The process-default compaction threshold: `SO_COMPACT_THRESHOLD` if it
/// parses to a positive integer, else [`DEFAULT_COMPACT_THRESHOLD`].
pub fn compact_threshold_from_env() -> usize {
    threshold_from(std::env::var(COMPACT_ENV).ok().as_deref())
}

/// What one mutation did — returned by [`VersionedDataset::insert_rows`]
/// and [`VersionedDataset::delete_live`] so callers (auditors, incremental
/// caches) can react without diffing the dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutationEffect {
    /// The dataset version after the mutation.
    pub version: u64,
    /// Columns with at least one non-missing cell among the newly inserted
    /// rows (empty for deletes: tombstoning invalidates no cached
    /// selection, only the masks).
    pub touched: BTreeSet<usize>,
    /// True iff this mutation tripped the compaction threshold.
    pub compacted: bool,
    /// Rows appended by this mutation.
    pub rows_inserted: usize,
    /// Rows tombstoned by this mutation.
    pub rows_deleted: usize,
}

/// A mutable dataset version: immutable base + ordered delta segments +
/// per-segment tombstones. See the module docs for the invariants.
#[derive(Debug, Clone)]
pub struct VersionedDataset {
    base: Dataset,
    deltas: Vec<Dataset>,
    /// Tombstone bitmaps, index 0 for the base, `1 + i` for delta `i`.
    /// Always sized to the owning segment's current row count.
    tombs: Vec<SelectionVector>,
    /// Per-delta touched-column sets: column `c` is present iff some row of
    /// that delta carries a non-missing cell in `c`. The base has no entry
    /// (every column counts as touched there).
    touched: Vec<BTreeSet<usize>>,
    version: u64,
    base_epoch: u64,
    compact_threshold: usize,
}

impl VersionedDataset {
    /// Wraps `base` as version 0, with the compaction threshold taken from
    /// `SO_COMPACT_THRESHOLD` (see [`compact_threshold_from_env`]).
    pub fn new(base: Dataset) -> Self {
        Self::with_compact_threshold(base, compact_threshold_from_env())
    }

    /// Wraps `base` with an explicit compaction threshold — the
    /// constructor tests use to compare compaction schedules
    /// deterministically, independent of the environment.
    ///
    /// # Panics
    /// Panics if `compact_threshold` is zero.
    pub fn with_compact_threshold(base: Dataset, compact_threshold: usize) -> Self {
        assert!(compact_threshold >= 1, "compaction threshold must be >= 1");
        let n = base.n_rows();
        VersionedDataset {
            base,
            deltas: Vec::new(),
            tombs: vec![SelectionVector::none(n)],
            touched: Vec::new(),
            version: 0,
            base_epoch: 0,
            compact_threshold,
        }
    }

    /// Monotone content version: 0 at wrap, +1 per mutation.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Bumped once per compaction — the signal that the segment layout
    /// changed wholesale and per-segment caches must start over.
    pub fn base_epoch(&self) -> u64 {
        self.base_epoch
    }

    /// The compaction threshold in effect.
    pub fn compact_threshold(&self) -> usize {
        self.compact_threshold
    }

    /// Number of segments: the base plus every delta.
    pub fn n_segments(&self) -> usize {
        1 + self.deltas.len()
    }

    /// Segment `i` as a plain dataset: 0 is the base, `1 + k` is delta `k`.
    ///
    /// # Panics
    /// Panics if `i >= n_segments()`.
    pub fn segment(&self, i: usize) -> &Dataset {
        if i == 0 {
            &self.base
        } else {
            &self.deltas[i - 1]
        }
    }

    /// The tombstone bitmap of segment `i` (always sized to the segment).
    ///
    /// # Panics
    /// Panics if `i >= n_segments()`.
    pub fn tombstones(&self, i: usize) -> &SelectionVector {
        &self.tombs[i]
    }

    /// The touched-column set of segment `i`: `None` for the base (every
    /// column counts as touched), `Some` for a delta — a column absent
    /// from the set holds [`Value::Missing`] in **every** row of that
    /// segment, which is what lets the incremental engine synthesize atom
    /// selections there without scanning.
    ///
    /// # Panics
    /// Panics if `i >= n_segments()`.
    pub fn touched_columns(&self, i: usize) -> Option<&BTreeSet<usize>> {
        if i == 0 {
            assert!(i < self.n_segments());
            None
        } else {
            Some(&self.touched[i - 1])
        }
    }

    /// Rows alive in segment `i` (segment rows minus its tombstones).
    pub fn live_in_segment(&self, i: usize) -> usize {
        self.segment(i).n_rows() - self.tombs[i].count()
    }

    /// Total live rows across all segments — the `n` of the current
    /// version.
    pub fn n_live(&self) -> usize {
        (0..self.n_segments())
            .map(|i| self.live_in_segment(i))
            .sum()
    }

    /// Maps a live index (position in the live ordering: base first, then
    /// deltas in order, tombstoned rows skipped) to its physical
    /// `(segment, row)` address, or `None` past the end.
    pub fn locate_live(&self, live: usize) -> Option<(usize, usize)> {
        let mut remaining = live;
        for seg in 0..self.n_segments() {
            let alive = self.live_in_segment(seg);
            if remaining < alive {
                // remaining-th non-tombstoned row of this segment.
                let tomb = &self.tombs[seg];
                let mut seen = 0usize;
                for row in 0..self.segment(seg).n_rows() {
                    if tomb.get(row) {
                        continue;
                    }
                    if seen == remaining {
                        return Some((seg, row));
                    }
                    seen += 1;
                }
                unreachable!("live count promised a row");
            }
            remaining -= alive;
        }
        None
    }

    /// Appends rows as a new version. Rows land in the open tail delta
    /// (opened or rolled over as needed); [`Value::Str`] cells must carry
    /// symbols already present in the shared interner (see
    /// [`Dataset::append_rows`]). An empty batch is a no-op that returns
    /// the current version untouched.
    ///
    /// # Panics
    /// Panics on arity or type mismatch, or on a foreign `Str` symbol.
    pub fn insert_rows(&mut self, rows: &[Vec<Value>]) -> MutationEffect {
        if rows.is_empty() {
            return MutationEffect {
                version: self.version,
                touched: BTreeSet::new(),
                compacted: false,
                rows_inserted: 0,
                rows_deleted: 0,
            };
        }
        let tail_frozen = match self.deltas.last() {
            Some(d) => d.n_rows() >= DELTA_SEGMENT_ROWS,
            None => true,
        };
        if tail_frozen {
            self.deltas.push(self.base.empty_like());
            self.tombs.push(SelectionVector::none(0));
            self.touched.push(BTreeSet::new());
        }
        let tail = self.deltas.len() - 1;
        let mut touched = BTreeSet::new();
        for row in rows {
            for (c, v) in row.iter().enumerate() {
                if !v.is_missing() {
                    touched.insert(c);
                }
            }
        }
        self.deltas[tail].append_rows(rows);
        self.tombs[1 + tail].grow(self.deltas[tail].n_rows());
        self.touched[tail].extend(touched.iter().copied());
        self.version += 1;
        let m = crate::obs::delta_metrics();
        m.rows_inserted.add(rows.len() as u64);
        let compacted = self.maybe_compact();
        self.publish_gauges();
        MutationEffect {
            version: self.version,
            touched,
            compacted,
            rows_inserted: rows.len(),
            rows_deleted: 0,
        }
    }

    /// Tombstones the rows at the given **live indices** (all interpreted
    /// against the state at the start of the call; duplicates collapse) as
    /// a new version. Cached per-segment selections stay valid — only the
    /// tombstone masks change. An empty batch is a no-op.
    ///
    /// # Panics
    /// Panics if any index is `>= n_live()`.
    pub fn delete_live(&mut self, live: &[usize]) -> MutationEffect {
        if live.is_empty() {
            return MutationEffect {
                version: self.version,
                touched: BTreeSet::new(),
                compacted: false,
                rows_inserted: 0,
                rows_deleted: 0,
            };
        }
        let n_live = self.n_live();
        // Physical addresses first, then tombstone: the live ordering must
        // not shift under us mid-batch.
        let mut targets: BTreeSet<(usize, usize)> = BTreeSet::new();
        for &idx in live {
            assert!(idx < n_live, "live index {idx} out of range {n_live}");
            let addr = self.locate_live(idx).expect("index checked in range");
            targets.insert(addr);
        }
        let deleted = targets.len();
        for (seg, row) in targets {
            self.tombs[seg].set(row, true);
        }
        self.version += 1;
        crate::obs::delta_metrics().rows_deleted.add(deleted as u64);
        let compacted = self.maybe_compact();
        self.publish_gauges();
        MutationEffect {
            version: self.version,
            touched: BTreeSet::new(),
            compacted,
            rows_inserted: 0,
            rows_deleted: deleted,
        }
    }

    /// Materializes the live rows of the current version as one plain
    /// [`Dataset`] (live ordering, shared schema/interner/engine) — the
    /// from-scratch oracle the incremental engine is checked against, and
    /// the gather step of compaction.
    pub fn snapshot(&self) -> Dataset {
        let live_base: Vec<usize> = (0..self.base.n_rows())
            .filter(|&r| !self.tombs[0].get(r))
            .collect();
        let mut out = self.base.select_rows(&live_base);
        for (k, delta) in self.deltas.iter().enumerate() {
            let tomb = &self.tombs[1 + k];
            let rows: Vec<Vec<Value>> = (0..delta.n_rows())
                .filter(|&r| !tomb.get(r))
                .map(|r| delta.row_values(r))
                .collect();
            out.append_rows(&rows);
        }
        out
    }

    /// Compacts if the delta count reached the threshold; true iff it did.
    fn maybe_compact(&mut self) -> bool {
        if self.deltas.len() < self.compact_threshold {
            return false;
        }
        let dropped: usize = self.tombs.iter().map(SelectionVector::count).sum();
        let fresh = self.snapshot();
        let m = crate::obs::delta_metrics();
        m.compaction_runs.inc();
        m.compaction_rows_rewritten.add(fresh.n_rows() as u64);
        m.compaction_rows_dropped.add(dropped as u64);
        let n = fresh.n_rows();
        self.base = fresh;
        self.deltas.clear();
        self.touched.clear();
        self.tombs = vec![SelectionVector::none(n)];
        self.base_epoch += 1;
        true
    }

    fn publish_gauges(&self) {
        let m = crate::obs::delta_metrics();
        m.segments.set(self.deltas.len() as f64);
        m.open_rows
            .set(self.deltas.last().map_or(0, Dataset::n_rows) as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttributeDef, AttributeRole, DataType, Schema};
    use crate::storage::StorageEngine;
    use crate::DatasetBuilder;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::new(vec![
            AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("score", DataType::Int, AttributeRole::Sensitive),
        ])
    }

    fn base(n: usize) -> Dataset {
        let mut b = DatasetBuilder::new(schema());
        for i in 0..n {
            b.push_row(vec![
                Value::Int((i % 90) as i64),
                Value::Int((i % 25) as i64),
            ]);
        }
        b.finish_with_engine(StorageEngine::Packed)
    }

    /// Scalar oracle: count of live rows with `age` in `[lo, hi]`.
    fn count_age(v: &VersionedDataset, lo: i64, hi: i64) -> usize {
        let snap = v.snapshot();
        (0..snap.n_rows())
            .filter(|&r| {
                snap.get(r, 0)
                    .as_int()
                    .is_some_and(|a| (lo..=hi).contains(&a))
            })
            .count()
    }

    #[test]
    fn threshold_parsing_mirrors_the_env_knob_contract() {
        assert_eq!(threshold_from(Some("4")), 4);
        assert_eq!(threshold_from(Some(" 2 ")), 2);
        assert_eq!(threshold_from(Some("1")), 1);
        assert_eq!(threshold_from(None), DEFAULT_COMPACT_THRESHOLD);
        assert_eq!(threshold_from(Some("")), DEFAULT_COMPACT_THRESHOLD);
        assert_eq!(threshold_from(Some("0")), DEFAULT_COMPACT_THRESHOLD);
        assert_eq!(threshold_from(Some("-3")), DEFAULT_COMPACT_THRESHOLD);
        assert_eq!(threshold_from(Some("lots")), DEFAULT_COMPACT_THRESHOLD);
    }

    #[test]
    fn insert_opens_and_rolls_delta_segments() {
        let mut v = VersionedDataset::with_compact_threshold(base(100), 100);
        assert_eq!(v.version(), 0);
        assert_eq!(v.n_segments(), 1);
        assert_eq!(v.n_live(), 100);
        let eff = v.insert_rows(&[vec![Value::Int(500), Value::Int(1)]]);
        assert_eq!(eff.version, 1);
        assert_eq!(eff.touched, BTreeSet::from([0, 1]));
        assert!(!eff.compacted);
        assert_eq!(v.n_segments(), 2);
        assert_eq!(v.n_live(), 101);
        // Fill past the freeze threshold: next insert opens segment 3.
        let filler: Vec<Vec<Value>> = (0..DELTA_SEGMENT_ROWS)
            .map(|i| vec![Value::Int(500), Value::Int(i as i64)])
            .collect();
        v.insert_rows(&filler);
        assert_eq!(v.n_segments(), 2, "one batch stays in one segment");
        v.insert_rows(&[vec![Value::Int(501), Value::Int(0)]]);
        assert_eq!(v.n_segments(), 3, "frozen tail rolled over");
        assert_eq!(v.n_live(), 100 + 1 + DELTA_SEGMENT_ROWS + 1);
        assert_eq!(count_age(&v, 500, 501), DELTA_SEGMENT_ROWS + 2);
    }

    #[test]
    fn touched_columns_track_non_missing_cells() {
        let mut v = VersionedDataset::with_compact_threshold(base(10), 100);
        let eff = v.insert_rows(&[vec![Value::Missing, Value::Int(7)]]);
        assert_eq!(eff.touched, BTreeSet::from([1]));
        assert_eq!(v.touched_columns(1), Some(&BTreeSet::from([1])));
        assert_eq!(v.touched_columns(0), None, "base counts as all-touched");
        // A later batch widens the same open segment's set.
        v.insert_rows(&[vec![Value::Int(3), Value::Missing]]);
        assert_eq!(v.touched_columns(1), Some(&BTreeSet::from([0, 1])));
    }

    #[test]
    fn delete_live_tombstones_across_segments() {
        let mut v = VersionedDataset::with_compact_threshold(base(100), 100);
        v.insert_rows(&[
            vec![Value::Int(200), Value::Int(0)],
            vec![Value::Int(201), Value::Int(0)],
        ]);
        assert_eq!(v.n_live(), 102);
        // Live index 0 = base row 0 (age 0); live index 100 = first delta
        // row (age 200). Duplicates collapse.
        let eff = v.delete_live(&[0, 100, 100]);
        assert_eq!(eff.rows_deleted, 2);
        assert_eq!(eff.touched, BTreeSet::new());
        assert_eq!(v.n_live(), 100);
        assert!(v.tombstones(0).get(0));
        assert!(v.tombstones(1).get(0));
        assert_eq!(count_age(&v, 200, 201), 1);
        // Live indices shifted: the old live 1 (base row 1) is now live 0.
        v.delete_live(&[0]);
        assert!(v.tombstones(0).get(1));
        assert_eq!(v.n_live(), 99);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn delete_live_rejects_out_of_range() {
        let mut v = VersionedDataset::with_compact_threshold(base(5), 100);
        v.delete_live(&[5]);
    }

    #[test]
    fn snapshot_matches_logical_state() {
        let mut v = VersionedDataset::with_compact_threshold(base(70), 100);
        v.insert_rows(&[vec![Value::Int(300), Value::Int(9)]]);
        v.delete_live(&[3, 70]);
        let snap = v.snapshot();
        assert_eq!(snap.n_rows(), 69);
        // Live ordering: base rows (minus row 3), delta rows (minus the
        // inserted one, which was deleted at live index 70).
        assert_eq!(snap.get(0, 0), Value::Int(0));
        assert_eq!(snap.get(3, 0), Value::Int(4), "row 3 skipped");
        assert!(Arc::ptr_eq(snap.interner(), v.segment(0).interner()));
    }

    #[test]
    fn compaction_preserves_answers_and_bumps_epoch() {
        // Threshold 2: the second delta segment triggers compaction.
        let mut v = VersionedDataset::with_compact_threshold(base(100), 2);
        let mut w = VersionedDataset::with_compact_threshold(base(100), 1_000_000);
        let filler: Vec<Vec<Value>> = (0..DELTA_SEGMENT_ROWS)
            .map(|i| vec![Value::Int(400), Value::Int(i as i64)])
            .collect();
        for vd in [&mut v, &mut w] {
            vd.insert_rows(&filler);
            vd.delete_live(&[0, 50]);
            vd.insert_rows(&[vec![Value::Int(401), Value::Int(1)]]);
        }
        assert_eq!(v.base_epoch(), 1, "threshold 2 compacted");
        assert_eq!(v.n_segments(), 1, "deltas folded into the base");
        assert_eq!(w.base_epoch(), 0, "huge threshold never compacts");
        assert_eq!(v.version(), w.version(), "versions advance identically");
        assert_eq!(v.n_live(), w.n_live());
        for (lo, hi) in [(0, 89), (400, 401), (0, i64::MAX)] {
            assert_eq!(count_age(&v, lo, hi), count_age(&w, lo, hi), "{lo}..{hi}");
        }
        // Tombstones were physically dropped by compaction.
        assert_eq!(v.tombstones(0).count(), 0);
        assert_eq!(v.segment(0).n_rows(), v.n_live());
    }

    #[test]
    fn locate_live_walks_segments_and_tombstones() {
        let mut v = VersionedDataset::with_compact_threshold(base(3), 100);
        v.insert_rows(&[vec![Value::Int(9), Value::Int(9)]]);
        assert_eq!(v.locate_live(0), Some((0, 0)));
        assert_eq!(v.locate_live(3), Some((1, 0)));
        assert_eq!(v.locate_live(4), None);
        v.delete_live(&[1]);
        assert_eq!(v.locate_live(1), Some((0, 2)), "tombstoned row skipped");
        assert_eq!(v.locate_live(2), Some((1, 0)));
    }

    #[test]
    fn empty_mutations_are_no_ops() {
        let mut v = VersionedDataset::with_compact_threshold(base(10), 100);
        let a = v.insert_rows(&[]);
        let b = v.delete_live(&[]);
        assert_eq!(a.version, 0);
        assert_eq!(b.version, 0);
        assert_eq!(v.version(), 0);
        assert_eq!(v.n_segments(), 1);
    }

    #[test]
    fn empty_base_grows_from_nothing() {
        let mut v = VersionedDataset::with_compact_threshold(base(0), 100);
        assert_eq!(v.n_live(), 0);
        assert_eq!(v.snapshot().n_rows(), 0);
        v.insert_rows(&[vec![Value::Int(1), Value::Int(2)]]);
        assert_eq!(v.n_live(), 1);
        assert_eq!(count_age(&v, 1, 1), 1);
        v.delete_live(&[0]);
        assert_eq!(v.n_live(), 0);
    }
}
