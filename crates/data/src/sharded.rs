//! Word-aligned row sharding — the dataset view behind parallel execution.
//!
//! The paper's attack workloads (Dinur–Nissim reconstruction, census
//! tabulation replay, linkage joins) are embarrassingly parallel over rows:
//! every query is a predicate count, and a count over `n` rows is the sum of
//! counts over any partition of those rows. A [`ShardedDataset`] fixes one
//! such partition: contiguous row ranges whose starts are multiples of 64,
//! so a shard-local [`crate::SelectionVector`] occupies whole words of the
//! full-dataset bitmap and merging shard results is a pure word copy in
//! shard order ([`crate::SelectionVector::concat_aligned`]) — no bit
//! shifting, no overlap, and bit-identical output no matter how many shards
//! the work was split into.

use std::ops::Range;

use crate::dataset::Dataset;

/// Splits `0..n_rows` into at most `max_shards` contiguous ranges, each
/// starting at a multiple of 64 (so shard bitmaps align to whole words of
/// the full bitmap). Every row is covered exactly once, ranges come back in
/// ascending order, and only the final range may end off a word boundary.
/// Returns fewer than `max_shards` ranges when `n_rows` spans fewer words;
/// returns no ranges for an empty dataset.
///
/// ```
/// use so_data::sharded::word_aligned_ranges;
/// let shards = word_aligned_ranges(200, 3);
/// assert_eq!(shards, vec![0..128, 128..200]);
/// assert!(shards.iter().all(|r| r.start % 64 == 0));
/// ```
///
/// # Panics
/// Panics if `max_shards` is zero.
pub fn word_aligned_ranges(n_rows: usize, max_shards: usize) -> Vec<Range<usize>> {
    assert!(max_shards >= 1, "need at least one shard");
    let words = n_rows.div_ceil(64);
    if words == 0 {
        return Vec::new();
    }
    let shards = max_shards.min(words);
    let rows_per_shard = words.div_ceil(shards) * 64;
    (0..shards)
        .map(|i| i * rows_per_shard..((i + 1) * rows_per_shard).min(n_rows))
        .filter(|r| !r.is_empty())
        .collect()
}

/// A read-only sharded view of a [`Dataset`]: the dataset plus one fixed
/// word-aligned partition of its rows (see [`word_aligned_ranges`]).
///
/// The view borrows the dataset — nothing is copied. Parallel executors hand
/// each shard's range to a worker thread, scan only those rows, and
/// concatenate the per-shard bitmaps in shard order.
#[derive(Debug, Clone)]
pub struct ShardedDataset<'a> {
    ds: &'a Dataset,
    ranges: Vec<Range<usize>>,
}

impl<'a> ShardedDataset<'a> {
    /// Partitions `ds` into at most `max_shards` word-aligned row chunks.
    ///
    /// # Panics
    /// Panics if `max_shards` is zero.
    pub fn new(ds: &'a Dataset, max_shards: usize) -> Self {
        ShardedDataset {
            ds,
            ranges: word_aligned_ranges(ds.n_rows(), max_shards),
        }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &'a Dataset {
        self.ds
    }

    /// Number of shards (zero iff the dataset is empty).
    pub fn n_shards(&self) -> usize {
        self.ranges.len()
    }

    /// The shard row ranges, ascending and disjoint, covering every row.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// Row range of shard `i`.
    ///
    /// # Panics
    /// Panics if `i >= n_shards()`.
    pub fn range(&self, i: usize) -> Range<usize> {
        self.ranges[i].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttributeDef, AttributeRole, DataType, Schema};
    use crate::value::Value;
    use crate::DatasetBuilder;

    #[test]
    fn ranges_cover_every_row_exactly_once() {
        for n in [0usize, 1, 63, 64, 65, 127, 128, 200, 1000] {
            for shards in [1usize, 2, 3, 4, 7, 8, 64] {
                let ranges = word_aligned_ranges(n, shards);
                let mut next = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, next, "n={n} shards={shards}");
                    assert_eq!(r.start % 64, 0, "n={n} shards={shards}");
                    assert!(r.end > r.start, "n={n} shards={shards}");
                    next = r.end;
                }
                assert_eq!(next, n, "n={n} shards={shards}");
                assert!(ranges.len() <= shards);
            }
        }
    }

    #[test]
    fn tiny_datasets_collapse_to_one_shard() {
        // Fewer rows than one word per requested shard: no empty shards.
        assert_eq!(word_aligned_ranges(10, 8), vec![0..10]);
        assert_eq!(word_aligned_ranges(64, 8), vec![0..64]);
        assert_eq!(word_aligned_ranges(0, 8), Vec::<Range<usize>>::new());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        word_aligned_ranges(10, 0);
    }

    #[test]
    fn sharded_dataset_view() {
        let schema = Schema::new(vec![AttributeDef::new(
            "v",
            DataType::Int,
            AttributeRole::Sensitive,
        )]);
        let mut b = DatasetBuilder::new(schema);
        for i in 0..150i64 {
            b.push_row(vec![Value::Int(i)]);
        }
        let ds = b.finish();
        let sharded = ShardedDataset::new(&ds, 2);
        assert_eq!(sharded.n_shards(), 2);
        assert_eq!(sharded.range(0), 0..128);
        assert_eq!(sharded.range(1), 128..150);
        assert_eq!(sharded.dataset().n_rows(), 150);
        let total: usize = sharded.ranges().iter().map(|r| r.len()).sum();
        assert_eq!(total, ds.n_rows());
    }
}
