//! Bit vectors and bit-string datasets.
//!
//! Two of the paper's settings live over binary domains:
//!
//! * Theorem 1.1 (Dinur–Nissim) reconstructs a dataset
//!   `x ∈ {0,1}^n` from noisy subset-sum answers. We represent `x` as a
//!   [`BitVec`] of length `n`.
//! * Theorem 2.8's composition attack isolates one record in a dataset of
//!   `n` records each drawn from `{0,1}^d`; we represent that as a
//!   [`BitDataset`] (`n` rows × `d` bits).

use std::fmt;

/// A packed, fixed-length bit vector.
///
/// ```
/// use so_data::BitVec;
/// let mut x = BitVec::zeros(8);
/// x.set(0, true);
/// x.set(7, true);
/// assert_eq!(x.count_ones(), 2);
/// let y = BitVec::from_bools(&[true, false, false, false, false, false, false, false]);
/// assert_eq!(x.hamming_distance(&y), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// All-zero bit vector of length `len`.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// All-one bit vector of length `len` (tail bits beyond `len` stay zero).
    pub fn ones(len: usize) -> Self {
        let mut words = vec![u64::MAX; len.div_ceil(64)];
        let tail = len % 64;
        if tail != 0 {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << tail) - 1;
            }
        }
        BitVec { words, len }
    }

    /// Builds from a slice of bools, packing a whole word at a time (the
    /// old bit-at-a-time `set` loop re-read and re-wrote each word 64
    /// times). Tail bits beyond `len` stay zero.
    pub fn from_bools(bits: &[bool]) -> Self {
        fn pack_word(chunk: &[bool]) -> u64 {
            let mut word = 0u64;
            for (b, &bit) in chunk.iter().enumerate() {
                word |= u64::from(bit) << b;
            }
            word
        }
        let mut words = Vec::with_capacity(bits.len().div_ceil(64));
        let mut chunks = bits.chunks_exact(64);
        words.extend((&mut chunks).map(pack_word));
        let rem = chunks.remainder();
        if !rem.is_empty() {
            words.push(pack_word(rem));
        }
        BitVec {
            words,
            len: bits.len(),
        }
    }

    /// Builds from an iterator of bools, streaming 64 bits into each word
    /// without materializing an intermediate `Vec<bool>`.
    pub fn from_iter_bits<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut words = Vec::new();
        let mut word = 0u64;
        let mut len = 0usize;
        for bit in iter {
            word |= u64::from(bit) << (len % 64);
            len += 1;
            if len % 64 == 0 {
                words.push(word);
                word = 0;
            }
        }
        if len % 64 != 0 {
            words.push(word);
        }
        BitVec { words, len }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Hamming distance to `other`.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn hamming_distance(&self, other: &BitVec) -> usize {
        assert_eq!(self.len, other.len, "length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Iterates over bits as bools.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// The underlying words (trailing bits beyond `len` are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Serializes the first `min(len, 64)` bits into a `u64`, bit `i` at
    /// position `i`. Useful as a compact record key when `len <= 64`.
    pub fn low_u64(&self) -> u64 {
        self.words.first().copied().unwrap_or(0)
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[")?;
        for b in self.iter() {
            write!(f, "{}", u8::from(b))?;
        }
        write!(f, "]")
    }
}

/// A dataset of `n` fixed-width bit-string records (`{0,1}^d` per record),
/// stored row-major in packed words.
#[derive(Clone, Debug)]
pub struct BitDataset {
    rows: Vec<BitVec>,
    width: usize,
}

impl BitDataset {
    /// Creates an empty dataset of records with `width` bits each.
    pub fn new(width: usize) -> Self {
        BitDataset {
            rows: Vec::new(),
            width,
        }
    }

    /// Creates from rows, checking uniform width.
    ///
    /// # Panics
    /// Panics if any row's length differs from `width`.
    pub fn from_rows(width: usize, rows: Vec<BitVec>) -> Self {
        for r in &rows {
            assert_eq!(r.len(), width, "row width mismatch");
        }
        BitDataset { rows, width }
    }

    /// Appends a record.
    ///
    /// # Panics
    /// Panics if the record width differs.
    pub fn push(&mut self, row: BitVec) {
        assert_eq!(row.len(), self.width, "row width mismatch");
        self.rows.push(row);
    }

    /// Number of records `n`.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff there are no records.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Record width `d`.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Borrow record `i`.
    pub fn row(&self, i: usize) -> &BitVec {
        &self.rows[i]
    }

    /// Iterate over records.
    pub fn rows(&self) -> impl Iterator<Item = &BitVec> {
        self.rows.iter()
    }

    /// Counts records matching `pred`.
    pub fn count_matching<F: Fn(&BitVec) -> bool>(&self, pred: F) -> usize {
        self.rows.iter().filter(|r| pred(r)).count()
    }

    /// Per-column popcounts: `result[j]` is the number of records whose bit
    /// `j` is set. Word-parallel — see [`column_counts`].
    pub fn column_counts(&self) -> Vec<usize> {
        column_counts(&self.rows, self.width)
    }
}

/// Transposes a 64×64 bit matrix in place (`a[i]` holds row `i`; on return
/// bit `i` of `a[j]` is the old bit `j` of `a[i]`). The recursive
/// block-swap runs in 6 rounds of word ops instead of 4096 bit moves.
fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut m = 0x0000_0000_FFFF_FFFFu64;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = (a[k] ^ (a[k + j] >> j)) & m;
            a[k] ^= t;
            a[k + j] ^= t << j;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Per-column popcounts over a slice of equal-width rows: `result[j]` is the
/// number of rows whose bit `j` is set.
///
/// Rows are processed 64 at a time: each 64×64 block of the row-major bit
/// matrix is transposed with word ops, after which one column of the block
/// is a single word whose popcount contributes directly to the counter.
/// This replaces the `rows × width` bit-at-a-time loop with
/// `rows × width / 64` word operations — the hot path of the membership
/// inference experiment's published-means computation.
///
/// # Panics
/// Panics if any row's length differs from `width`.
pub fn column_counts(rows: &[BitVec], width: usize) -> Vec<usize> {
    let mut counts = vec![0usize; width];
    let n_word_cols = width.div_ceil(64);
    let mut block = [0u64; 64];
    for chunk in rows.chunks(64) {
        for wc in 0..n_word_cols {
            for (bi, row) in chunk.iter().enumerate() {
                assert_eq!(row.len(), width, "row width mismatch");
                block[bi] = row.words[wc];
            }
            for slot in block.iter_mut().skip(chunk.len()) {
                *slot = 0;
            }
            transpose64(&mut block);
            // The butterfly above is written for MSB-first column order, so
            // under our LSB-first indexing output word `63 - j` holds column
            // `j`'s bits (row order permuted — irrelevant to a popcount).
            let cols = 64.min(width - wc * 64);
            for j in 0..cols {
                counts[wc * 64 + j] += block[63 - j].count_ones() as usize;
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut v = BitVec::zeros(130);
        assert_eq!(v.len(), 130);
        assert_eq!(v.count_ones(), 0);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1) && !v.get(63) && !v.get(128));
        assert_eq!(v.count_ones(), 3);
        v.set(64, false);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(10).get(10);
    }

    #[test]
    fn from_bools_round_trip() {
        let bits = [true, false, true, true, false];
        let v = BitVec::from_bools(&bits);
        let back: Vec<bool> = v.iter().collect();
        assert_eq!(back, bits);
    }

    #[test]
    fn hamming_distance_counts_flips() {
        let a = BitVec::from_bools(&[true, false, true, false]);
        let b = BitVec::from_bools(&[true, true, false, false]);
        assert_eq!(a.hamming_distance(&b), 2);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn hamming_distance_length_mismatch_panics() {
        let _ = BitVec::zeros(3).hamming_distance(&BitVec::zeros(4));
    }

    #[test]
    fn low_u64_packs_first_word() {
        let v = BitVec::from_bools(&[true, false, true]); // bits 0 and 2
        assert_eq!(v.low_u64(), 0b101);
    }

    #[test]
    fn bit_dataset_push_and_count() {
        let mut ds = BitDataset::new(3);
        ds.push(BitVec::from_bools(&[true, true, false]));
        ds.push(BitVec::from_bools(&[false, true, false]));
        ds.push(BitVec::from_bools(&[true, true, true]));
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.width(), 3);
        assert_eq!(ds.count_matching(|r| r.get(1)), 3);
        assert_eq!(ds.count_matching(|r| r.get(0)), 2);
        assert_eq!(ds.count_matching(|r| r.get(2)), 1);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn bit_dataset_rejects_wrong_width() {
        let mut ds = BitDataset::new(4);
        ds.push(BitVec::zeros(5));
    }

    #[test]
    fn ones_sets_every_bit_and_masks_tail() {
        for len in [0usize, 1, 63, 64, 65, 130] {
            let v = BitVec::ones(len);
            assert_eq!(v.count_ones(), len, "len {len}");
            // Tail bits beyond len must be zero so word-level ops stay exact.
            if let Some(&last) = v.words().last() {
                if len % 64 != 0 {
                    assert_eq!(last >> (len % 64), 0, "len {len}");
                }
            }
        }
    }

    #[test]
    fn column_counts_matches_naive() {
        use crate::dist::RecordDistribution;
        use crate::rng::seeded_rng;
        let mut rng = seeded_rng(77);
        // Widths and row counts straddling word boundaries.
        for (n, d) in [
            (1usize, 1usize),
            (5, 70),
            (64, 64),
            (100, 130),
            (130, 64),
            (67, 257),
        ] {
            let dist = crate::dist::UniformBits::new(d);
            let rows: Vec<BitVec> = (0..n).map(|_| dist.sample(&mut rng)).collect();
            let fast = column_counts(&rows, d);
            let naive: Vec<usize> = (0..d)
                .map(|j| rows.iter().filter(|r| r.get(j)).count())
                .collect();
            assert_eq!(fast, naive, "n={n} d={d}");
        }
    }

    #[test]
    fn column_counts_empty_rows() {
        assert_eq!(column_counts(&[], 5), vec![0; 5]);
        assert_eq!(column_counts(&[], 0), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn column_counts_rejects_ragged_rows() {
        column_counts(&[BitVec::zeros(3), BitVec::zeros(4)], 3);
    }

    #[test]
    fn bit_dataset_column_counts() {
        let mut ds = BitDataset::new(3);
        ds.push(BitVec::from_bools(&[true, true, false]));
        ds.push(BitVec::from_bools(&[false, true, false]));
        ds.push(BitVec::from_bools(&[true, true, true]));
        assert_eq!(ds.column_counts(), vec![2, 3, 1]);
    }

    #[test]
    fn empty_bitvec_edge_cases() {
        let v = BitVec::zeros(0);
        assert!(v.is_empty());
        assert_eq!(v.count_ones(), 0);
        assert_eq!(v.low_u64(), 0);
        assert_eq!(v.iter().count(), 0);
    }
}
