//! Compressed columnar storage segments.
//!
//! The uncompressed [`crate::dataset::Column`] stores one machine word per
//! cell (plus a byte-per-row missing mask) — simple, and the tested oracle
//! for every scan kernel. At census scale (ROADMAP item 2: 100M+ rows) that
//! layout is memory-bandwidth-bound: an `IntRange` scan over a column whose
//! values span a few thousand distinct codes still streams 8 bytes per row.
//!
//! This module adds the packed engine:
//!
//! * [`PackedCodes`] — a bit-packed vector of fixed-width codes (1..=64
//!   bits per row, width inferred from the domain), with chunked scan loops
//!   that emit [`SelectionVector`] words directly;
//! * [`PackedColumn`] — a column encoded as codes plus a decode rule
//!   (`PackedRepr`): min-FoR (frame-of-reference) for `Int`, sorted
//!   dictionaries for `Str`/`Bool`/`Date`. The missing mask is folded into
//!   the code stream as one reserved code (`span + 1` / `dict.len()`), so a
//!   packed scan never touches a second per-row array;
//! * [`StorageEngine`] — which engine a [`crate::Dataset`] exposes to scan
//!   kernels, selectable per-process via the `SO_STORAGE` environment
//!   variable (packed by default);
//! * [`ColumnSegment`] — the row-access surface both engines share, so
//!   generic code (and tests) can treat either representation as "a column".
//!
//! `Float` columns have no packed form: their equality semantics are
//! `total_cmp` bit-patterns and their domains rarely compress, so
//! [`PackedColumn::from_column`] returns `None` and scans fall back to the
//! uncompressed oracle path.
//!
//! Determinism contract: a packed scan must select *exactly* the rows the
//! uncompressed kernel selects — the packed path is an encoding of the same
//! answer, never an approximation. Proptests in `so-plan` pin this
//! bit-for-bit.

use std::ops::Range;

use crate::dataset::Column;
use crate::date::Date;
use crate::interner::Symbol;
use crate::schema::DataType;
use crate::selection::SelectionVector;
use crate::value::Value;

/// Which physical layout a [`crate::Dataset`] exposes to scan kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageEngine {
    /// One machine word per cell plus a missing mask — the tested oracle.
    Uncompressed,
    /// Dictionary / frame-of-reference bit-packed codes (the default).
    #[default]
    Packed,
}

impl StorageEngine {
    /// Environment variable that selects the engine process-wide.
    pub const ENV: &'static str = "SO_STORAGE";

    /// Reads [`StorageEngine::ENV`]: `unpacked` / `uncompressed` / `oracle`
    /// select [`StorageEngine::Uncompressed`]; anything else (including
    /// unset) selects [`StorageEngine::Packed`].
    pub fn from_env() -> Self {
        Self::from_opt(std::env::var(Self::ENV).ok().as_deref())
    }

    /// [`StorageEngine::from_env`] with an injected value, for tests.
    pub fn from_opt(value: Option<&str>) -> Self {
        match value.map(str::trim) {
            Some(s)
                if s.eq_ignore_ascii_case("unpacked")
                    || s.eq_ignore_ascii_case("uncompressed")
                    || s.eq_ignore_ascii_case("oracle") =>
            {
                StorageEngine::Uncompressed
            }
            _ => StorageEngine::Packed,
        }
    }

    /// True iff this is the packed engine.
    pub fn is_packed(self) -> bool {
        matches!(self, StorageEngine::Packed)
    }

    /// Stable lowercase label for bench ids and transcripts.
    pub fn name(self) -> &'static str {
        match self {
            StorageEngine::Uncompressed => "unpacked",
            StorageEngine::Packed => "packed",
        }
    }
}

/// Row access shared by every storage layout.
///
/// Implemented by the uncompressed [`Column`] and by [`PackedColumn`], so
/// callers that walk rows (linters, equivalence tests, debug dumps) are
/// generic over the engine.
pub trait ColumnSegment {
    /// Number of rows.
    fn len(&self) -> usize;

    /// True iff the segment has no rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Logical element type of the column.
    fn dtype(&self) -> DataType;

    /// Cell value at `row` ([`Value::Missing`] if masked).
    fn value(&self, row: usize) -> Value;

    /// True iff the cell at `row` is missing.
    fn is_missing(&self, row: usize) -> bool {
        self.value(row).is_missing()
    }

    /// Heap bytes this layout touches to scan the whole segment.
    fn scan_bytes(&self) -> usize;
}

fn mask_of(width: u32) -> u64 {
    match width {
        0 => 0,
        64 => u64::MAX,
        w => (1u64 << w) - 1,
    }
}

/// Bits needed to represent every code in `0..=max_code`.
fn width_for(max_code: u64) -> u32 {
    64 - max_code.leading_zeros()
}

/// A bit-packed vector of fixed-width codes.
///
/// `len` codes of `width` bits each are laid out little-endian across `u64`
/// words; a code may straddle two words. One zero pad word is kept at the
/// end so extraction can always read a two-word window branch-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedCodes {
    words: Vec<u64>,
    width: u32,
    len: usize,
}

impl PackedCodes {
    /// Packs `len` codes of `width` bits.
    ///
    /// # Panics
    /// Panics if `width > 64`, if the iterator yields a different number of
    /// codes than `len`, or (debug builds) if a code exceeds the width.
    pub fn pack<I: IntoIterator<Item = u64>>(width: u32, len: usize, codes: I) -> PackedCodes {
        assert!(width <= 64, "code width {width} exceeds 64 bits");
        let total_bits = len
            .checked_mul(width as usize)
            .expect("packed bit count overflows usize");
        // +1 pad word keeps two-word extraction in bounds at the tail.
        let mut words = vec![0u64; total_bits.div_ceil(64) + 1];
        let mask = mask_of(width);
        let mut n = 0usize;
        for code in codes {
            assert!(n < len, "more than {len} codes supplied");
            debug_assert!(
                width == 64 || code & !mask == 0,
                "code {code} does not fit in {width} bits"
            );
            let bit = n * width as usize;
            let (wi, off) = (bit >> 6, bit & 63);
            words[wi] |= code << off;
            if off + width as usize > 64 {
                words[wi + 1] |= code >> (64 - off);
            }
            n += 1;
        }
        assert_eq!(n, len, "iterator yielded {n} codes, expected {len}");
        PackedCodes { words, width, len }
    }

    /// Number of codes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff there are no codes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bits per code.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Heap bytes of the packed words (incl. the pad word).
    pub fn packed_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    /// Code at row `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.len, "row {i} out of range {}", self.len);
        if self.width == 0 {
            return 0;
        }
        let bit = i * self.width as usize;
        let (wi, off) = (bit >> 6, bit & 63);
        let pair = (self.words[wi] as u128) | ((self.words[wi + 1] as u128) << 64);
        ((pair >> off) as u64) & mask_of(self.width)
    }

    /// Core packed scan: selects rows of `rows` whose code satisfies `f`,
    /// emitting one [`SelectionVector`] word per 64 rows.
    ///
    /// The inner loop extracts codes through a two-word window (no branch on
    /// straddling) and ORs predicate bits into an accumulator word — a
    /// fixed-trip-count chunked shape the optimizer can unroll and
    /// vectorize without any post-1.75 intrinsics.
    ///
    /// # Panics
    /// Panics if `rows` extends past the codes.
    fn scan_with(&self, rows: Range<usize>, mut f: impl FnMut(u64) -> bool) -> SelectionVector {
        assert!(
            rows.start <= rows.end && rows.end <= self.len,
            "row range {}..{} out of range {}",
            rows.start,
            rows.end,
            self.len
        );
        let len = rows.len();
        if self.width == 0 {
            // Every row carries the single representable code 0.
            return if f(0) {
                SelectionVector::all(len)
            } else {
                SelectionVector::none(len)
            };
        }
        let w = self.width as usize;
        let mask = mask_of(self.width);
        let mut words = Vec::with_capacity(len.div_ceil(64));
        let mut i = 0usize;
        while i < len {
            let block = 64.min(len - i);
            let base = (rows.start + i) * w;
            let mut word = 0u64;
            for b in 0..block {
                let bit = base + b * w;
                let (wi, off) = (bit >> 6, bit & 63);
                let pair = (self.words[wi] as u128) | ((self.words[wi + 1] as u128) << 64);
                let code = ((pair >> off) as u64) & mask;
                word |= u64::from(f(code)) << b;
            }
            words.push(word);
            i += 64;
        }
        SelectionVector::from_words(words, len)
    }

    /// Rows of `rows` whose code equals `target`.
    pub fn scan_eq(&self, target: u64, rows: Range<usize>) -> SelectionVector {
        self.scan_with(rows, |code| code == target)
    }

    /// Rows of `rows` whose code lies in `lo..=hi`.
    ///
    /// Uses the classic unsigned trick `code - lo <= hi - lo`, one compare
    /// per lane instead of two.
    pub fn scan_range(&self, lo: u64, hi: u64, rows: Range<usize>) -> SelectionVector {
        if lo > hi {
            return SelectionVector::none(rows.len());
        }
        let span = hi - lo;
        self.scan_with(rows, |code| code.wrapping_sub(lo) <= span)
    }
}

/// Decode rule mapping packed codes back to typed values.
#[derive(Debug, Clone)]
enum PackedRepr {
    /// Frame-of-reference: `value = min + code` for codes `0..=span`.
    /// `has_values` is false when every row is missing (min/span unused).
    Int {
        min: i64,
        span: u64,
        has_values: bool,
    },
    /// Sorted distinct symbols; `code` indexes the dictionary.
    Str { dict: Vec<Symbol> },
    /// Sorted distinct bools (`false < true`).
    Bool { dict: Vec<bool> },
    /// Sorted distinct day numbers.
    Date { dict: Vec<i32> },
}

/// A column stored as bit-packed codes plus a decode rule.
///
/// Missing cells are folded in as one reserved code — the first code past
/// the value domain (`span + 1` for Int, `dict.len()` for dictionaries) —
/// so scans read a single packed stream and missing rows fail every value
/// comparison for free (their code is strictly greater than any value
/// code).
#[derive(Debug, Clone)]
pub struct PackedColumn {
    codes: PackedCodes,
    /// The reserved code, present iff any row is missing.
    missing_code: Option<u64>,
    repr: PackedRepr,
}

impl PackedColumn {
    /// Encodes an uncompressed column. Returns `None` when the column has no
    /// packed form: `Float` columns (no compressible total-order domain)
    /// and the pathological full-`i64`-span-plus-missing Int column whose
    /// reserved code would not fit in 64 bits.
    pub fn from_column(col: &Column) -> Option<PackedColumn> {
        let missing = col.missing_mask();
        let any_missing = missing.iter().any(|&m| m);
        match col.dtype() {
            DataType::Float => None,
            DataType::Int => {
                let vals = col.int_values().expect("dtype checked");
                let mut present = vals
                    .iter()
                    .zip(missing)
                    .filter(|&(_, &m)| !m)
                    .map(|(v, _)| *v);
                let (min, max, has_values) = match present.next() {
                    None => (0, 0, false),
                    Some(first) => {
                        let (mut lo, mut hi) = (first, first);
                        for v in present {
                            lo = lo.min(v);
                            hi = hi.max(v);
                        }
                        (lo, hi, true)
                    }
                };
                let span = (max as i128 - min as i128) as u64;
                if has_values && any_missing && span == u64::MAX {
                    // span + 1 would overflow; keep this column uncompressed.
                    return None;
                }
                let missing_code = any_missing.then(|| if has_values { span + 1 } else { 0 });
                let max_code = missing_code.unwrap_or(if has_values { span } else { 0 });
                let codes = PackedCodes::pack(
                    width_for(max_code),
                    vals.len(),
                    vals.iter().zip(missing).map(|(v, &m)| {
                        if m {
                            missing_code.expect("missing row implies reserved code")
                        } else {
                            (*v as i128 - min as i128) as u64
                        }
                    }),
                );
                Some(PackedColumn {
                    codes,
                    missing_code,
                    repr: PackedRepr::Int {
                        min,
                        span,
                        has_values,
                    },
                })
            }
            DataType::Str => {
                let vals = col.str_values().expect("dtype checked");
                // Distinct symbols via a presence table over the max index —
                // symbols are dense interner indices, so this is linear and
                // yields the dictionary already sorted by index.
                let mut seen: Vec<bool> = Vec::new();
                for (v, &m) in vals.iter().zip(missing) {
                    if m {
                        continue;
                    }
                    let idx = v.index() as usize;
                    if idx >= seen.len() {
                        seen.resize(idx + 1, false);
                    }
                    seen[idx] = true;
                }
                let mut code_of: Vec<u64> = vec![0; seen.len()];
                let mut dict: Vec<Symbol> = Vec::new();
                for (idx, &present) in seen.iter().enumerate() {
                    if present {
                        code_of[idx] = dict.len() as u64;
                        dict.push(Symbol::from_index(idx as u32));
                    }
                }
                let (codes, missing_code) = Self::pack_dict_codes(
                    dict.len(),
                    any_missing,
                    vals.iter()
                        .zip(missing)
                        .map(|(v, &m)| (!m).then(|| code_of[v.index() as usize])),
                );
                Some(PackedColumn {
                    codes,
                    missing_code,
                    repr: PackedRepr::Str { dict },
                })
            }
            DataType::Bool => {
                let vals = col.bool_values().expect("dtype checked");
                let mut has = [false; 2];
                for (v, &m) in vals.iter().zip(missing) {
                    if !m {
                        has[usize::from(*v)] = true;
                    }
                }
                let dict: Vec<bool> = [false, true]
                    .into_iter()
                    .filter(|&b| has[usize::from(b)])
                    .collect();
                let (codes, missing_code) = Self::pack_dict_codes(
                    dict.len(),
                    any_missing,
                    vals.iter().zip(missing).map(|(v, &m)| {
                        (!m).then(|| {
                            dict.binary_search(v).expect("value collected into dict") as u64
                        })
                    }),
                );
                Some(PackedColumn {
                    codes,
                    missing_code,
                    repr: PackedRepr::Bool { dict },
                })
            }
            DataType::Date => {
                let vals = col.date_values().expect("dtype checked");
                let mut dict: Vec<i32> = vals
                    .iter()
                    .zip(missing)
                    .filter(|&(_, &m)| !m)
                    .map(|(v, _)| *v)
                    .collect();
                dict.sort_unstable();
                dict.dedup();
                let (codes, missing_code) = Self::pack_dict_codes(
                    dict.len(),
                    any_missing,
                    vals.iter().zip(missing).map(|(v, &m)| {
                        (!m).then(|| {
                            dict.binary_search(v).expect("value collected into dict") as u64
                        })
                    }),
                );
                Some(PackedColumn {
                    codes,
                    missing_code,
                    repr: PackedRepr::Date { dict },
                })
            }
        }
    }

    /// Packs dictionary codes with `None` cells mapped to the reserved
    /// missing code `dict_len`.
    fn pack_dict_codes<I: ExactSizeIterator<Item = Option<u64>>>(
        dict_len: usize,
        any_missing: bool,
        cells: I,
    ) -> (PackedCodes, Option<u64>) {
        let missing_code = any_missing.then_some(dict_len as u64);
        let max_code = if any_missing {
            dict_len as u64
        } else {
            (dict_len as u64).saturating_sub(1)
        };
        let len = cells.len();
        let codes = PackedCodes::pack(
            width_for(max_code),
            len,
            cells.map(|c| c.unwrap_or(dict_len as u64)),
        );
        (codes, missing_code)
    }

    /// The packed code stream.
    pub fn codes(&self) -> &PackedCodes {
        &self.codes
    }

    /// The reserved missing code, if any row is missing.
    pub fn missing_code(&self) -> Option<u64> {
        self.missing_code
    }

    /// The packed code a [`Value`] target maps to, or `None` when the value
    /// cannot occur in this column (wrong type, outside the encoded domain).
    pub fn code_for(&self, value: &Value) -> Option<u64> {
        match (value, &self.repr) {
            (Value::Missing, _) => self.missing_code,
            (
                Value::Int(x),
                PackedRepr::Int {
                    min,
                    span,
                    has_values,
                },
            ) => {
                let offset = (*x as i128).checked_sub(*min as i128)?;
                (*has_values && (0..=*span as i128).contains(&offset)).then_some(offset as u64)
            }
            (Value::Str(x), PackedRepr::Str { dict }) => dict
                .binary_search_by_key(&x.index(), |s| s.index())
                .ok()
                .map(|i| i as u64),
            (Value::Bool(x), PackedRepr::Bool { dict }) => {
                dict.binary_search(x).ok().map(|i| i as u64)
            }
            (Value::Date(x), PackedRepr::Date { dict }) => {
                dict.binary_search(&x.day_number()).ok().map(|i| i as u64)
            }
            _ => None,
        }
    }

    /// Packed `ValueEquals` kernel over `rows`: exact [`Value`] semantics —
    /// `Missing` selects exactly the masked rows, a type-mismatched or
    /// out-of-domain target selects nothing.
    pub fn scan_value_equals(&self, value: &Value, rows: Range<usize>) -> SelectionVector {
        match self.code_for(value) {
            Some(code) => self.codes.scan_eq(code, rows),
            None => SelectionVector::none(rows.len()),
        }
    }

    /// Packed `IntRange` kernel over `rows`: selects non-missing Int cells
    /// in `lo..=hi`; non-Int columns select nothing. Missing rows carry the
    /// reserved code `span + 1`, strictly above every clamped range bound,
    /// so they are excluded without consulting any mask.
    pub fn scan_int_range(&self, lo: i64, hi: i64, rows: Range<usize>) -> SelectionVector {
        let len = rows.len();
        if let PackedRepr::Int {
            min,
            span,
            has_values,
        } = self.repr
        {
            if !has_values || lo > hi {
                return SelectionVector::none(len);
            }
            let (min_i, lo_i, hi_i) = (min as i128, lo as i128, hi as i128);
            let lo_c = lo_i.max(min_i) - min_i;
            let hi_c = hi_i.min(min_i + span as i128) - min_i;
            if lo_c > hi_c {
                return SelectionVector::none(len);
            }
            self.codes.scan_range(lo_c as u64, hi_c as u64, rows)
        } else {
            SelectionVector::none(len)
        }
    }

    /// Dictionary (or FoR parameter) heap bytes.
    fn dict_bytes(&self) -> usize {
        match &self.repr {
            PackedRepr::Int { .. } => 0,
            PackedRepr::Str { dict } => std::mem::size_of_val(dict.as_slice()),
            PackedRepr::Bool { dict } => std::mem::size_of_val(dict.as_slice()),
            PackedRepr::Date { dict } => std::mem::size_of_val(dict.as_slice()),
        }
    }

    /// Heap bytes of the packed representation (codes + dictionary).
    pub fn packed_bytes(&self) -> usize {
        self.codes.packed_bytes() + self.dict_bytes()
    }
}

impl ColumnSegment for PackedColumn {
    fn len(&self) -> usize {
        self.codes.len()
    }

    fn dtype(&self) -> DataType {
        match self.repr {
            PackedRepr::Int { .. } => DataType::Int,
            PackedRepr::Str { .. } => DataType::Str,
            PackedRepr::Bool { .. } => DataType::Bool,
            PackedRepr::Date { .. } => DataType::Date,
        }
    }

    fn value(&self, row: usize) -> Value {
        let code = self.codes.get(row);
        if Some(code) == self.missing_code {
            return Value::Missing;
        }
        match &self.repr {
            PackedRepr::Int { min, .. } => Value::Int((*min as i128 + code as i128) as i64),
            PackedRepr::Str { dict } => Value::Str(dict[code as usize]),
            PackedRepr::Bool { dict } => Value::Bool(dict[code as usize]),
            PackedRepr::Date { dict } => Value::Date(Date::from_day_number(dict[code as usize])),
        }
    }

    fn is_missing(&self, row: usize) -> bool {
        Some(self.codes.get(row)) == self.missing_code
    }

    fn scan_bytes(&self) -> usize {
        self.packed_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttributeDef, AttributeRole, Schema};
    use crate::DatasetBuilder;

    fn one_column(dtype: DataType, cells: Vec<Value>) -> crate::Dataset {
        let schema = Schema::new(vec![AttributeDef::new(
            "c",
            dtype,
            AttributeRole::QuasiIdentifier,
        )]);
        let mut b = DatasetBuilder::new(schema);
        // Interned symbols must come from the builder; re-intern Str cells.
        for cell in cells {
            b.push_row(vec![cell]);
        }
        b.finish_with_engine(StorageEngine::Uncompressed)
    }

    #[test]
    fn engine_from_opt() {
        assert_eq!(StorageEngine::from_opt(None), StorageEngine::Packed);
        assert_eq!(
            StorageEngine::from_opt(Some("packed")),
            StorageEngine::Packed
        );
        for s in ["unpacked", "UNCOMPRESSED", " oracle "] {
            assert_eq!(
                StorageEngine::from_opt(Some(s)),
                StorageEngine::Uncompressed,
                "{s:?}"
            );
        }
        assert!(StorageEngine::Packed.is_packed());
        assert!(!StorageEngine::Uncompressed.is_packed());
    }

    /// Pins the fallback behaviour for garbage and empty `SO_STORAGE`
    /// values, mirroring the `SO_THREADS` treatment: anything that is not
    /// a recognized engine name — including the empty string, whitespace,
    /// numbers, and near-misses — falls back to the packed default rather
    /// than erroring.
    #[test]
    fn engine_from_opt_garbage_and_empty_fall_back_to_default() {
        for s in ["", "   ", "garbage", "0", "-1", "unpackedd", "pack ed", "☃"] {
            assert_eq!(
                StorageEngine::from_opt(Some(s)),
                StorageEngine::default(),
                "{s:?} must fall back to the default engine"
            );
        }
        assert_eq!(StorageEngine::default(), StorageEngine::Packed);
        // The env-reading constructor is built on from_opt, so the same
        // inputs can never panic on the from_env path either.
        assert_eq!(StorageEngine::from_opt(None), StorageEngine::default());
    }

    #[test]
    fn width_inference() {
        assert_eq!(width_for(0), 0);
        assert_eq!(width_for(1), 1);
        assert_eq!(width_for(2), 2);
        assert_eq!(width_for(3), 2);
        assert_eq!(width_for(255), 8);
        assert_eq!(width_for(256), 9);
        assert_eq!(width_for(u64::MAX), 64);
    }

    #[test]
    fn packed_codes_round_trip_across_widths() {
        for width in [0u32, 1, 3, 7, 13, 31, 33, 63, 64] {
            let mask = mask_of(width);
            // 131 codes straddles word boundaries for every odd width.
            let codes: Vec<u64> = (0..131u64)
                .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) & mask)
                .collect();
            let packed = PackedCodes::pack(width, codes.len(), codes.iter().copied());
            assert_eq!(packed.width(), width);
            assert_eq!(packed.len(), 131);
            for (i, &c) in codes.iter().enumerate() {
                assert_eq!(packed.get(i), c, "width {width} row {i}");
            }
            // scan_eq / scan_range agree with a per-row reference.
            let target = codes[17];
            let eq = packed.scan_eq(target, 0..codes.len());
            let (lo, hi) = (mask / 4, mask / 2 + 1);
            let range = packed.scan_range(lo, hi, 0..codes.len());
            for (i, &c) in codes.iter().enumerate() {
                assert_eq!(eq.get(i), c == target, "eq width {width} row {i}");
                assert_eq!(
                    range.get(i),
                    c >= lo && c <= hi,
                    "range width {width} row {i}"
                );
            }
        }
    }

    #[test]
    fn packed_codes_subrange_scans_match_full_slices() {
        let codes: Vec<u64> = (0..200u64).map(|i| i % 5).collect();
        let packed = PackedCodes::pack(3, codes.len(), codes.iter().copied());
        let full = packed.scan_eq(2, 0..200);
        for (lo, hi) in [(0usize, 64usize), (64, 128), (128, 200), (64, 64), (0, 200)] {
            let part = packed.scan_eq(2, lo..hi);
            assert_eq!(part, full.slice_aligned(lo..hi), "{lo}..{hi}");
        }
    }

    #[test]
    fn empty_and_inverted_ranges() {
        let packed = PackedCodes::pack(4, 0, std::iter::empty());
        assert!(packed.is_empty());
        assert_eq!(packed.scan_eq(1, 0..0).len(), 0);
        let packed = PackedCodes::pack(4, 3, [1u64, 2, 3]);
        assert!(packed.scan_range(5, 2, 0..3).is_none());
    }

    #[test]
    fn int_column_for_encoding_with_missing() {
        let ds = one_column(
            DataType::Int,
            vec![
                Value::Int(1000),
                Value::Missing,
                Value::Int(1003),
                Value::Int(-5),
                Value::Missing,
            ],
        );
        let p = PackedColumn::from_column(ds.column(0)).expect("int packs");
        // Domain -5..=1003 → span 1008, missing code 1009, width 10.
        assert_eq!(p.codes().width(), 10);
        assert_eq!(p.missing_code(), Some(1009));
        assert_eq!(p.value(0), Value::Int(1000));
        assert_eq!(p.value(1), Value::Missing);
        assert_eq!(p.value(3), Value::Int(-5));
        assert!(p.is_missing(4));
        assert_eq!(p.dtype(), DataType::Int);
        assert_eq!(p.len(), 5);

        let hits = p.scan_int_range(-10, 1000, 0..5);
        assert_eq!(hits.indices(), vec![0, 3]);
        // Missing target selects exactly masked rows.
        let miss = p.scan_value_equals(&Value::Missing, 0..5);
        assert_eq!(miss.indices(), vec![1, 4]);
        // Out-of-domain and wrong-type targets select nothing.
        assert!(p.scan_value_equals(&Value::Int(9999), 0..5).is_none());
        assert!(p.scan_value_equals(&Value::Bool(true), 0..5).is_none());
    }

    #[test]
    fn int_extreme_span_and_missing_overflow_guard() {
        let ds = one_column(
            DataType::Int,
            vec![Value::Int(i64::MIN), Value::Int(i64::MAX), Value::Missing],
        );
        // Full i64 span plus a missing row cannot reserve span + 1.
        assert!(PackedColumn::from_column(ds.column(0)).is_none());

        let ds = one_column(
            DataType::Int,
            vec![Value::Int(i64::MIN), Value::Int(i64::MAX)],
        );
        let p = PackedColumn::from_column(ds.column(0)).expect("64-bit span packs when complete");
        assert_eq!(p.codes().width(), 64);
        assert_eq!(p.value(0), Value::Int(i64::MIN));
        assert_eq!(p.value(1), Value::Int(i64::MAX));
        assert_eq!(p.scan_int_range(0, i64::MAX, 0..2).indices(), vec![1]);
        assert_eq!(
            p.scan_int_range(i64::MIN, i64::MAX, 0..2).indices(),
            vec![0, 1]
        );
    }

    #[test]
    fn all_missing_and_constant_columns_pack_to_width_zero_or_one() {
        let ds = one_column(DataType::Int, vec![Value::Missing, Value::Missing]);
        let p = PackedColumn::from_column(ds.column(0)).expect("all-missing packs");
        assert_eq!(p.codes().width(), 0);
        assert!(p.is_missing(0) && p.is_missing(1));
        assert_eq!(p.scan_value_equals(&Value::Missing, 0..2).count(), 2);
        assert!(p.scan_value_equals(&Value::Int(0), 0..2).is_none());
        assert!(p.scan_int_range(i64::MIN, i64::MAX, 0..2).is_none());

        let ds = one_column(DataType::Int, vec![Value::Int(7), Value::Int(7)]);
        let p = PackedColumn::from_column(ds.column(0)).expect("constant packs");
        assert_eq!(p.codes().width(), 0);
        assert_eq!(p.scan_value_equals(&Value::Int(7), 0..2).count(), 2);
        assert!(p.scan_value_equals(&Value::Int(8), 0..2).is_none());
        assert_eq!(p.scan_int_range(0, 10, 0..2).count(), 2);
    }

    #[test]
    fn float_columns_have_no_packed_form() {
        let ds = one_column(DataType::Float, vec![Value::Float(1.5), Value::Missing]);
        assert!(PackedColumn::from_column(ds.column(0)).is_none());
    }

    #[test]
    fn str_dictionary_encoding() {
        let schema = Schema::new(vec![AttributeDef::new(
            "s",
            DataType::Str,
            AttributeRole::QuasiIdentifier,
        )]);
        let mut b = DatasetBuilder::new(schema);
        let c = b.intern("cherry");
        let a = b.intern("apple");
        let never = b.intern("never-used");
        for v in [Value::Str(c), Value::Str(a), Value::Missing, Value::Str(c)] {
            b.push_row(vec![v]);
        }
        let ds = b.finish_with_engine(StorageEngine::Uncompressed);
        let p = PackedColumn::from_column(ds.column(0)).expect("str packs");
        assert_eq!(p.dtype(), DataType::Str);
        // Dict holds only symbols that occur (2 of them) + reserved missing.
        assert_eq!(p.missing_code(), Some(2));
        assert_eq!(p.codes().width(), 2);
        assert_eq!(p.value(0), Value::Str(c));
        assert_eq!(p.value(2), Value::Missing);
        assert_eq!(
            p.scan_value_equals(&Value::Str(c), 0..4).indices(),
            vec![0, 3]
        );
        assert_eq!(p.scan_value_equals(&Value::Str(a), 0..4).indices(), vec![1]);
        // Interned but never stored → out of dictionary → nothing.
        assert!(p.scan_value_equals(&Value::Str(never), 0..4).is_none());
        assert_eq!(
            p.scan_value_equals(&Value::Missing, 0..4).indices(),
            vec![2]
        );
        // IntRange on a Str column has Int semantics: nothing matches.
        assert!(p.scan_int_range(0, 100, 0..4).is_none());
    }

    #[test]
    fn bool_and_date_dictionary_encoding() {
        let ds = one_column(
            DataType::Bool,
            vec![Value::Bool(true), Value::Missing, Value::Bool(true)],
        );
        let p = PackedColumn::from_column(ds.column(0)).expect("bool packs");
        // Only `true` occurs: dict len 1, missing code 1, width 1.
        assert_eq!(p.missing_code(), Some(1));
        assert_eq!(
            p.scan_value_equals(&Value::Bool(true), 0..3).indices(),
            vec![0, 2]
        );
        assert!(p.scan_value_equals(&Value::Bool(false), 0..3).is_none());
        assert_eq!(p.value(1), Value::Missing);

        let d1 = Date::from_day_number(19000);
        let d2 = Date::from_day_number(20011);
        let ds = one_column(
            DataType::Date,
            vec![Value::Date(d2), Value::Date(d1), Value::Date(d2)],
        );
        let p = PackedColumn::from_column(ds.column(0)).expect("date packs");
        assert_eq!(p.missing_code(), None);
        assert_eq!(p.value(0), Value::Date(d2));
        assert_eq!(
            p.scan_value_equals(&Value::Date(d2), 0..3).indices(),
            vec![0, 2]
        );
        assert!(p
            .scan_value_equals(&Value::Date(Date::from_day_number(1)), 0..3)
            .is_none());
    }

    #[test]
    fn packed_bytes_shrink_vs_uncompressed() {
        let cells: Vec<Value> = (0..10_000).map(|i| Value::Int(i % 100)).collect();
        let ds = one_column(DataType::Int, cells);
        let p = PackedColumn::from_column(ds.column(0)).expect("packs");
        // 7-bit codes: ~1094 words ≈ 8.8 KB vs 80 KB of i64 + 10 KB mask.
        assert_eq!(p.codes().width(), 7);
        assert!(p.packed_bytes() < 10_000);
        assert!(p.packed_bytes() < ds.column(0).scan_bytes() / 8);
    }

    #[test]
    fn segment_trait_agrees_with_oracle_column() {
        let ds = one_column(
            DataType::Int,
            vec![Value::Int(5), Value::Missing, Value::Int(-3), Value::Int(5)],
        );
        let col = ds.column(0);
        let p = PackedColumn::from_column(col).expect("packs");
        let (a, b): (&dyn ColumnSegment, &dyn ColumnSegment) = (col, &p);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.dtype(), b.dtype());
        for row in 0..a.len() {
            assert_eq!(a.value(row), b.value(row), "row {row}");
            assert_eq!(a.is_missing(row), b.is_missing(row), "row {row}");
        }
    }
}
