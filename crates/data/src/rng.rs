//! Deterministic randomness helpers.
//!
//! Every experiment in the workspace is seeded so results in EXPERIMENTS.md
//! are exactly reproducible. This module provides the canonical way to derive
//! independent RNG streams from a master seed, plus a small keyed hash used
//! by the Leftover-Hash-Lemma-style random predicates in `so-query`.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates the canonical deterministic RNG for a given seed.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from `(master, stream)` so that parallel experiment
/// arms get independent, reproducible streams.
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    // SplitMix64 over the combined state: cheap, full-period, well mixed.
    splitmix64(master ^ splitmix64(stream ^ 0x9e37_79b9_7f4a_7c15))
}

/// One step of the SplitMix64 generator — also serves as a 64-bit mixer/keyed
/// hash with excellent avalanche behaviour.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Keyed 64-bit hash of a byte slice (FNV-style absorb + SplitMix finalizer).
///
/// Not cryptographic; used for *statistically* well-spread random predicates
/// where the adversary model does not include attacking the hash itself.
pub fn keyed_hash(key: u64, data: &[u8]) -> u64 {
    let mut state = splitmix64(key ^ 0x51_7c_c1_b7_27_22_0a_95);
    for chunk in data.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        state = splitmix64(state ^ u64::from_le_bytes(word));
    }
    splitmix64(state ^ (data.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(7);
        let mut b = seeded_rng(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derive_seed_separates_streams() {
        let s1 = derive_seed(42, 0);
        let s2 = derive_seed(42, 1);
        let s3 = derive_seed(43, 0);
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
        // Deterministic.
        assert_eq!(s1, derive_seed(42, 0));
    }

    #[test]
    fn splitmix_avalanche_smoke() {
        // Flipping one input bit should flip roughly half the output bits.
        let base = splitmix64(0x1234_5678);
        let flipped = splitmix64(0x1234_5678 ^ 1);
        let diff = (base ^ flipped).count_ones();
        assert!((16..=48).contains(&diff), "diff bits = {diff}");
    }

    #[test]
    fn keyed_hash_depends_on_key_and_data() {
        assert_ne!(keyed_hash(1, b"abc"), keyed_hash(2, b"abc"));
        assert_ne!(keyed_hash(1, b"abc"), keyed_hash(1, b"abd"));
        assert_eq!(keyed_hash(9, b"xyz"), keyed_hash(9, b"xyz"));
    }

    #[test]
    fn keyed_hash_length_extension_distinct() {
        // Same prefix, different lengths, zero padding must not collide.
        assert_ne!(keyed_hash(5, b"ab"), keyed_hash(5, b"ab\0"));
        assert_ne!(keyed_hash(5, &[]), keyed_hash(5, &[0]));
    }

    #[test]
    fn keyed_hash_bits_balanced() {
        // Over many inputs each output bit should be ~50/50.
        let n = 4096u64;
        let mut ones = [0u32; 64];
        for i in 0..n {
            let h = keyed_hash(77, &i.to_le_bytes());
            for (b, count) in ones.iter_mut().enumerate() {
                *count += ((h >> b) & 1) as u32;
            }
        }
        for (b, &count) in ones.iter().enumerate() {
            let frac = f64::from(count) / n as f64;
            assert!((0.42..=0.58).contains(&frac), "bit {b} frac {frac}");
        }
    }
}
