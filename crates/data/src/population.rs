//! Synthetic US-style population generator.
//!
//! Stand-in for the datasets behind Sweeney's GIC re-identification: a master
//! population with directly identifying (`person_id`), quasi-identifying
//! (`zip`, `birth_date`, `sex`), and sensitive (`disease`) attributes, from
//! which two releases can be derived:
//!
//! * a **medical release** with direct identifiers redacted (what GIC
//!   published), and
//! * a **voter registry** with direct identifiers and quasi-identifiers but
//!   no sensitive data (the Cambridge MA voter list).
//!
//! The substitution preserves what the attack depends on: the *uniqueness
//! statistics* of the quasi-identifier triple. With ZIP-level geography and
//! day-level birth dates, the QI space is vastly larger than the population,
//! so most individuals are unique — the phenomenon Sweeney measured at ~87%
//! for the US population.

use std::sync::Arc;

use rand::Rng;

use crate::dataset::{Dataset, DatasetBuilder};
use crate::date::Date;
use crate::dist::Categorical;
use crate::schema::{AttributeDef, AttributeRole, DataType, Schema};
use crate::value::Value;

/// Configuration for the synthetic population.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// Number of individuals.
    pub n: usize,
    /// Number of distinct ZIP codes (population spread over these with a
    /// mildly skewed distribution, mimicking town sizes).
    pub n_zips: usize,
    /// Earliest birth year (inclusive).
    pub birth_year_lo: i32,
    /// Latest birth year (inclusive).
    pub birth_year_hi: i32,
    /// Disease labels with relative prevalence weights.
    pub diseases: Vec<(String, f64)>,
    /// Fraction of the population present in the voter registry.
    pub voter_coverage: f64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            n: 10_000,
            n_zips: 50,
            birth_year_lo: 1930,
            birth_year_hi: 2000,
            diseases: vec![
                ("COVID".into(), 4.0),
                ("Asthma".into(), 3.0),
                ("Diabetes".into(), 3.0),
                ("CF".into(), 0.2),
                ("Hypertension".into(), 4.0),
                ("Healthy".into(), 10.0),
            ],
            voter_coverage: 0.7,
        }
    }
}

/// The generated master population plus derived-release helpers.
#[derive(Debug, Clone)]
pub struct Population {
    master: Dataset,
    voter_rows: Vec<usize>,
}

/// Column order of the master population schema.
pub mod columns {
    /// Direct identifier.
    pub const PERSON_ID: usize = 0;
    /// Quasi-identifier: ZIP code.
    pub const ZIP: usize = 1;
    /// Quasi-identifier: birth date.
    pub const BIRTH_DATE: usize = 2;
    /// Quasi-identifier: sex.
    pub const SEX: usize = 3;
    /// Sensitive attribute.
    pub const DISEASE: usize = 4;
}

/// Schema of the master population.
pub fn population_schema() -> Arc<Schema> {
    Schema::new(vec![
        AttributeDef::new("person_id", DataType::Int, AttributeRole::DirectIdentifier),
        AttributeDef::new("zip", DataType::Int, AttributeRole::QuasiIdentifier),
        AttributeDef::new("birth_date", DataType::Date, AttributeRole::QuasiIdentifier),
        AttributeDef::new("sex", DataType::Str, AttributeRole::QuasiIdentifier),
        AttributeDef::new("disease", DataType::Str, AttributeRole::Sensitive),
    ])
}

impl Population {
    /// Generates a population according to `config`.
    pub fn generate<R: Rng + ?Sized>(config: &PopulationConfig, rng: &mut R) -> Population {
        assert!(config.n_zips > 0, "need at least one ZIP");
        assert!(
            config.birth_year_lo <= config.birth_year_hi,
            "bad birth-year range"
        );
        assert!(
            (0.0..=1.0).contains(&config.voter_coverage),
            "voter coverage must be in [0,1]"
        );
        let mut b = DatasetBuilder::new(population_schema());
        let sex_syms = [b.intern("F"), b.intern("M")];
        let disease_syms: Vec<_> = config
            .diseases
            .iter()
            .map(|(name, _)| b.intern(name))
            .collect();
        let disease_weights: Vec<f64> = config.diseases.iter().map(|(_, w)| *w).collect();
        let disease_dist = Categorical::new(&disease_weights);
        // ZIP sizes: Zipf-ish skew so some towns are big and some tiny.
        let zip_weights: Vec<f64> = (0..config.n_zips)
            .map(|i| 1.0 / ((i + 1) as f64).sqrt())
            .collect();
        let zip_dist = Categorical::new(&zip_weights);

        let day_lo = Date::new(config.birth_year_lo, 1, 1)
            .expect("valid date")
            .day_number();
        let day_hi = Date::new(config.birth_year_hi, 12, 31)
            .expect("valid date")
            .day_number();

        use crate::dist::RecordDistribution;
        for id in 0..config.n {
            let zip = 10_000 + zip_dist.sample(rng) as i64;
            let birth = Date::from_day_number(rng.gen_range(day_lo..=day_hi));
            let sex = sex_syms[usize::from(rng.gen::<bool>())];
            let disease = disease_syms[disease_dist.sample(rng)];
            b.push_row(vec![
                Value::Int(id as i64),
                Value::Int(zip),
                Value::Date(birth),
                Value::Str(sex),
                Value::Str(disease),
            ]);
        }
        let master = b.finish();
        let voter_rows = (0..config.n)
            .filter(|_| rng.gen::<f64>() < config.voter_coverage)
            .collect();
        Population { master, voter_rows }
    }

    /// The full master dataset (ground truth, never released).
    pub fn master(&self) -> &Dataset {
        &self.master
    }

    /// The medical release: direct identifiers redacted (HIPAA-style),
    /// quasi-identifiers and sensitive attribute retained — exactly the GIC
    /// publication model the paper describes.
    pub fn medical_release(&self) -> Dataset {
        let schema = Schema::new(vec![
            AttributeDef::new("zip", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("birth_date", DataType::Date, AttributeRole::QuasiIdentifier),
            AttributeDef::new("sex", DataType::Str, AttributeRole::QuasiIdentifier),
            AttributeDef::new("disease", DataType::Str, AttributeRole::Sensitive),
        ]);
        let mut b = DatasetBuilder::from_parts(schema, (**self.master.interner()).clone());
        for r in self.master.rows() {
            b.push_row(vec![
                r.get(columns::ZIP),
                r.get(columns::BIRTH_DATE),
                r.get(columns::SEX),
                r.get(columns::DISEASE),
            ]);
        }
        b.finish()
    }

    /// The voter registry: identified, with quasi-identifiers, covering a
    /// configured fraction of the population.
    pub fn voter_registry(&self) -> Dataset {
        let schema = Schema::new(vec![
            AttributeDef::new("person_id", DataType::Int, AttributeRole::DirectIdentifier),
            AttributeDef::new("zip", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("birth_date", DataType::Date, AttributeRole::QuasiIdentifier),
            AttributeDef::new("sex", DataType::Str, AttributeRole::QuasiIdentifier),
        ]);
        let mut b = DatasetBuilder::from_parts(schema, (**self.master.interner()).clone());
        for &i in &self.voter_rows {
            let r = self.master.row(i);
            b.push_row(vec![
                r.get(columns::PERSON_ID),
                r.get(columns::ZIP),
                r.get(columns::BIRTH_DATE),
                r.get(columns::SEX),
            ]);
        }
        b.finish()
    }

    /// Row indices (into the master) present in the voter registry.
    pub fn voter_rows(&self) -> &[usize] {
        &self.voter_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    fn small() -> Population {
        let cfg = PopulationConfig {
            n: 2_000,
            ..PopulationConfig::default()
        };
        Population::generate(&cfg, &mut seeded_rng(11))
    }

    #[test]
    fn master_has_expected_shape() {
        let p = small();
        assert_eq!(p.master().n_rows(), 2_000);
        assert_eq!(p.master().n_cols(), 5);
        // person_id is a unique direct identifier.
        let mut seen = std::collections::HashSet::new();
        for r in p.master().rows() {
            assert!(seen.insert(r.get(columns::PERSON_ID)));
        }
    }

    #[test]
    fn birth_dates_in_range() {
        let p = small();
        for r in p.master().rows() {
            let d = r.get(columns::BIRTH_DATE).as_date().unwrap();
            let y = d.year();
            assert!((1930..=2000).contains(&y), "year {y}");
        }
    }

    #[test]
    fn zips_in_configured_block() {
        let p = small();
        for r in p.master().rows() {
            let z = r.get(columns::ZIP).as_int().unwrap();
            assert!((10_000..10_050).contains(&z), "zip {z}");
        }
    }

    #[test]
    fn medical_release_redacts_identifier() {
        let p = small();
        let med = p.medical_release();
        assert_eq!(med.n_rows(), 2_000);
        assert!(med.column_index("person_id").is_none());
        assert!(med.column_index("disease").is_some());
        // Rows align with the master.
        for i in 0..med.n_rows() {
            assert_eq!(med.get(i, 0), p.master().get(i, columns::ZIP));
        }
    }

    #[test]
    fn voter_registry_covers_roughly_the_configured_fraction() {
        let p = small();
        let voters = p.voter_registry();
        let frac = voters.n_rows() as f64 / 2_000.0;
        assert!((0.62..=0.78).contains(&frac), "coverage {frac}");
        assert!(voters.column_index("disease").is_none());
        assert!(voters.column_index("person_id").is_some());
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let cfg = PopulationConfig {
            n: 100,
            ..PopulationConfig::default()
        };
        let a = Population::generate(&cfg, &mut seeded_rng(7));
        let b = Population::generate(&cfg, &mut seeded_rng(7));
        for i in 0..100 {
            assert_eq!(a.master().row_values(i), b.master().row_values(i));
        }
    }

    #[test]
    fn sexes_are_balanced() {
        let p = small();
        let groups = p.master().group_by(&[columns::SEX]);
        assert_eq!(groups.len(), 2);
        for rows in groups.values() {
            let frac = rows.len() as f64 / 2_000.0;
            assert!((0.44..=0.56).contains(&frac), "sex frac {frac}");
        }
    }
}
