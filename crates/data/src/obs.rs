//! so-data observability: delta-segment and compaction metrics for the
//! incremental (versioned) dataset layer, published to the `so-obs` global
//! registry.
//!
//! Every counter here is deterministic for a fixed mutation transcript —
//! mutations are applied serially by the owner of a
//! [`VersionedDataset`](crate::versioned::VersionedDataset), so segment
//! counts, compaction runs, and rewritten-row totals are invariant across
//! `SO_THREADS` / `SO_STORAGE` / `SO_SCHEDULE` and may appear in diffed
//! metric dumps.

use std::sync::OnceLock;

use so_obs::{global, Counter, Gauge};

/// Cached handles to the delta/compaction metrics in the
/// [`so_obs::global`] registry. Fetch once via [`delta_metrics`]; updates
/// are lock-free.
#[derive(Debug)]
pub struct DeltaMetrics {
    /// `so_delta_inserts_total` — rows inserted through delta segments,
    /// summed over every versioned dataset in the process.
    pub rows_inserted: Counter,
    /// `so_delta_deletes_total` — live rows tombstoned.
    pub rows_deleted: Counter,
    /// `so_delta_segments` — delta segment count of the most recently
    /// mutated versioned dataset (last writer wins across datasets).
    pub segments: Gauge,
    /// `so_delta_open_rows` — rows in the open (unfrozen) tail segment of
    /// the most recently mutated versioned dataset.
    pub open_rows: Gauge,
    /// `so_compaction_runs_total` — compactions triggered by the delta
    /// threshold (`SO_COMPACT_THRESHOLD`).
    pub compaction_runs: Counter,
    /// `so_compaction_rows_rewritten_total` — live rows gathered into a
    /// fresh base across all compactions.
    pub compaction_rows_rewritten: Counter,
    /// `so_compaction_rows_dropped_total` — tombstoned rows physically
    /// discarded by compactions.
    pub compaction_rows_dropped: Counter,
}

/// The versioned-dataset layer's global metric handles, registered on
/// first use.
pub fn delta_metrics() -> &'static DeltaMetrics {
    static METRICS: OnceLock<DeltaMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        DeltaMetrics {
            rows_inserted: r.counter("so_delta_inserts_total"),
            rows_deleted: r.counter("so_delta_deletes_total"),
            segments: r.gauge("so_delta_segments"),
            open_rows: r.gauge("so_delta_open_rows"),
            compaction_runs: r.counter("so_compaction_runs_total"),
            compaction_rows_rewritten: r.counter("so_compaction_rows_rewritten_total"),
            compaction_rows_dropped: r.counter("so_compaction_rows_dropped_total"),
        }
    })
}
