//! Word-parallel selection bitmaps.
//!
//! A [`SelectionVector`] marks a subset of the rows of a dataset: bit `i` is
//! set iff row `i` is selected. Storage is packed `u64` blocks, so the
//! boolean algebra of predicates (AND/OR/NOT) and the counting queries built
//! on top of them (popcount) run 64 rows per instruction instead of one.
//! This is the execution currency of `so-query`'s columnar scan kernels:
//! each column predicate is evaluated once into a bitmap, and compound
//! predicates combine bitmaps with word ops.
//!
//! Invariant: bits at positions `>= len` in the last block are always zero,
//! so `count` and the combinators never see garbage in the tail word.

use std::fmt;

/// A packed bitmap over `len` row positions.
///
/// ```
/// use so_data::SelectionVector;
/// let evens = SelectionVector::from_fn(10, |i| i % 2 == 0);
/// let small = SelectionVector::from_fn(10, |i| i < 5);
/// let both = evens.and(&small);
/// assert_eq!(both.count(), 3); // rows 0, 2, 4
/// assert_eq!(both.indices(), vec![0, 2, 4]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct SelectionVector {
    words: Vec<u64>,
    len: usize,
}

impl SelectionVector {
    /// Empty selection over `len` rows (no row selected).
    pub fn none(len: usize) -> Self {
        SelectionVector {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Full selection over `len` rows (every row selected).
    pub fn all(len: usize) -> Self {
        let mut v = SelectionVector {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        v.mask_tail();
        v
    }

    /// Builds by evaluating `f` on every row index.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut words = Vec::with_capacity(len.div_ceil(64));
        let mut i = 0;
        while i < len {
            let mut word = 0u64;
            let block = 64.min(len - i);
            for b in 0..block {
                word |= u64::from(f(i + b)) << b;
            }
            words.push(word);
            i += 64;
        }
        SelectionVector { words, len }
    }

    /// Builds from a slice of bools.
    pub fn from_bools(bits: &[bool]) -> Self {
        Self::from_fn(bits.len(), |i| bits[i])
    }

    /// Builds directly from packed words (bit `i` of word `w` is row
    /// `w * 64 + i`) — the constructor for kernels that already produce
    /// word-shaped output, such as the packed storage scans. Tail bits at
    /// positions `>= len` are masked to zero to uphold the invariant.
    ///
    /// # Panics
    /// Panics if `words.len() != len.div_ceil(64)`.
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        assert_eq!(
            words.len(),
            len.div_ceil(64),
            "{} words cannot back {len} rows",
            words.len()
        );
        let mut v = SelectionVector { words, len };
        v.mask_tail();
        v
    }

    /// Columnar scan kernel: selects the non-missing rows of a typed column
    /// slice for which `f` holds. `vals` and `missing` run in row order.
    ///
    /// Packs 64 rows per word with zipped iteration (no per-row bounds
    /// checks), which is what lets the typed predicate kernels beat the
    /// row-at-a-time path.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn from_column<T>(vals: &[T], missing: &[bool], mut f: impl FnMut(&T) -> bool) -> Self {
        assert_eq!(vals.len(), missing.len(), "column slice length mismatch");
        let len = vals.len();
        let mut words = Vec::with_capacity(len.div_ceil(64));
        // chunks_exact gives the compiler a fixed 64 trip count per word, so
        // the shift-OR packing unrolls into a tree instead of a 64-deep
        // dependency chain.
        let mut cv = vals.chunks_exact(64);
        let mut cm = missing.chunks_exact(64);
        for (v64, m64) in (&mut cv).zip(&mut cm) {
            let mut word = 0u64;
            for b in 0..64 {
                word |= u64::from(!m64[b] & f(&v64[b])) << b;
            }
            words.push(word);
        }
        let (rv, rm) = (cv.remainder(), cm.remainder());
        if !rv.is_empty() {
            let mut word = 0u64;
            for (b, (v, &m)) in rv.iter().zip(rm).enumerate() {
                word |= u64::from(!m & f(v)) << b;
            }
            words.push(word);
        }
        SelectionVector { words, len }
    }

    /// Number of row positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff there are no row positions at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "row index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "row index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of selected rows (word-parallel popcount).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of rows selected in `self` but **not** in `mask` — the
    /// word-parallel popcount of `self ∧ ¬mask`, computed without allocating
    /// an intermediate bitmap. This is the tombstone-mask merge step of the
    /// incremental engine: a cached segment selection popcounted against the
    /// segment's tombstones yields the live match count directly.
    ///
    /// Because `self`'s tail bits beyond `len` are always zero, negating
    /// `mask`'s words needs no tail handling: stray ones in `!mask` past the
    /// end are annihilated by the AND.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn count_and_not(&self, mask: &SelectionVector) -> usize {
        assert_eq!(self.len, mask.len, "selection length mismatch");
        self.words
            .iter()
            .zip(&mask.words)
            .map(|(&a, &b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// True iff no row is selected.
    pub fn is_none(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place intersection.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn and_assign(&mut self, other: &SelectionVector) {
        assert_eq!(self.len, other.len, "selection length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn or_assign(&mut self, other: &SelectionVector) {
        assert_eq!(self.len, other.len, "selection length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place complement (tail bits stay zero).
    pub fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Intersection `self ∧ other`.
    pub fn and(&self, other: &SelectionVector) -> SelectionVector {
        let mut out = self.clone();
        out.and_assign(other);
        out
    }

    /// Union `self ∨ other`.
    pub fn or(&self, other: &SelectionVector) -> SelectionVector {
        let mut out = self.clone();
        out.or_assign(other);
        out
    }

    /// Complement `¬self`.
    pub fn not(&self) -> SelectionVector {
        let mut out = self.clone();
        out.not_assign();
        out
    }

    /// Indices of the selected rows, ascending.
    pub fn indices(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count());
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                out.push(wi * 64 + w.trailing_zeros() as usize);
                w &= w - 1;
            }
        }
        out
    }

    /// Iterates over selected row indices without materializing them.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            std::iter::successors((word != 0).then_some(word), |w| {
                let next = w & (w - 1);
                (next != 0).then_some(next)
            })
            .map(move |w| wi * 64 + w.trailing_zeros() as usize)
        })
    }

    /// Smallest selected index `>= from`, or `None`. Word-parallel: skips
    /// clear words 64 rows at a time.
    pub fn next_set_bit(&self, from: usize) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        let mut wi = from / 64;
        let mut word = self.words[wi] & (u64::MAX << (from % 64));
        loop {
            if word != 0 {
                return Some(wi * 64 + word.trailing_zeros() as usize);
            }
            wi += 1;
            if wi == self.words.len() {
                return None;
            }
            word = self.words[wi];
        }
    }

    /// The packed words (tail bits beyond `len` are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Concatenates word-aligned shard bitmaps, in order, into one vector —
    /// the deterministic merge step of sharded parallel execution. Shard
    /// `i`'s bitmap covers the next `parts[i].len()` rows, and every part
    /// except the last must end on a word (multiple-of-64) boundary, so the
    /// merge is a pure word copy with no shifting.
    ///
    /// The merged vector's tail bits beyond the combined length are masked
    /// to zero here regardless of what the final part's last word carried,
    /// so a non-multiple-of-64 final shard can never leak set bits past
    /// `n_rows` and over-count downstream popcounts.
    ///
    /// ```
    /// use so_data::SelectionVector;
    /// let a = SelectionVector::from_fn(64, |i| i % 2 == 0);
    /// let b = SelectionVector::from_fn(70, |i| i % 2 == 0);
    /// let merged = SelectionVector::concat_aligned([a, b]);
    /// assert_eq!(merged.len(), 134);
    /// assert_eq!(merged.count(), 67);
    /// ```
    ///
    /// Zero-row parts are skipped: a zero-row shard (an empty dataset, or a
    /// delta segment that has seen no rows yet) contributes no words and no
    /// rows, so it cannot trip the alignment requirement no matter where it
    /// appears in the sequence.
    ///
    /// # Panics
    /// Panics if any non-empty part other than the last starts at a row
    /// offset that is not a multiple of 64.
    pub fn concat_aligned<I: IntoIterator<Item = SelectionVector>>(parts: I) -> SelectionVector {
        let mut words: Vec<u64> = Vec::new();
        let mut len = 0usize;
        for part in parts {
            if part.len == 0 {
                continue;
            }
            assert_eq!(
                len % 64,
                0,
                "shard boundary at row {len} is not word-aligned"
            );
            words.extend_from_slice(&part.words);
            len += part.len;
        }
        let mut out = SelectionVector { words, len };
        out.mask_tail();
        out
    }

    /// The bitmap restricted to rows `[range.start, range.end)` of `self`,
    /// re-indexed from zero — a pure word copy thanks to the word-aligned
    /// start. This is how a shard worker reads an already-cached full-length
    /// bitmap for just its rows.
    ///
    /// # Panics
    /// Panics unless `range.start` is a multiple of 64 and the range lies
    /// within the vector.
    pub fn slice_aligned(&self, range: std::ops::Range<usize>) -> SelectionVector {
        assert_eq!(range.start % 64, 0, "slice start must be word-aligned");
        assert!(
            range.start <= range.end && range.end <= self.len,
            "slice {}..{} out of range {}",
            range.start,
            range.end,
            self.len
        );
        let len = range.end - range.start;
        let w0 = range.start / 64;
        let words = self.words[w0..w0 + len.div_ceil(64)].to_vec();
        let mut out = SelectionVector { words, len };
        out.mask_tail();
        out
    }

    /// Extends the vector to `new_len` rows, the new positions unselected —
    /// how a tombstone bitmap tracks a delta segment that just grew. The
    /// existing bits are unchanged; growth is amortized O(new words).
    ///
    /// # Panics
    /// Panics if `new_len < len` (tombstones never shrink; compaction
    /// replaces them wholesale).
    pub fn grow(&mut self, new_len: usize) {
        assert!(
            new_len >= self.len,
            "cannot shrink a selection from {} to {new_len} rows",
            self.len
        );
        self.words.resize(new_len.div_ceil(64), 0);
        self.len = new_len;
    }

    /// Zeroes the bits of the last word at positions `>= len`.
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl fmt::Debug for SelectionVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SelectionVector[{}/{} set]", self.count(), self.len)
    }
}

impl std::ops::BitAnd for &SelectionVector {
    type Output = SelectionVector;

    fn bitand(self, rhs: &SelectionVector) -> SelectionVector {
        self.and(rhs)
    }
}

impl std::ops::BitOr for &SelectionVector {
    type Output = SelectionVector;

    fn bitor(self, rhs: &SelectionVector) -> SelectionVector {
        self.or(rhs)
    }
}

impl std::ops::Not for &SelectionVector {
    type Output = SelectionVector;

    fn not(self) -> SelectionVector {
        SelectionVector::not(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_none_and_tail_masking() {
        for len in [0usize, 1, 63, 64, 65, 127, 128, 130] {
            let all = SelectionVector::all(len);
            assert_eq!(all.count(), len, "len {len}");
            let none = SelectionVector::none(len);
            assert_eq!(none.count(), 0);
            // NOT(all) must be empty even when len % 64 != 0.
            assert_eq!(all.not().count(), 0, "len {len}");
            assert_eq!(none.not().count(), len, "len {len}");
        }
    }

    #[test]
    fn from_fn_matches_get() {
        let v = SelectionVector::from_fn(100, |i| i % 3 == 0);
        for i in 0..100 {
            assert_eq!(v.get(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(v.count(), 34);
    }

    #[test]
    fn boolean_algebra() {
        let a = SelectionVector::from_fn(70, |i| i % 2 == 0);
        let b = SelectionVector::from_fn(70, |i| i % 3 == 0);
        let and = &a & &b;
        let or = &a | &b;
        let na = !&a;
        for i in 0..70 {
            assert_eq!(and.get(i), i % 6 == 0);
            assert_eq!(or.get(i), i % 2 == 0 || i % 3 == 0);
            assert_eq!(na.get(i), i % 2 == 1);
        }
    }

    #[test]
    fn indices_and_iter_ones_agree() {
        let v = SelectionVector::from_fn(150, |i| i % 7 == 0);
        let idx = v.indices();
        let it: Vec<usize> = v.iter_ones().collect();
        assert_eq!(idx, it);
        assert_eq!(idx, (0..150).filter(|i| i % 7 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn next_set_bit_skips_and_terminates() {
        let mut v = SelectionVector::none(200);
        v.set(0, true);
        v.set(65, true);
        v.set(199, true);
        assert_eq!(v.next_set_bit(0), Some(0));
        assert_eq!(v.next_set_bit(1), Some(65));
        assert_eq!(v.next_set_bit(66), Some(199));
        assert_eq!(v.next_set_bit(199), Some(199));
        v.set(199, false);
        assert_eq!(v.next_set_bit(66), None);
        assert_eq!(v.next_set_bit(500), None);
    }

    #[test]
    fn from_column_skips_missing() {
        let vals = [1i64, 5, 9, 5];
        let missing = [false, true, false, false];
        let v = SelectionVector::from_column(&vals, &missing, |&x| x == 5);
        assert_eq!(v.indices(), vec![3]);
    }

    #[test]
    fn set_and_clear_round_trip() {
        let mut v = SelectionVector::none(66);
        v.set(65, true);
        assert!(v.get(65));
        assert_eq!(v.count(), 1);
        v.set(65, false);
        assert!(v.is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        SelectionVector::none(10).get(10);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_length_mismatch_panics() {
        let mut a = SelectionVector::none(10);
        a.and_assign(&SelectionVector::none(11));
    }

    #[test]
    fn concat_aligned_round_trips_any_split() {
        // Splitting a bitmap at word boundaries and merging it back must be
        // the identity, for totals on and off multiples of 64.
        for n in [1usize, 63, 64, 65, 127, 128, 130, 300] {
            let full = SelectionVector::from_fn(n, |i| i % 3 == 0);
            for cut_words in [1usize, 2] {
                let cut = cut_words * 64;
                let parts = if cut < n {
                    vec![full.slice_aligned(0..cut), full.slice_aligned(cut..n)]
                } else {
                    vec![full.slice_aligned(0..n)]
                };
                let merged = SelectionVector::concat_aligned(parts);
                assert_eq!(merged, full, "n={n} cut={cut}");
                assert_eq!(merged.count(), full.count(), "n={n} cut={cut}");
            }
        }
    }

    #[test]
    fn concat_aligned_masks_final_shard_tail() {
        // The final shard ends mid-word (70 % 64 != 0). A NOT on the merged
        // vector exercises the tail invariant: if merge left bits set past
        // n_rows the popcount would over-count.
        let a = SelectionVector::from_fn(64, |_| true);
        let b = SelectionVector::from_fn(70, |_| true);
        let merged = SelectionVector::concat_aligned([a, b]);
        assert_eq!(merged.len(), 134);
        assert_eq!(merged.count(), 134);
        assert_eq!(merged.not().count(), 0);
        // Tail word holds exactly 134 - 128 = 6 set bits, nothing above.
        assert_eq!(merged.words().last().unwrap() >> (134 % 64), 0);
    }

    #[test]
    fn concat_aligned_empty_and_single() {
        let empty = SelectionVector::concat_aligned(std::iter::empty());
        assert_eq!(empty.len(), 0);
        assert_eq!(empty.count(), 0);
        let one = SelectionVector::concat_aligned([SelectionVector::from_fn(10, |i| i < 3)]);
        assert_eq!(one.len(), 10);
        assert_eq!(one.count(), 3);
    }

    #[test]
    #[should_panic(expected = "not word-aligned")]
    fn concat_aligned_rejects_misaligned_interior_shard() {
        let _ = SelectionVector::concat_aligned([
            SelectionVector::none(10), // 10 % 64 != 0 and not the last part
            SelectionVector::none(64),
        ]);
    }

    #[test]
    fn concat_aligned_skips_zero_row_parts() {
        // A zero-row shard contributes nothing and must never trip the
        // alignment assert — including after a misaligned final-style part.
        let tail = SelectionVector::from_fn(10, |i| i < 4);
        let merged = SelectionVector::concat_aligned([
            SelectionVector::none(0),
            tail.clone(),
            SelectionVector::none(0),
        ]);
        assert_eq!(merged.len(), 10);
        assert_eq!(merged.count(), 4);
        assert_eq!(merged, tail);
        // All-empty input: a well-formed zero-row vector.
        let empty =
            SelectionVector::concat_aligned([SelectionVector::none(0), SelectionVector::none(0)]);
        assert_eq!(empty.len(), 0);
        assert!(empty.is_none());
        // Zero-row parts interleaved with word-aligned parts stay aligned.
        let a = SelectionVector::from_fn(64, |i| i % 2 == 0);
        let b = SelectionVector::from_fn(30, |i| i % 2 == 1);
        let merged = SelectionVector::concat_aligned([
            SelectionVector::none(0),
            a.clone(),
            SelectionVector::none(0),
            b.clone(),
        ]);
        assert_eq!(merged.len(), 94);
        assert_eq!(merged.count(), a.count() + b.count());
    }

    #[test]
    fn concat_and_slice_aligned_handle_empty_datasets() {
        // Proptest-shaped sweep over zero-row shard placements: splitting a
        // bitmap (including the n=0 bitmap) at any word-aligned cuts, with
        // empty shards salted anywhere, must round-trip.
        for n in [0usize, 1, 63, 64, 65, 128, 200] {
            let full = SelectionVector::from_fn(n, |i| i % 5 == 0);
            for cut in [0usize, 64, 128] {
                let cut = cut.min(n);
                if cut % 64 != 0 {
                    continue;
                }
                let parts = vec![
                    SelectionVector::none(0),
                    full.slice_aligned(0..cut),
                    SelectionVector::none(0),
                    full.slice_aligned(cut..n),
                    SelectionVector::none(0),
                ];
                let merged = SelectionVector::concat_aligned(parts);
                assert_eq!(merged, full, "n={n} cut={cut}");
            }
            // slice_aligned at n=0 / empty aligned ranges is well-formed.
            let s = full.slice_aligned(0..0);
            assert_eq!(s.len(), 0);
            assert!(s.is_none());
            if n >= 64 {
                let s = full.slice_aligned(64..64);
                assert_eq!(s.len(), 0);
            }
        }
    }

    #[test]
    fn count_and_not_matches_materialized_difference() {
        for n in [0usize, 1, 63, 64, 65, 130, 300] {
            let sel = SelectionVector::from_fn(n, |i| i % 3 == 0);
            let tomb = SelectionVector::from_fn(n, |i| i % 4 == 0);
            let expect = sel.and(&tomb.not()).count();
            assert_eq!(sel.count_and_not(&tomb), expect, "n={n}");
            // Against no tombstones: the plain count.
            assert_eq!(sel.count_and_not(&SelectionVector::none(n)), sel.count());
            // Against all tombstones: zero survivors.
            assert_eq!(sel.count_and_not(&SelectionVector::all(n)), 0);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn count_and_not_length_mismatch_panics() {
        SelectionVector::none(10).count_and_not(&SelectionVector::none(11));
    }

    #[test]
    fn grow_preserves_bits_and_keeps_tail_clear() {
        let mut v = SelectionVector::from_fn(10, |i| i % 2 == 0);
        let before = v.indices();
        v.grow(10); // no-op growth
        assert_eq!(v.len(), 10);
        v.grow(130);
        assert_eq!(v.len(), 130);
        assert_eq!(v.indices(), before, "old bits survive");
        // New positions are unselected; NOT must select all of them.
        assert_eq!(v.not().count(), 130 - before.len());
        // From empty.
        let mut e = SelectionVector::none(0);
        e.grow(65);
        assert_eq!(e.len(), 65);
        assert!(e.is_none());
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn grow_rejects_shrinking() {
        SelectionVector::none(10).grow(9);
    }

    #[test]
    fn slice_aligned_matches_per_bit_reads() {
        let full = SelectionVector::from_fn(200, |i| i % 7 == 0);
        for (start, end) in [(0usize, 200usize), (64, 200), (128, 130), (64, 64)] {
            let s = full.slice_aligned(start..end);
            assert_eq!(s.len(), end - start);
            for i in 0..s.len() {
                assert_eq!(s.get(i), full.get(start + i), "start={start} i={i}");
            }
            // Slice tail must be masked even when end % 64 != 0.
            assert_eq!(s.count(), (start..end).filter(|i| i % 7 == 0).count());
        }
    }

    #[test]
    #[should_panic(expected = "word-aligned")]
    fn slice_aligned_rejects_misaligned_start() {
        SelectionVector::none(100).slice_aligned(10..20);
    }
}
