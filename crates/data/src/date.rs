//! Minimal proleptic-Gregorian calendar dates.
//!
//! The linkage experiments (Sweeney's ZIP × birth date × sex quasi-identifier)
//! need calendar dates with day-level arithmetic; pulling in a full datetime
//! crate is unnecessary. Dates are stored as a day number relative to
//! 1970-01-01 (negative for earlier dates), so ordering and distance are
//! integer operations.

use std::fmt;

/// A calendar date, stored as days since the Unix epoch (1970-01-01).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date(i32);

const DAYS_PER_400Y: i64 = 146_097;
/// Days from 0000-03-01 to 1970-01-01 in the proleptic Gregorian calendar.
const EPOCH_SHIFT: i64 = 719_468;

impl Date {
    /// Builds a date from year / month (1–12) / day (1–31), validating the
    /// day against the month length.
    pub fn new(year: i32, month: u8, day: u8) -> Option<Date> {
        if !(1..=12).contains(&month) {
            return None;
        }
        if day == 0 || day > days_in_month(year, month) {
            return None;
        }
        Some(Date(days_from_civil(year, month, day) as i32))
    }

    /// Builds a date directly from a day number since 1970-01-01.
    pub fn from_day_number(days: i32) -> Date {
        Date(days)
    }

    /// Day number since 1970-01-01 (negative before the epoch).
    pub fn day_number(&self) -> i32 {
        self.0
    }

    /// Decomposes into `(year, month, day)`.
    pub fn ymd(&self) -> (i32, u8, u8) {
        civil_from_days(self.0 as i64)
    }

    /// The year component.
    pub fn year(&self) -> i32 {
        self.ymd().0
    }

    /// The month component (1–12).
    pub fn month(&self) -> u8 {
        self.ymd().1
    }

    /// The day-of-month component (1–31).
    pub fn day(&self) -> u8 {
        self.ymd().2
    }

    /// Date `n` days after this one (negative `n` moves backwards).
    pub fn plus_days(&self, n: i32) -> Date {
        Date(self.0 + n)
    }

    /// Signed distance in days from `other` to `self`.
    pub fn days_since(&self, other: Date) -> i32 {
        self.0 - other.0
    }

    /// Age in whole years at reference date `at`.
    pub fn age_at(&self, at: Date) -> i32 {
        let (by, bm, bd) = self.ymd();
        let (ay, am, ad) = at.ymd();
        let mut age = ay - by;
        if (am, ad) < (bm, bd) {
            age -= 1;
        }
        age
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

/// True iff `year` is a Gregorian leap year.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in `month` of `year`.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

// Howard Hinnant's `days_from_civil` / `civil_from_days` algorithms.
fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = i64::from((m as i32 + 9) % 12);
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * DAYS_PER_400Y + doe - EPOCH_SHIFT
}

fn civil_from_days(z: i64) -> (i32, u8, u8) {
    let z = z + EPOCH_SHIFT;
    let era = if z >= 0 { z } else { z - DAYS_PER_400Y + 1 } / DAYS_PER_400Y;
    let doe = z - era * DAYS_PER_400Y;
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u8;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8;
    ((y + i64::from(m <= 2)) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        let d = Date::new(1970, 1, 1).unwrap();
        assert_eq!(d.day_number(), 0);
        assert_eq!(d.ymd(), (1970, 1, 1));
    }

    #[test]
    fn known_day_numbers() {
        assert_eq!(Date::new(1970, 1, 2).unwrap().day_number(), 1);
        assert_eq!(Date::new(1969, 12, 31).unwrap().day_number(), -1);
        assert_eq!(Date::new(2000, 3, 1).unwrap().day_number(), 11_017);
        // 2024-01-01 is 19723 days after the epoch.
        assert_eq!(Date::new(2024, 1, 1).unwrap().day_number(), 19_723);
    }

    #[test]
    fn rejects_invalid_dates() {
        assert!(Date::new(2021, 2, 29).is_none());
        assert!(Date::new(2020, 2, 29).is_some());
        assert!(Date::new(2021, 13, 1).is_none());
        assert!(Date::new(2021, 0, 1).is_none());
        assert!(Date::new(2021, 4, 31).is_none());
        assert!(Date::new(2021, 4, 0).is_none());
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(2024));
        assert!(!is_leap_year(2023));
    }

    #[test]
    fn round_trip_every_day_for_a_decade() {
        let start = Date::new(1995, 1, 1).unwrap().day_number();
        let end = Date::new(2005, 12, 31).unwrap().day_number();
        for dn in start..=end {
            let d = Date::from_day_number(dn);
            let (y, m, day) = d.ymd();
            assert_eq!(Date::new(y, m, day).unwrap(), d);
        }
    }

    #[test]
    fn ordering_follows_chronology() {
        let a = Date::new(1980, 6, 15).unwrap();
        let b = Date::new(1980, 6, 16).unwrap();
        assert!(a < b);
        assert_eq!(b.days_since(a), 1);
        assert_eq!(a.plus_days(1), b);
    }

    #[test]
    fn age_computation() {
        let birth = Date::new(1980, 6, 15).unwrap();
        assert_eq!(birth.age_at(Date::new(2020, 6, 14).unwrap()), 39);
        assert_eq!(birth.age_at(Date::new(2020, 6, 15).unwrap()), 40);
        assert_eq!(birth.age_at(Date::new(2020, 6, 16).unwrap()), 40);
    }

    #[test]
    fn display_format() {
        assert_eq!(Date::new(2021, 3, 7).unwrap().to_string(), "2021-03-07");
    }
}
