//! Dynamically-typed cell values for tabular datasets.
//!
//! Values deliberately implement *total* equality, ordering, and hashing —
//! floats compare via [`f64::total_cmp`] and hash via their bit pattern — so
//! they can key equivalence classes in the k-anonymity substrate and be
//! grouped in linkage attacks without `NaN` footguns.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::date::Date;
use crate::interner::Symbol;

/// A single typed cell value.
#[derive(Debug, Clone, Copy)]
pub enum Value {
    /// Signed integer (ages, counts, ZIP codes, category codes).
    Int(i64),
    /// IEEE-754 double, compared and hashed totally.
    Float(f64),
    /// Interned string; resolve through the owning [`crate::Interner`].
    Str(Symbol),
    /// Boolean flag.
    Bool(bool),
    /// Calendar date, stored as a day number internally.
    Date(Date),
    /// Missing / suppressed cell (`*` in the paper's k-anonymity example).
    Missing,
}

impl Value {
    /// Discriminant rank used to order values of different types.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Missing => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Date(_) => 4,
            Value::Str(_) => 5,
        }
    }

    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float payload, widening `Int` losslessly when possible.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the interned-string payload, if this is a `Str`.
    pub fn as_str_symbol(&self) -> Option<Symbol> {
        match self {
            Value::Str(s) => Some(*s),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the date payload, if this is a `Date`.
    pub fn as_date(&self) -> Option<Date> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// True iff this cell is [`Value::Missing`].
    pub fn is_missing(&self) -> bool {
        matches!(self, Value::Missing)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Missing, Missing) => Ordering::Equal,
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.type_rank().hash(state);
        match self {
            Value::Int(v) => v.hash(state),
            Value::Float(v) => v.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Bool(b) => b.hash(state),
            Value::Date(d) => d.hash(state),
            Value::Missing => {}
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "sym#{}", s.index()),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Date(d) => write!(f, "{d}"),
            Value::Missing => write!(f, "*"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}

impl From<Symbol> for Value {
    fn from(v: Symbol) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_equality_and_order() {
        assert_eq!(Value::Int(3), Value::Int(3));
        assert!(Value::Int(2) < Value::Int(3));
        assert_ne!(Value::Int(3), Value::Int(4));
    }

    #[test]
    fn float_total_order_handles_nan() {
        let nan = Value::Float(f64::NAN);
        let one = Value::Float(1.0);
        // NaN equals itself under total ordering — usable as a map key.
        assert_eq!(nan, nan);
        assert_ne!(nan, one);
        assert_eq!(hash_of(&nan), hash_of(&Value::Float(f64::NAN)));
    }

    #[test]
    fn float_negative_zero_distinct_bits() {
        // total_cmp distinguishes -0.0 from +0.0; we inherit that, which is
        // fine because generators never emit -0.0.
        assert!(Value::Float(-0.0) < Value::Float(0.0));
    }

    #[test]
    fn cross_type_order_is_total_and_consistent() {
        let vals = [
            Value::Missing,
            Value::Bool(true),
            Value::Int(5),
            Value::Float(2.5),
            Value::Date(Date::new(2020, 1, 1).unwrap()),
        ];
        for (i, a) in vals.iter().enumerate() {
            for (j, b) in vals.iter().enumerate() {
                match i.cmp(&j) {
                    Ordering::Less => assert!(a < b, "{a:?} vs {b:?}"),
                    Ordering::Equal => assert_eq!(a, b),
                    Ordering::Greater => assert!(a > b),
                }
            }
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_float(), Some(7.0));
        assert_eq!(Value::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Missing.is_missing());
        assert_eq!(Value::Missing.as_int(), None);
    }

    #[test]
    fn equal_values_hash_equal() {
        let pairs = [
            (Value::Int(42), Value::Int(42)),
            (Value::Bool(false), Value::Bool(false)),
            (Value::Missing, Value::Missing),
            (Value::Float(2.25), Value::Float(2.25)),
        ];
        for (a, b) in pairs {
            assert_eq!(a, b);
            assert_eq!(hash_of(&a), hash_of(&b));
        }
    }
}
