#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # so-data — dataset substrate
//!
//! Foundation crate for the `singling-out` workspace: typed values, schemas,
//! columnar datasets, probability distributions over data universes, and the
//! synthetic data generators used by every experiment in the reproduction of
//! Nissim, *"Privacy: From Database Reconstruction to Legal Theorems"*
//! (PODS 2021).
//!
//! The paper models a dataset as a vector `x = (x_1, ..., x_n) ∈ X^n` of
//! records drawn from a data domain `X`. This crate provides three concrete
//! families of `X`:
//!
//! * **binary records** (`{0,1}`) and **bit-string records** (`{0,1}^d`) via
//!   [`bits::BitVec`] and [`bits::BitDataset`] — the domain of the
//!   Dinur–Nissim reconstruction attacks (Theorem 1.1) and of the
//!   predicate-singling-out composition attack (Theorem 2.8);
//! * **tabular records** via [`dataset::Dataset`] with a typed
//!   [`schema::Schema`] — the domain of the k-anonymity analyses
//!   (Theorem 2.10), the Sweeney-style linkage experiments, and the census
//!   reconstruction;
//! * **sparse rating records** via [`ratings::RatingsData`] — the domain of
//!   the Narayanan–Shmatikov de-anonymization experiment.
//!
//! Sampling follows the paper's modelling choice (§2.2): records are drawn
//! i.i.d. from a fixed distribution `D ∈ Δ(X)`, represented by the
//! [`dist::RecordDistribution`] trait.

pub mod bits;
pub mod csv;
pub mod dataset;
pub mod date;
pub mod dist;
pub mod interner;
pub mod obs;
pub mod population;
pub mod ratings;
pub mod rng;
pub mod schema;
pub mod selection;
pub mod sharded;
pub mod storage;
pub mod value;
pub mod versioned;

pub use bits::{column_counts, BitDataset, BitVec};
pub use dataset::{Dataset, DatasetBuilder, RowRef};
pub use date::Date;
pub use dist::{
    Categorical, ProductBernoulli, RecordDistribution, RowDistribution, UniformBits, Zipf,
};
pub use interner::{Interner, Symbol};
pub use obs::{delta_metrics, DeltaMetrics};
pub use population::{Population, PopulationConfig};
pub use ratings::{RatingsConfig, RatingsData};
pub use schema::{AttributeDef, AttributeRole, DataType, Schema};
pub use selection::SelectionVector;
pub use sharded::{word_aligned_ranges, ShardedDataset};
pub use storage::{ColumnSegment, PackedCodes, PackedColumn, StorageEngine};
pub use value::Value;
pub use versioned::{
    compact_threshold_from_env, MutationEffect, VersionedDataset, DEFAULT_COMPACT_THRESHOLD,
    DELTA_SEGMENT_ROWS,
};
