//! Property-based tests for the query engine.

use proptest::prelude::*;
use so_data::BitVec;
use so_query::{
    count, AndPredicate, BitExtractPredicate, FnPredicate, NotPredicate, OrPredicate, Predicate,
    PrefixPredicate, SubsetQuery,
};

fn arb_bits(len: usize) -> impl Strategy<Value = BitVec> {
    proptest::collection::vec(any::<bool>(), len).prop_map(|b| BitVec::from_bools(&b))
}

proptest! {
    /// Subset-sum answers match a naive per-index loop.
    #[test]
    fn subset_sum_matches_naive(
        x in proptest::collection::vec(any::<bool>(), 1..200),
        picks in proptest::collection::vec(any::<bool>(), 1..200),
    ) {
        let n = x.len().min(picks.len());
        let xv = BitVec::from_bools(&x[..n]);
        let indices: Vec<usize> = (0..n).filter(|&i| picks[i]).collect();
        let q = SubsetQuery::from_indices(n, &indices);
        let naive: u64 = indices.iter().filter(|&&i| x[i]).count() as u64;
        prop_assert_eq!(q.true_answer(&xv), naive);
        prop_assert_eq!(q.size(), indices.len());
    }

    /// De Morgan: NOT(a AND b) == (NOT a) OR (NOT b) pointwise.
    #[test]
    fn de_morgan(r in arb_bits(16), i in 0usize..16, j in 0usize..16) {
        let a = BitExtractPredicate { bit: i, value: true };
        let b = BitExtractPredicate { bit: j, value: false };
        let lhs = NotPredicate { inner: AndPredicate { left: a, right: b } };
        let rhs = OrPredicate {
            left: NotPredicate { inner: a },
            right: NotPredicate { inner: b },
        };
        prop_assert_eq!(lhs.eval(&r), rhs.eval(&r));
    }

    /// Prefix predicates nest: if the longer prefix matches, so does every
    /// shorter one.
    #[test]
    fn prefix_nesting(r in arb_bits(32), bits in proptest::collection::vec(any::<bool>(), 1..16)) {
        let long = PrefixPredicate { prefix: bits.clone() };
        for cut in 0..bits.len() {
            let short = PrefixPredicate { prefix: bits[..cut].to_vec() };
            if long.eval(&r) {
                prop_assert!(short.eval(&r), "short prefix must match too");
            }
        }
        // Weight is 2^-len.
        prop_assert!((long.uniform_weight() - 0.5f64.powi(bits.len() as i32)).abs() < 1e-15);
    }

    /// count() over complement predicates sums to the record count.
    #[test]
    fn count_partitions(records in proptest::collection::vec(arb_bits(8), 0..40), bit in 0usize..8) {
        let yes = BitExtractPredicate { bit, value: true };
        let no = BitExtractPredicate { bit, value: false };
        prop_assert_eq!(count(&records, &yes) + count(&records, &no), records.len());
    }

    /// FnPredicate is a transparent wrapper.
    #[test]
    fn fn_predicate_transparent(r in arb_bits(8), bit in 0usize..8) {
        let direct = BitExtractPredicate { bit, value: true };
        let wrapped = FnPredicate::<BitVec>::new("wrap", move |x| x.get(bit));
        prop_assert_eq!(direct.eval(&r), wrapped.eval(&r));
    }
}

// ---------------------------------------------------------------------------
// Bitmap scan kernels vs the row-at-a-time oracle.
// ---------------------------------------------------------------------------

use so_data::{
    AttributeDef, AttributeRole, DataType, Dataset, DatasetBuilder, Schema, SelectionVector, Value,
};
use so_query::{
    count_dataset, count_dataset_scalar, scan_dataset, select_dataset, select_dataset_scalar,
    AllRowPredicate, IntRangePredicate, RowPredicate, ValueEqualsPredicate,
};

/// Arbitrary two-column dataset (Int with missings, Str with missings).
/// Row counts range over 1..200, so tail words with `n % 64 != 0` are the
/// common case and exact multiples of 64 are exercised too. Built with
/// [`DatasetBuilder::finish`], so it runs on whatever storage engine the
/// environment selects (packed by default).
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    arb_rows().prop_map(|rows| build_dataset(rows, None))
}

type RowRecipe = (Option<i64>, Option<usize>);

fn arb_rows() -> impl Strategy<Value = Vec<RowRecipe>> {
    // (present?, value) pairs stand in for Option strategies.
    proptest::collection::vec(
        (
            (any::<bool>(), -50i64..50).prop_map(|(p, v)| p.then_some(v)),
            (any::<bool>(), 0usize..4).prop_map(|(p, v)| p.then_some(v)),
        ),
        1..200,
    )
}

fn build_dataset(rows: Vec<RowRecipe>, engine: Option<so_data::StorageEngine>) -> Dataset {
    let schema = Schema::new(vec![
        AttributeDef::new("a", DataType::Int, AttributeRole::QuasiIdentifier),
        AttributeDef::new("s", DataType::Str, AttributeRole::Sensitive),
    ]);
    let mut b = DatasetBuilder::new(schema);
    let syms: Vec<_> = (0..4).map(|i| b.intern(&format!("v{i}"))).collect();
    for (a, s) in rows {
        b.push_row(vec![
            a.map_or(Value::Missing, Value::Int),
            s.map_or(Value::Missing, |i| Value::Str(syms[i])),
        ]);
    }
    match engine {
        Some(e) => b.finish_with_engine(e),
        None => b.finish(),
    }
}

/// The oracle bitmap: evaluate `eval_row` on every row.
fn oracle_scan(ds: &Dataset, p: &dyn RowPredicate) -> SelectionVector {
    SelectionVector::from_fn(ds.n_rows(), |r| p.eval_row(ds, r))
}

proptest! {
    /// The typed int-range kernel agrees with the row-at-a-time oracle on
    /// count, selection, and every individual bit.
    #[test]
    fn int_range_scan_matches_oracle(
        ds in arb_dataset(),
        lo in -60i64..60,
        span in 0i64..60,
    ) {
        let p = IntRangePredicate { col: 0, lo, hi: lo + span };
        let bitmap = scan_dataset(&ds, &p);
        prop_assert_eq!(&bitmap, &oracle_scan(&ds, &p));
        prop_assert_eq!(count_dataset(&ds, &p), count_dataset_scalar(&ds, &p));
        prop_assert_eq!(select_dataset(&ds, &p), select_dataset_scalar(&ds, &p));
    }

    /// The value-equality kernel (Str and Missing targets) agrees with the
    /// oracle. Matching `Value::Missing` selects exactly the masked rows.
    #[test]
    fn value_equals_scan_matches_oracle(ds in arb_dataset(), pick in 0usize..5) {
        let value = if pick == 4 {
            Value::Missing
        } else {
            // A symbol actually present in the dataset's interner.
            match (0..ds.n_rows()).map(|r| ds.get(r, 1)).find(|v| *v != Value::Missing) {
                Some(v) => v,
                None => Value::Missing,
            }
        };
        let p = ValueEqualsPredicate { col: 1, value };
        prop_assert_eq!(&scan_dataset(&ds, &p), &oracle_scan(&ds, &p));
        prop_assert_eq!(count_dataset(&ds, &p), count_dataset_scalar(&ds, &p));
    }

    /// Word-level AND/OR/NOT on scan bitmaps equals pointwise boolean
    /// algebra on the oracle, including the tail word.
    #[test]
    fn bitmap_algebra_matches_pointwise(
        ds in arb_dataset(),
        lo in -60i64..60,
        span in 0i64..60,
    ) {
        let a = IntRangePredicate { col: 0, lo, hi: lo + span };
        let b = IntRangePredicate { col: 0, lo: lo + span / 2, hi: lo + span + 10 };
        let (va, vb) = (scan_dataset(&ds, &a), scan_dataset(&ds, &b));
        let and = va.and(&vb);
        let or = va.or(&vb);
        let not_a = va.not();
        for r in 0..ds.n_rows() {
            let (ea, eb) = (a.eval_row(&ds, r), b.eval_row(&ds, r));
            prop_assert_eq!(and.get(r), ea && eb, "AND row {}", r);
            prop_assert_eq!(or.get(r), ea || eb, "OR row {}", r);
            prop_assert_eq!(not_a.get(r), !ea, "NOT row {}", r);
        }
        // Tail invariant: complements never leak bits past n_rows.
        prop_assert_eq!(not_a.count(), ds.n_rows() - va.count());
    }

    /// The conjunction scan (word-level AND with early exit) equals the
    /// row-at-a-time conjunction.
    #[test]
    fn all_predicate_scan_matches_oracle(
        ds in arb_dataset(),
        lo in -60i64..60,
        span in 0i64..60,
    ) {
        let p = AllRowPredicate {
            parts: vec![
                Box::new(IntRangePredicate { col: 0, lo, hi: lo + span }),
                Box::new(IntRangePredicate { col: 0, lo: lo - 5, hi: lo + span / 2 }),
            ],
        };
        prop_assert_eq!(&scan_dataset(&ds, &p), &oracle_scan(&ds, &p));
        prop_assert_eq!(count_dataset(&ds, &p), count_dataset_scalar(&ds, &p));
        prop_assert_eq!(select_dataset(&ds, &p), select_dataset_scalar(&ds, &p));
    }
}

// ---------------------------------------------------------------------------
// Whole-workload planning vs the scalar oracle.
// ---------------------------------------------------------------------------

use std::sync::Arc;

use so_plan::workload::{Noise, WorkloadSpec};
use so_query::{CountingEngine, FnRowPredicate, NotRowPredicate, WorkloadAnswer};

/// A generated workload entry: a predicate over the two-column dataset of
/// [`arb_dataset`], possibly negated, possibly a duplicate of an earlier
/// entry, possibly an opaque closure.
#[derive(Debug, Clone)]
enum Entry {
    Range { lo: i64, span: i64, negate: bool },
    DuplicateOf(usize),
    Opaque { modulus: i64 },
}

fn arb_entries() -> impl Strategy<Value = Vec<Entry>> {
    proptest::collection::vec(
        prop_oneof![
            4 => (-60i64..60, 0i64..60, any::<bool>())
                .prop_map(|(lo, span, negate)| Entry::Range { lo, span, negate }),
            1 => (0usize..64).prop_map(Entry::DuplicateOf),
            1 => (1i64..5).prop_map(|modulus| Entry::Opaque { modulus }),
        ],
        1..24,
    )
}

fn entry_predicate(e: &Entry, entries: &[Entry]) -> Box<dyn RowPredicate> {
    match e {
        Entry::Range { lo, span, negate } => {
            let inner = IntRangePredicate {
                col: 0,
                lo: *lo,
                hi: lo + span,
            };
            if *negate {
                Box::new(NotRowPredicate {
                    inner: Box::new(inner),
                })
            } else {
                Box::new(inner)
            }
        }
        // Duplicates resolve to another range entry so structurally equal
        // predicates genuinely repeat in the workload (opaque closures are
        // identity-keyed, so duplicating one would not be structural).
        Entry::DuplicateOf(i) => {
            let target = &entries[i % entries.len()];
            match target {
                Entry::Range { .. } => entry_predicate(target, entries),
                _ => Box::new(IntRangePredicate {
                    col: 0,
                    lo: 0,
                    hi: 10,
                }),
            }
        }
        Entry::Opaque { modulus } => {
            let m = *modulus;
            Box::new(FnRowPredicate::new(
                "mod-test",
                move |ds, r| matches!(ds.get(r, 0), Value::Int(v) if v.rem_euclid(m) == 0),
            ))
        }
    }
}

proptest! {
    /// `execute_workload` answers every query exactly as the row-at-a-time
    /// scalar oracle does — across duplicate and negated entries, opaque
    /// closure predicates, and row counts with `n % 64 != 0` tails.
    #[test]
    fn execute_workload_matches_scalar_oracle(
        ds in arb_dataset(),
        entries in arb_entries(),
    ) {
        let preds: Vec<Box<dyn RowPredicate>> = entries
            .iter()
            .map(|e| entry_predicate(e, &entries))
            .collect();
        let mut spec = WorkloadSpec::new(ds.n_rows());
        for (e, p) in entries.iter().zip(&preds) {
            match e {
                // Opaque closures must go in by Arc so the planner can
                // execute them; structural predicates take the lift path.
                Entry::Opaque { modulus } => {
                    let m = *modulus;
                    spec.push_predicate_arc(
                        Arc::new(FnRowPredicate::new("mod-test", move |ds, r| {
                            matches!(ds.get(r, 0), Value::Int(v) if v.rem_euclid(m) == 0)
                        })),
                        Noise::Exact,
                    );
                }
                _ => {
                    spec.push_predicate(p.as_ref(), Noise::Exact);
                }
            }
        }
        let mut engine = CountingEngine::new(&ds, None);
        let out = engine.execute_workload(&spec);
        prop_assert_eq!(out.answers.len(), preds.len());
        for (i, (p, answer)) in preds.iter().zip(&out.answers).enumerate() {
            let oracle = (0..ds.n_rows()).filter(|&r| p.eval_row(&ds, r)).count();
            prop_assert_eq!(
                answer,
                &WorkloadAnswer::Count(oracle),
                "query {} ({}) diverged from the scalar oracle",
                i,
                p.describe()
            );
        }
        // Every Pred query got a target in the engine pool, and duplicates
        // never inflate the distinct-target count.
        prop_assert!(out.targets.iter().all(Option::is_some));
        prop_assert!(out.stats.distinct_targets <= preds.len());
    }

    /// Engine answers are invariant to the worker thread count: the same
    /// workload (typed atoms, negations, duplicates, and opaque
    /// `FnRowPredicate` closures) executed by a single-threaded engine and
    /// a multi-threaded one produces identical answers, targets, and
    /// execution stats — on row counts above and below the thread count and
    /// off word boundaries.
    #[test]
    fn engine_answers_are_thread_count_invariant(
        ds in arb_dataset(),
        entries in arb_entries(),
        threads in 2usize..9,
    ) {
        let preds: Vec<Box<dyn RowPredicate>> = entries
            .iter()
            .map(|e| entry_predicate(e, &entries))
            .collect();
        let mut spec = WorkloadSpec::new(ds.n_rows());
        for (e, p) in entries.iter().zip(&preds) {
            match e {
                Entry::Opaque { modulus } => {
                    let m = *modulus;
                    spec.push_predicate_arc(
                        Arc::new(FnRowPredicate::new("mod-test", move |ds, r| {
                            matches!(ds.get(r, 0), Value::Int(v) if v.rem_euclid(m) == 0)
                        })),
                        Noise::Exact,
                    );
                }
                _ => {
                    spec.push_predicate(p.as_ref(), Noise::Exact);
                }
            }
        }
        let mut serial = CountingEngine::new(&ds, None);
        serial.set_threads(1);
        let a = serial.execute_workload(&spec);
        let mut parallel = CountingEngine::new(&ds, None);
        parallel.set_threads(threads);
        prop_assert_eq!(parallel.threads(), threads);
        let b = parallel.execute_workload(&spec);
        prop_assert_eq!(&a.answers, &b.answers, "threads={}", threads);
        prop_assert_eq!(&a.targets, &b.targets, "threads={}", threads);
        prop_assert_eq!(a.stats, b.stats, "threads={}", threads);
        // The single-query path shards too: same count, same cache reuse.
        let probe = IntRangePredicate { col: 0, lo: -10, hi: 10 };
        prop_assert_eq!(serial.count(&probe), parallel.count(&probe));
    }

    /// Engine answers are invariant to the storage engine: the same rows
    /// served by a packed-layout engine and an uncompressed-layout engine
    /// produce identical answers, targets, and execution stats — the packed
    /// fast path must be unobservable from the query interface.
    #[test]
    fn engine_answers_are_storage_engine_invariant(
        rows in arb_rows(),
        entries in arb_entries(),
        threads in 1usize..5,
    ) {
        use so_data::StorageEngine;
        let oracle_ds = build_dataset(rows.clone(), Some(StorageEngine::Uncompressed));
        let packed_ds = build_dataset(rows, Some(StorageEngine::Packed));
        let preds: Vec<Box<dyn RowPredicate>> = entries
            .iter()
            .map(|e| entry_predicate(e, &entries))
            .collect();
        let build_spec = |ds: &Dataset| {
            let mut spec = WorkloadSpec::new(ds.n_rows());
            for (e, p) in entries.iter().zip(&preds) {
                match e {
                    Entry::Opaque { modulus } => {
                        let m = *modulus;
                        spec.push_predicate_arc(
                            Arc::new(FnRowPredicate::new("mod-test", move |ds, r| {
                                matches!(ds.get(r, 0), Value::Int(v) if v.rem_euclid(m) == 0)
                            })),
                            Noise::Exact,
                        );
                    }
                    _ => {
                        spec.push_predicate(p.as_ref(), Noise::Exact);
                    }
                }
            }
            spec
        };
        let mut oracle_engine = CountingEngine::new(&oracle_ds, None);
        oracle_engine.set_threads(1);
        let a = oracle_engine.execute_workload(&build_spec(&oracle_ds));
        let mut packed_engine = CountingEngine::new(&packed_ds, None);
        packed_engine.set_threads(threads);
        let b = packed_engine.execute_workload(&build_spec(&packed_ds));
        prop_assert_eq!(&a.answers, &b.answers, "threads={}", threads);
        prop_assert_eq!(&a.targets, &b.targets, "threads={}", threads);
        prop_assert_eq!(a.stats, b.stats, "threads={}", threads);
        // Single-query scans agree too, cached and uncached.
        let probe = IntRangePredicate { col: 0, lo: -10, hi: 10 };
        prop_assert_eq!(oracle_engine.count(&probe), packed_engine.count(&probe));
        prop_assert_eq!(oracle_engine.count(&probe), packed_engine.count(&probe));
    }
}
