//! Property-based tests for the query engine.

use proptest::prelude::*;
use so_data::BitVec;
use so_query::{
    count, AndPredicate, BitExtractPredicate, FnPredicate, NotPredicate, OrPredicate,
    Predicate, PrefixPredicate, SubsetQuery,
};

fn arb_bits(len: usize) -> impl Strategy<Value = BitVec> {
    proptest::collection::vec(any::<bool>(), len).prop_map(|b| BitVec::from_bools(&b))
}

proptest! {
    /// Subset-sum answers match a naive per-index loop.
    #[test]
    fn subset_sum_matches_naive(
        x in proptest::collection::vec(any::<bool>(), 1..200),
        picks in proptest::collection::vec(any::<bool>(), 1..200),
    ) {
        let n = x.len().min(picks.len());
        let xv = BitVec::from_bools(&x[..n]);
        let indices: Vec<usize> = (0..n).filter(|&i| picks[i]).collect();
        let q = SubsetQuery::from_indices(n, &indices);
        let naive: u64 = indices.iter().filter(|&&i| x[i]).count() as u64;
        prop_assert_eq!(q.true_answer(&xv), naive);
        prop_assert_eq!(q.size(), indices.len());
    }

    /// De Morgan: NOT(a AND b) == (NOT a) OR (NOT b) pointwise.
    #[test]
    fn de_morgan(r in arb_bits(16), i in 0usize..16, j in 0usize..16) {
        let a = BitExtractPredicate { bit: i, value: true };
        let b = BitExtractPredicate { bit: j, value: false };
        let lhs = NotPredicate { inner: AndPredicate { left: a, right: b } };
        let rhs = OrPredicate {
            left: NotPredicate { inner: a },
            right: NotPredicate { inner: b },
        };
        prop_assert_eq!(lhs.eval(&r), rhs.eval(&r));
    }

    /// Prefix predicates nest: if the longer prefix matches, so does every
    /// shorter one.
    #[test]
    fn prefix_nesting(r in arb_bits(32), bits in proptest::collection::vec(any::<bool>(), 1..16)) {
        let long = PrefixPredicate { prefix: bits.clone() };
        for cut in 0..bits.len() {
            let short = PrefixPredicate { prefix: bits[..cut].to_vec() };
            if long.eval(&r) {
                prop_assert!(short.eval(&r), "short prefix must match too");
            }
        }
        // Weight is 2^-len.
        prop_assert!((long.uniform_weight() - 0.5f64.powi(bits.len() as i32)).abs() < 1e-15);
    }

    /// count() over complement predicates sums to the record count.
    #[test]
    fn count_partitions(records in proptest::collection::vec(arb_bits(8), 0..40), bit in 0usize..8) {
        let yes = BitExtractPredicate { bit, value: true };
        let no = BitExtractPredicate { bit, value: false };
        prop_assert_eq!(count(&records, &yes) + count(&records, &no), records.len());
    }

    /// FnPredicate is a transparent wrapper.
    #[test]
    fn fn_predicate_transparent(r in arb_bits(8), bit in 0usize..8) {
        let direct = BitExtractPredicate { bit, value: true };
        let wrapped = FnPredicate::<BitVec>::new("wrap", move |x| x.get(bit));
        prop_assert_eq!(direct.eval(&r), wrapped.eval(&r));
    }
}
