//! Property tests for mutation-transcript replay: any generated
//! interleaving of inserts, deletes, and workloads must (a) answer exactly
//! like a from-scratch rebuild of the final logical relation, and (b)
//! produce byte-identical logs and answers across thread counts, storage
//! engines, and schedule policies — and answer-identical across compaction
//! thresholds.

use std::sync::Arc;

use proptest::prelude::*;
use so_data::{
    AttributeDef, AttributeRole, DataType, Schema, StorageEngine, Value, DELTA_SEGMENT_ROWS,
};
use so_plan::parallel::SchedulePolicy;
use so_plan::shape::PredShape;
use so_plan::workload::Noise;
use so_query::{MutationOp, MutationTranscript, ReplayConfig};

fn schema() -> Arc<Schema> {
    Schema::new(vec![
        AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
        AttributeDef::new("score", DataType::Int, AttributeRole::Sensitive),
    ])
}

/// A cell: mostly small ints, sometimes Missing (exercises the
/// touched-column shortcuts).
fn arb_cell() -> impl Strategy<Value = Value> {
    prop_oneof![
        4 => (0i64..50).prop_map(Value::Int),
        1 => Just(Value::Missing),
    ]
}

fn arb_row() -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(arb_cell(), 2)
}

fn arb_atom() -> impl Strategy<Value = PredShape> {
    prop_oneof![
        (0usize..2, 0i64..50, 0i64..50).prop_map(|(col, a, b)| PredShape::IntRange {
            col,
            lo: a.min(b),
            hi: a.max(b),
        }),
        (0usize..2, arb_cell()).prop_map(|(col, value)| PredShape::ValueEquals { col, value }),
    ]
}

fn arb_shape() -> impl Strategy<Value = PredShape> {
    // Depth-1 boolean structure over the atoms is enough to exercise
    // shared-node caching without exploding the plan.
    prop_oneof![
        3 => arb_atom(),
        1 => proptest::collection::vec(arb_atom(), 2..4).prop_map(PredShape::And),
        1 => arb_atom().prop_map(|a| PredShape::Not(Box::new(a))),
    ]
}

/// Ops carry *relative* delete positions (fractions of the current live
/// count) so the generator never has to know the live count in advance;
/// they are resolved into absolute live indices while assembling the
/// transcript.
#[derive(Debug, Clone)]
enum RelOp {
    Insert(Vec<Vec<Value>>),
    /// Delete up to 3 rows at positions `num/den` of the live count.
    Delete(Vec<(usize, usize)>),
    Workload(Vec<PredShape>),
}

fn arb_rel_op() -> impl Strategy<Value = RelOp> {
    prop_oneof![
        proptest::collection::vec(arb_row(), 1..30).prop_map(RelOp::Insert),
        proptest::collection::vec((0usize..100, Just(100usize)), 1..4).prop_map(RelOp::Delete),
        proptest::collection::vec(arb_shape(), 1..4).prop_map(RelOp::Workload),
    ]
}

fn assemble(initial: Vec<Vec<Value>>, rel_ops: Vec<RelOp>) -> MutationTranscript {
    let mut live = initial.len();
    let mut ops = Vec::with_capacity(rel_ops.len());
    for op in rel_ops {
        match op {
            RelOp::Insert(rows) => {
                live += rows.len();
                ops.push(MutationOp::Insert { rows });
            }
            RelOp::Delete(fracs) => {
                if live == 0 {
                    continue;
                }
                let mut indices: Vec<usize> =
                    fracs.iter().map(|&(num, den)| num * live / den).collect();
                indices.sort_unstable();
                indices.dedup();
                live -= indices.len();
                ops.push(MutationOp::DeleteLive { indices });
            }
            RelOp::Workload(shapes) => ops.push(MutationOp::Workload {
                shapes,
                noise: Noise::Exact,
            }),
        }
    }
    MutationTranscript {
        schema: schema(),
        initial,
        ops,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replay equals the from-scratch oracle, byte-identically, under every
    /// thread count × storage engine × schedule policy; answers are further
    /// invariant across compaction thresholds (eager vs never).
    #[test]
    fn replay_is_deterministic_and_matches_rebuild(
        initial in proptest::collection::vec(arb_row(), 0..120),
        rel_ops in proptest::collection::vec(arb_rel_op(), 1..8),
    ) {
        let t = assemble(initial, rel_ops);
        let reference = t.replay(&ReplayConfig::default());
        prop_assert_eq!(
            &reference.answers,
            &t.oracle_answers(StorageEngine::Packed),
            "incremental replay diverged from the from-scratch rebuild"
        );
        prop_assert_eq!(reference.n_live, t.final_live_rows());
        for &engine in &[StorageEngine::Packed, StorageEngine::Uncompressed] {
            for &policy in &[SchedulePolicy::Static, SchedulePolicy::Morsel] {
                for threads in [1usize, 2, 8] {
                    let out = t.replay(&ReplayConfig {
                        threads,
                        policy,
                        engine,
                        compact_threshold: so_data::DEFAULT_COMPACT_THRESHOLD,
                    });
                    prop_assert_eq!(
                        &out,
                        &reference,
                        "diverged at {} threads / {:?} / {:?}",
                        threads,
                        policy,
                        engine
                    );
                }
            }
        }
        let eager = t.replay(&ReplayConfig { compact_threshold: 1, ..ReplayConfig::default() });
        let lazy = t.replay(&ReplayConfig {
            compact_threshold: 1_000_000,
            ..ReplayConfig::default()
        });
        prop_assert_eq!(&eager.answers, &reference.answers);
        prop_assert_eq!(&lazy.answers, &reference.answers);
        prop_assert_eq!(eager.version, lazy.version);
        prop_assert_eq!(eager.n_live, lazy.n_live);
    }

    /// Inserts large enough to roll delta segments keep the same contract.
    #[test]
    fn segment_rollover_stays_consistent(
        extra in 1usize..3,
        shapes in proptest::collection::vec(arb_shape(), 1..3),
    ) {
        let initial: Vec<Vec<Value>> = (0..64i64)
            .map(|i| vec![Value::Int(i % 50), Value::Int(i % 7)])
            .collect();
        let big: Vec<Vec<Value>> = (0..DELTA_SEGMENT_ROWS as i64 + 5)
            .map(|i| vec![Value::Int(i % 50), Value::Missing])
            .collect();
        let mut ops = vec![
            MutationOp::Workload { shapes: shapes.clone(), noise: Noise::Exact },
            MutationOp::Insert { rows: big },
        ];
        for _ in 0..extra {
            ops.push(MutationOp::Insert {
                rows: vec![vec![Value::Int(1), Value::Int(1)]],
            });
            ops.push(MutationOp::Workload { shapes: shapes.clone(), noise: Noise::Exact });
        }
        ops.push(MutationOp::DeleteLive { indices: vec![0, 64, 70] });
        ops.push(MutationOp::Workload { shapes, noise: Noise::Exact });
        let t = MutationTranscript { schema: schema(), initial, ops };
        let reference = t.replay(&ReplayConfig::default());
        prop_assert_eq!(
            &reference.answers,
            &t.oracle_answers(StorageEngine::Packed)
        );
        for threads in [2usize, 8] {
            let out = t.replay(&ReplayConfig {
                threads,
                policy: SchedulePolicy::Morsel,
                engine: StorageEngine::Uncompressed,
                compact_threshold: 2,
            });
            prop_assert_eq!(&out.answers, &reference.answers);
        }
    }
}
