//! Incremental counting engine over a versioned mutable dataset.
//!
//! [`CountingEngine`](crate::engine::CountingEngine) serves an *immutable*
//! [`Dataset`](so_data::Dataset): its node cache never needs invalidation.
//! This module lifts the same compiled-plan machinery over a
//! [`VersionedDataset`] — a base plus delta segments plus tombstones — and
//! makes the cache *repairable* instead of throwaway:
//!
//! * **Per-segment caches.** Each segment (base or delta) gets its own
//!   [`NodeCache`] stamped with the segment's [`Dataset::version`]. A
//!   workload answer is the sum, over segments, of the target bitmap's
//!   popcount masked by that segment's tombstones
//!   ([`SelectionVector::count_and_not`]).
//! * **Delta-scan repair.** Inserts bump only the open tail segment's
//!   version, so repair re-executes the plan over that one small segment;
//!   frozen deltas and the base answer from their warm caches. Deletes flip
//!   tombstone bits without moving rows, so they invalidate *nothing* — the
//!   mask is applied at popcount time. Compaction bumps the dataset's
//!   `base_epoch`, which discards every per-segment cache at once.
//! * **Touched-column shortcuts.** A delta segment records which columns any
//!   of its rows ever set. An atom over an *untouched* column needs no scan:
//!   every cell is `Missing`, so `IntRange` matches nothing and
//!   `ValueEquals` matches all rows iff it tests for `Missing`. Those
//!   selections are synthesized straight into the segment cache before plan
//!   execution.
//!
//! Per-segment plan execution goes through the same
//! [`ParallelExecutor`] as everything else, so answers stay bit-identical
//! across `SO_THREADS` / `SO_STORAGE` / `SO_SCHEDULE` — the property the
//! [`MutationTranscript`](crate::transcript::MutationTranscript) proptests
//! and the E19 CI job enforce.
//!
//! [`Dataset::version`]: so_data::Dataset::version

use std::collections::HashMap;

use so_data::{MutationEffect, SelectionVector, Value, VersionedDataset};
use so_plan::ir::{Atom, ExprId, PredNode, PredPool};
use so_plan::parallel::ParallelExecutor;
use so_plan::plan::{NodeCache, PlanStats, QueryPlan};
use so_plan::workload::{QueryKind, WorkloadSpec};

use crate::audit::QueryAuditor;
use crate::engine::{WorkloadAnswer, WorkloadAnswers};

/// One segment's compiled bitmaps, stamped with the segment dataset version
/// they were computed at (`None` = never built).
#[derive(Debug, Default)]
struct SegmentCache {
    version: Option<u64>,
    nodes: NodeCache,
}

/// Deterministic tallies of what the incremental engine did. Every field is
/// a pure function of the mutation/workload sequence — invariant across
/// thread counts, storage engines, and schedules — so transcripts may print
/// them verbatim.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Workloads executed.
    pub workloads: usize,
    /// Segment caches (re)built because the segment version moved —
    /// first-time builds included.
    pub segment_repairs: usize,
    /// Segments served from a warm cache (version unchanged).
    pub segment_hits: usize,
    /// Rows in segments whose cache was rebuilt — the volume eligible for
    /// delta re-scanning (a from-scratch engine would rescan every live row
    /// of every segment per workload).
    pub repaired_rows: usize,
    /// Atom selections synthesized from touched-column sets instead of
    /// scanned.
    pub shortcut_atoms: usize,
    /// Rows inserted through this engine.
    pub rows_inserted: usize,
    /// Live rows deleted through this engine.
    pub rows_deleted: usize,
    /// Compactions triggered by mutations through this engine.
    pub compactions: usize,
}

/// A counting-query server over a [`VersionedDataset`], with auditing,
/// per-segment cache repair, and touched-column scan shortcuts.
///
/// Unlike [`CountingEngine`](crate::engine::CountingEngine), this engine
/// *owns* its dataset: mutations ([`IncrementalEngine::insert_rows`],
/// [`IncrementalEngine::delete_live`]) and workloads interleave through one
/// handle, and every mutation leaves a version-bump annotation in the audit
/// trail ([`QueryAuditor::note_version_bump`]).
pub struct IncrementalEngine {
    data: VersionedDataset,
    auditor: QueryAuditor,
    pool: PredPool,
    executor: ParallelExecutor,
    seg_caches: Vec<SegmentCache>,
    epoch: u64,
    plan_stats: PlanStats,
    stats: IncrementalStats,
}

impl IncrementalEngine {
    /// Serves `data` with an optional cap on the number of queries.
    pub fn new(data: VersionedDataset, max_queries: Option<usize>) -> Self {
        Self::with_auditor(data, QueryAuditor::new(max_queries))
    }

    /// Serves `data` with a pre-configured auditor.
    pub fn with_auditor(data: VersionedDataset, auditor: QueryAuditor) -> Self {
        IncrementalEngine {
            data,
            auditor,
            pool: PredPool::new(),
            executor: ParallelExecutor::from_env(),
            seg_caches: Vec::new(),
            epoch: 0,
            plan_stats: PlanStats::default(),
            stats: IncrementalStats::default(),
        }
    }

    /// Replaces the plan executor (thread count / schedule policy). Answers
    /// are bit-identical under every executor configuration; this is purely
    /// a throughput knob.
    pub fn set_executor(&mut self, executor: ParallelExecutor) {
        self.executor = executor;
    }

    /// Sets the worker thread count for per-segment plan execution.
    pub fn set_threads(&mut self, threads: usize) {
        self.executor = ParallelExecutor::with_threads(threads);
    }

    /// The underlying versioned dataset.
    pub fn dataset(&self) -> &VersionedDataset {
        &self.data
    }

    /// The query auditor (trail of queries and version bumps).
    pub fn auditor(&self) -> &QueryAuditor {
        &self.auditor
    }

    /// Mutable auditor access (for policy layers that record refusals).
    pub fn auditor_mut(&mut self) -> &mut QueryAuditor {
        &mut self.auditor
    }

    /// Deterministic repair/shortcut tallies over the engine's lifetime.
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// Cumulative plan-execution counters (scans, node evaluations, cache
    /// hits) over the engine's lifetime.
    pub fn plan_stats(&self) -> PlanStats {
        self.plan_stats
    }

    /// Consumes the engine, returning the dataset and auditor.
    pub fn into_parts(self) -> (VersionedDataset, QueryAuditor) {
        (self.data, self.auditor)
    }

    /// Inserts rows (see [`VersionedDataset::insert_rows`]; `Str` values
    /// must already be interned in the shared interner) and annotates the
    /// audit trail with the version bump.
    pub fn insert_rows(&mut self, rows: &[Vec<Value>]) -> MutationEffect {
        let eff = self.data.insert_rows(rows);
        self.note_mutation(&eff);
        eff
    }

    /// Tombstones live rows by *live index* (see
    /// [`VersionedDataset::delete_live`]) and annotates the audit trail
    /// with the version bump.
    pub fn delete_live(&mut self, live: &[usize]) -> MutationEffect {
        let eff = self.data.delete_live(live);
        self.note_mutation(&eff);
        eff
    }

    fn note_mutation(&mut self, eff: &MutationEffect) {
        if eff.rows_inserted == 0 && eff.rows_deleted == 0 {
            return;
        }
        self.stats.rows_inserted += eff.rows_inserted;
        self.stats.rows_deleted += eff.rows_deleted;
        if eff.compacted {
            self.stats.compactions += 1;
        }
        self.auditor.note_version_bump(eff.version, &eff.touched);
    }

    /// Plans and executes a whole workload against the dataset's current
    /// version, repairing stale segment caches along the way.
    ///
    /// Admission mirrors
    /// [`CountingEngine::execute_workload`](crate::engine::CountingEngine::execute_workload):
    /// per query the auditor admits or refuses in declaration order, subset
    /// queries are unanswerable, and answers come back in declaration
    /// order. Counts are over *live* rows only — tombstoned rows are masked
    /// out at popcount time, never rescanned.
    pub fn execute_workload(&mut self, spec: &WorkloadSpec) -> WorkloadAnswers {
        crate::obs::query_metrics().workloads.inc();
        self.stats.workloads += 1;
        self.refresh_segment_caches();

        let mut memo = HashMap::new();
        let n_queries = spec.len();
        let mut targets: Vec<Option<ExprId>> = Vec::with_capacity(n_queries);
        let mut plan_targets: Vec<Option<ExprId>> = Vec::with_capacity(n_queries);
        let mut answers: Vec<WorkloadAnswer> = Vec::with_capacity(n_queries);
        for q in spec.queries() {
            match &q.kind {
                QueryKind::Subset(members) => {
                    let size = members.count_ones();
                    self.auditor.refuse_with(|| {
                        format!(
                            "unanswerable: subset-sum query (|q| = {size}) \
                             against the incremental counting engine"
                        )
                    });
                    targets.push(None);
                    plan_targets.push(None);
                    answers.push(WorkloadAnswer::Unanswerable);
                }
                QueryKind::Pred(id) => {
                    let tid = self.pool.import(spec.pool(), *id, &mut memo);
                    targets.push(Some(tid));
                    if self.auditor.admit_with(|| spec.pool().render(*id)) {
                        plan_targets.push(Some(tid));
                        answers.push(WorkloadAnswer::Count(0)); // placeholder
                    } else {
                        plan_targets.push(None);
                        answers.push(WorkloadAnswer::Refused);
                    }
                }
            }
        }

        let plan = QueryPlan::compile(&self.pool, plan_targets);
        let mut stats = PlanStats::default();
        for i in 0..self.data.n_segments() {
            self.seed_shortcuts(&plan, i);
            let seg = self.data.segment(i);
            let (_, seg_stats) = self.executor.execute(
                &plan,
                &self.pool,
                seg,
                spec.evaluators(),
                &mut self.seg_caches[i].nodes,
            );
            stats.nodes_evaluated += seg_stats.nodes_evaluated;
            stats.atom_scans += seg_stats.atom_scans;
            stats.cache_hits += seg_stats.cache_hits;
        }

        for (answer, target) in answers.iter_mut().zip(&targets) {
            if !matches!(answer, WorkloadAnswer::Count(_)) {
                continue;
            }
            let tid = target.expect("placeholder answers always have a target");
            let mut total = 0usize;
            let mut available = true;
            for (i, cache) in self.seg_caches.iter().enumerate() {
                match cache.nodes.get(&tid) {
                    Some(b) => total += b.count_and_not(self.data.tombstones(i)),
                    None => {
                        available = false;
                        break;
                    }
                }
            }
            *answer = if available {
                WorkloadAnswer::Count(total)
            } else {
                WorkloadAnswer::Unanswerable
            };
        }

        stats.queries = n_queries;
        stats.unanswerable = answers
            .iter()
            .filter(|a| matches!(a, WorkloadAnswer::Unanswerable))
            .count();
        self.plan_stats.nodes_evaluated += stats.nodes_evaluated;
        self.plan_stats.atom_scans += stats.atom_scans;
        self.plan_stats.cache_hits += stats.cache_hits;
        WorkloadAnswers {
            answers,
            targets,
            stats,
        }
    }

    /// Aligns the per-segment caches with the dataset's current shape:
    /// discards everything on an epoch change (compaction), grows the cache
    /// vector for newly opened deltas, and clears any cache whose segment
    /// version moved since it was built.
    fn refresh_segment_caches(&mut self) {
        if self.epoch != self.data.base_epoch() {
            self.seg_caches.clear();
            self.epoch = self.data.base_epoch();
        }
        let n = self.data.n_segments();
        self.seg_caches.truncate(n);
        while self.seg_caches.len() < n {
            self.seg_caches.push(SegmentCache::default());
        }
        let m = crate::obs::query_metrics();
        for i in 0..n {
            let v = self.data.segment(i).version();
            let cache = &mut self.seg_caches[i];
            if cache.version == Some(v) {
                self.stats.segment_hits += 1;
                m.delta_segment_hits.inc();
            } else {
                cache.nodes.clear();
                cache.version = Some(v);
                self.stats.segment_repairs += 1;
                self.stats.repaired_rows += self.data.segment(i).n_rows();
                m.delta_repairs.inc();
            }
        }
    }

    /// Pre-seeds synthesized atom selections into a delta segment's cache:
    /// an atom over a column the segment never touched sees only `Missing`
    /// cells, so its selection is known without scanning. `IntRange` never
    /// matches `Missing`; `ValueEquals` matches it iff the tested value *is*
    /// `Missing`. Hash and bit atoms read actual cell contents and are
    /// never shortcut.
    fn seed_shortcuts(&mut self, plan: &QueryPlan, seg_idx: usize) {
        let touched = match self.data.touched_columns(seg_idx) {
            Some(t) => t,
            None => return, // base segment: every column counts as touched
        };
        let n_rows = self.data.segment(seg_idx).n_rows();
        let nodes = &mut self.seg_caches[seg_idx].nodes;
        let mut seeded = 0usize;
        for &id in plan.order() {
            if nodes.contains_key(&id) {
                continue;
            }
            let synthesized = match self.pool.node(id) {
                PredNode::Atom(Atom::IntRange { col, .. }) if !touched.contains(col) => {
                    Some(SelectionVector::none(n_rows))
                }
                PredNode::Atom(Atom::ValueEquals { col, value }) if !touched.contains(col) => {
                    Some(match value {
                        Value::Missing => SelectionVector::all(n_rows),
                        _ => SelectionVector::none(n_rows),
                    })
                }
                _ => None,
            };
            if let Some(b) = synthesized {
                nodes.insert(id, b);
                seeded += 1;
            }
        }
        if seeded > 0 {
            self.stats.shortcut_atoms += seeded;
            crate::obs::query_metrics()
                .shortcut_atoms
                .add(seeded as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{count_dataset_scalar, CountingEngine};
    use crate::predicate::RowPredicate;
    use so_data::{
        AttributeDef, AttributeRole, DataType, Dataset, DatasetBuilder, Schema, StorageEngine,
    };
    use so_plan::parallel::SchedulePolicy;
    use so_plan::shape::PredShape;
    use so_plan::workload::Noise;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::new(vec![
            AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("score", DataType::Int, AttributeRole::Sensitive),
        ])
    }

    fn base(n: usize) -> Dataset {
        let mut b = DatasetBuilder::new(schema());
        for i in 0..n {
            b.push_row(vec![
                Value::Int((i % 90) as i64),
                Value::Int((i % 25) as i64),
            ]);
        }
        b.finish_with_engine(StorageEngine::Packed)
    }

    fn workload(n_rows: usize) -> WorkloadSpec {
        let mut spec = WorkloadSpec::new(n_rows);
        spec.push_shape(
            &PredShape::IntRange {
                col: 0,
                lo: 10,
                hi: 40,
            },
            Noise::Exact,
        );
        spec.push_shape(
            &PredShape::And(vec![
                PredShape::IntRange {
                    col: 0,
                    lo: 0,
                    hi: 60,
                },
                PredShape::ValueEquals {
                    col: 1,
                    value: Value::Int(3),
                },
            ]),
            Noise::Exact,
        );
        spec.push_shape(
            &PredShape::ValueEquals {
                col: 1,
                value: Value::Missing,
            },
            Noise::Exact,
        );
        spec
    }

    /// From-scratch oracle: rebuild the final snapshot and run the same
    /// workload through the immutable engine.
    fn oracle_counts(data: &VersionedDataset, spec: &WorkloadSpec) -> Vec<WorkloadAnswer> {
        let snap = data.snapshot();
        let mut eng = CountingEngine::new(&snap, None);
        eng.execute_workload(spec).answers
    }

    #[test]
    fn answers_match_from_scratch_rebuild_after_mutations() {
        let mut eng = IncrementalEngine::new(
            VersionedDataset::with_compact_threshold(base(500), 1_000_000),
            None,
        );
        let w0 = eng.execute_workload(&workload(eng.dataset().n_live()));
        assert_eq!(w0.answers, oracle_counts(eng.dataset(), &workload(500)));

        eng.insert_rows(&[
            vec![Value::Int(20), Value::Int(3)],
            vec![Value::Int(99), Value::Missing],
        ]);
        eng.delete_live(&[0, 13, 499]);
        let spec = workload(eng.dataset().n_live());
        let w1 = eng.execute_workload(&spec);
        assert_eq!(w1.answers, oracle_counts(eng.dataset(), &spec));

        // More interleaving, including a row that is itself later deleted.
        eng.insert_rows(&[vec![Value::Int(20), Value::Int(3)]]);
        let last = eng.dataset().n_live() - 1;
        eng.delete_live(&[last]);
        let w2 = eng.execute_workload(&spec);
        assert_eq!(w2.answers, oracle_counts(eng.dataset(), &spec));
    }

    #[test]
    fn deletes_do_not_invalidate_segment_caches() {
        let mut eng = IncrementalEngine::new(
            VersionedDataset::with_compact_threshold(base(300), 1_000_000),
            None,
        );
        let spec = workload(300);
        eng.execute_workload(&spec);
        let repairs_before = eng.stats().segment_repairs;
        eng.delete_live(&[5, 6, 7]);
        let w = eng.execute_workload(&spec);
        let s = eng.stats();
        assert_eq!(
            s.segment_repairs, repairs_before,
            "a delete must not trigger any cache repair"
        );
        assert_eq!(s.segment_hits, 1, "the base cache stayed warm");
        assert_eq!(w.answers, oracle_counts(eng.dataset(), &spec));
    }

    #[test]
    fn inserts_repair_only_the_open_tail_segment() {
        let mut eng = IncrementalEngine::new(
            VersionedDataset::with_compact_threshold(base(400), 1_000_000),
            None,
        );
        let spec = workload(400);
        eng.execute_workload(&spec); // builds base cache (1 repair, 400 rows)
        eng.insert_rows(&[vec![Value::Int(20), Value::Int(3)]]);
        eng.execute_workload(&spec); // base warm, new delta built
        eng.insert_rows(&[vec![Value::Int(21), Value::Int(3)]]);
        eng.execute_workload(&spec); // base + nothing else warm; tail rebuilt
        let s = eng.stats();
        assert_eq!(s.segment_repairs, 3, "base once, tail delta twice");
        assert_eq!(
            s.repaired_rows,
            400 + 1 + 2,
            "repairs rescan only the mutated delta, not the base"
        );
        assert_eq!(s.segment_hits, 2, "base served warm in workloads 2 and 3");
    }

    #[test]
    fn compaction_discards_every_segment_cache() {
        let mut eng =
            IncrementalEngine::new(VersionedDataset::with_compact_threshold(base(100), 1), None);
        let spec = workload(100);
        eng.execute_workload(&spec);
        let eff = eng.insert_rows(&[vec![Value::Int(20), Value::Int(3)]]);
        assert!(eff.compacted, "threshold 1 compacts on every insert");
        let w = eng.execute_workload(&spec);
        let s = eng.stats();
        assert_eq!(s.compactions, 1);
        assert_eq!(
            s.segment_repairs, 2,
            "epoch change rebuilt the (new) base from scratch"
        );
        assert_eq!(w.answers, oracle_counts(eng.dataset(), &spec));
    }

    #[test]
    fn shortcut_atoms_match_real_scans() {
        // Insert rows that never touch column 0: every atom over column 0
        // must be synthesized, and the answers must equal a real rebuild
        // (which scans the Missing cells for real).
        let mut eng = IncrementalEngine::new(
            VersionedDataset::with_compact_threshold(base(200), 1_000_000),
            None,
        );
        eng.insert_rows(&[
            vec![Value::Missing, Value::Int(3)],
            vec![Value::Missing, Value::Int(9)],
        ]);
        let mut spec = WorkloadSpec::new(eng.dataset().n_live());
        // IntRange over untouched col 0 -> none; ValueEquals Missing over
        // untouched col 0 -> all; ValueEquals Int over untouched col 0 ->
        // none; atoms over touched col 1 -> scanned for real.
        spec.push_shape(
            &PredShape::IntRange {
                col: 0,
                lo: 0,
                hi: 1000,
            },
            Noise::Exact,
        );
        spec.push_shape(
            &PredShape::ValueEquals {
                col: 0,
                value: Value::Missing,
            },
            Noise::Exact,
        );
        spec.push_shape(
            &PredShape::ValueEquals {
                col: 0,
                value: Value::Int(20),
            },
            Noise::Exact,
        );
        spec.push_shape(
            &PredShape::ValueEquals {
                col: 1,
                value: Value::Int(3),
            },
            Noise::Exact,
        );
        let w = eng.execute_workload(&spec);
        assert!(
            eng.stats().shortcut_atoms >= 3,
            "column-0 atoms synthesized"
        );
        assert_eq!(w.answers, oracle_counts(eng.dataset(), &spec));
    }

    #[test]
    fn answers_are_identical_across_threads_engines_and_schedules() {
        let mut reference: Option<Vec<WorkloadAnswer>> = None;
        for &engine in &[StorageEngine::Packed, StorageEngine::Uncompressed] {
            for &policy in &[SchedulePolicy::Static, SchedulePolicy::Morsel] {
                for threads in [1usize, 2, 4, 8] {
                    let mut b = DatasetBuilder::new(schema());
                    for i in 0..500 {
                        b.push_row(vec![
                            Value::Int((i % 90) as i64),
                            Value::Int((i % 25) as i64),
                        ]);
                    }
                    let ds = b.finish_with_engine(engine);
                    let mut eng = IncrementalEngine::new(
                        VersionedDataset::with_compact_threshold(ds, 2),
                        None,
                    );
                    eng.set_executor(ParallelExecutor::with_threads_and_policy(threads, policy));
                    eng.insert_rows(&[vec![Value::Int(20), Value::Int(3)]]);
                    eng.delete_live(&[0, 250]);
                    eng.insert_rows(&[vec![Value::Missing, Value::Int(3)]]);
                    let spec = workload(eng.dataset().n_live());
                    let mut all = eng.execute_workload(&spec).answers;
                    all.extend(eng.execute_workload(&spec).answers);
                    match &reference {
                        None => reference = Some(all),
                        Some(r) => assert_eq!(
                            &all, r,
                            "answers diverged at {threads} threads / {policy:?} / {engine:?}"
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn auditor_cap_and_version_bumps_interleave() {
        let mut eng = IncrementalEngine::new(
            VersionedDataset::with_compact_threshold(base(50), 1_000_000),
            Some(4),
        );
        eng.insert_rows(&[vec![Value::Int(1), Value::Int(1)]]);
        let spec = workload(eng.dataset().n_live());
        let w1 = eng.execute_workload(&spec); // 3 queries admitted
        let w2 = eng.execute_workload(&spec); // 1 admitted, 2 refused
        assert!(w1
            .answers
            .iter()
            .all(|a| matches!(a, WorkloadAnswer::Count(_))));
        assert_eq!(
            w2.answers
                .iter()
                .filter(|a| matches!(a, WorkloadAnswer::Refused))
                .count(),
            2
        );
        let trail: Vec<_> = eng.auditor().trail().collect();
        assert!(trail[0].description.starts_with("[version] v1"));
        assert_eq!(eng.auditor().queries_answered(), 4);
        assert_eq!(eng.auditor().queries_refused(), 2);
        // 1 version bump + 6 query attempts.
        assert_eq!(eng.auditor().queries_seen(), 7);
    }

    #[test]
    fn unanswerable_opaque_predicates_stay_unanswerable() {
        #[derive(Debug)]
        struct Odd;
        impl RowPredicate for Odd {
            fn eval_row(&self, ds: &Dataset, row: usize) -> bool {
                ds.get(row, 1).as_int().is_some_and(|v| v % 2 == 1)
            }
            fn describe(&self) -> String {
                "odd score".into()
            }
        }
        let mut eng = IncrementalEngine::new(
            VersionedDataset::with_compact_threshold(base(64), 1_000_000),
            None,
        );
        // Opaque predicate *without* a registered evaluator: the plan can't
        // evaluate it on any segment.
        let mut spec = WorkloadSpec::new(64);
        spec.push_predicate(&Odd, Noise::Exact);
        let w = eng.execute_workload(&spec);
        assert_eq!(w.answers, vec![WorkloadAnswer::Unanswerable]);

        // With the evaluator registered, the count matches the scalar
        // oracle over the snapshot, across mutations.
        let mut spec2 = WorkloadSpec::new(64);
        spec2.push_predicate_arc(Arc::new(Odd), Noise::Exact);
        eng.insert_rows(&[vec![Value::Int(5), Value::Int(7)]]);
        eng.delete_live(&[3]);
        let w2 = eng.execute_workload(&spec2);
        let snap = eng.dataset().snapshot();
        assert_eq!(
            w2.answers,
            vec![WorkloadAnswer::Count(count_dataset_scalar(&snap, &Odd))]
        );
    }
}
