//! Concrete typed predicates `p : X → {0,1}` over records.
//!
//! The Article 29 Working Party defines singling out as "the possibility to
//! isolate some or all records which identify an individual in the dataset";
//! the paper formalizes the isolating object as a *predicate* on records
//! (Definition 2.1). The [`Predicate`] / [`RowPredicate`] traits live in
//! `so-plan` (the compilation pipeline sits below this crate); this module
//! provides the concrete typed implementations — range / value / keyed-hash
//! tests and the boolean combinators.
//!
//! Typed tabular predicates delegate their row evaluation and columnar scans
//! to [`so_plan::kernels`], the single implementation of each atom's
//! semantics — the same kernels the whole-workload planner executes — so a
//! predicate counted one query at a time and the same predicate compiled
//! inside a [`so_plan::QueryPlan`] can never disagree.

pub use so_plan::predicate::{canonical_bytes, Predicate, RowPredicate};

use so_data::rng::keyed_hash;
use so_data::{BitVec, Dataset, SelectionVector, Value};
use so_plan::ir::Atom;
use so_plan::kernels;
use so_plan::shape::{next_opaque_id, PredShape};

/// Boxed predicate closure.
type EvalFn<R> = Box<dyn Fn(&R) -> bool + Send + Sync>;

/// Closure-backed predicate with a label.
///
/// The label is documentation only: two `FnPredicate`s may share one label
/// while computing different things, so each instance also carries a
/// process-unique identity that backs its [`Predicate::shape`]. Caches must
/// key on the shape, never on [`Predicate::describe`].
pub struct FnPredicate<R: ?Sized> {
    label: String,
    id: u64,
    f: EvalFn<R>,
}

impl<R: ?Sized> FnPredicate<R> {
    /// Wraps a closure.
    pub fn new(label: &str, f: impl Fn(&R) -> bool + Send + Sync + 'static) -> Self {
        FnPredicate {
            label: label.to_owned(),
            id: next_opaque_id(),
            f: Box::new(f),
        }
    }
}

impl<R: ?Sized> Predicate<R> for FnPredicate<R> {
    fn eval(&self, record: &R) -> bool {
        (self.f)(record)
    }

    fn describe(&self) -> String {
        self.label.clone()
    }

    fn shape(&self) -> PredShape {
        PredShape::Opaque { id: self.id }
    }
}

/// Conjunction `p ∧ q` — the combinator used in the k-anonymity attack
/// (Theorem 2.10), where an equivalence-class predicate is refined by a
/// within-class isolating predicate.
pub struct AndPredicate<P, Q> {
    /// Left conjunct.
    pub left: P,
    /// Right conjunct.
    pub right: Q,
}

impl<R: ?Sized, P: Predicate<R>, Q: Predicate<R>> Predicate<R> for AndPredicate<P, Q> {
    fn eval(&self, record: &R) -> bool {
        self.left.eval(record) && self.right.eval(record)
    }

    fn describe(&self) -> String {
        format!("({}) AND ({})", self.left.describe(), self.right.describe())
    }

    fn shape(&self) -> PredShape {
        PredShape::And(vec![self.left.shape(), self.right.shape()])
    }
}

/// Disjunction `p ∨ q`.
pub struct OrPredicate<P, Q> {
    /// Left disjunct.
    pub left: P,
    /// Right disjunct.
    pub right: Q,
}

impl<R: ?Sized, P: Predicate<R>, Q: Predicate<R>> Predicate<R> for OrPredicate<P, Q> {
    fn eval(&self, record: &R) -> bool {
        self.left.eval(record) || self.right.eval(record)
    }

    fn describe(&self) -> String {
        format!("({}) OR ({})", self.left.describe(), self.right.describe())
    }

    fn shape(&self) -> PredShape {
        PredShape::Or(vec![self.left.shape(), self.right.shape()])
    }
}

/// Negation `¬p`.
pub struct NotPredicate<P> {
    /// Negated predicate.
    pub inner: P,
}

impl<R: ?Sized, P: Predicate<R>> Predicate<R> for NotPredicate<P> {
    fn eval(&self, record: &R) -> bool {
        !self.inner.eval(record)
    }

    fn describe(&self) -> String {
        format!("NOT ({})", self.inner.describe())
    }

    fn shape(&self) -> PredShape {
        PredShape::Not(Box::new(self.inner.shape()))
    }
}

/// Extracts a single bit of a bit-string record: `p(x) = x[bit] == value`.
#[derive(Debug, Clone, Copy)]
pub struct BitExtractPredicate {
    /// Bit position.
    pub bit: usize,
    /// Required value.
    pub value: bool,
}

impl Predicate<BitVec> for BitExtractPredicate {
    fn eval(&self, record: &BitVec) -> bool {
        kernels::eval_atom_bits(
            &Atom::BitExtract {
                bit: self.bit,
                value: self.value,
            },
            record,
        )
        .expect("bit atoms have bit-string semantics")
    }

    fn describe(&self) -> String {
        format!("bit[{}] == {}", self.bit, u8::from(self.value))
    }

    fn shape(&self) -> PredShape {
        PredShape::BitExtract {
            bit: self.bit,
            value: self.value,
        }
    }
}

/// Matches bit-string records beginning with a fixed prefix. The weight of a
/// `k`-bit prefix under the uniform distribution is exactly `2^-k` —
/// negligible for `k = ω(log n)` — which is why prefix predicates drive the
/// composition attack of Theorem 2.8.
#[derive(Debug, Clone)]
pub struct PrefixPredicate {
    /// Required leading bits.
    pub prefix: Vec<bool>,
}

impl PrefixPredicate {
    /// Empty prefix (matches everything).
    pub fn empty() -> Self {
        PrefixPredicate { prefix: Vec::new() }
    }

    /// Returns a copy extended by one bit.
    pub fn extended(&self, bit: bool) -> Self {
        let mut prefix = self.prefix.clone();
        prefix.push(bit);
        PrefixPredicate { prefix }
    }

    /// Prefix length in bits.
    pub fn len(&self) -> usize {
        self.prefix.len()
    }

    /// True iff the prefix is empty.
    pub fn is_empty(&self) -> bool {
        self.prefix.is_empty()
    }

    /// Exact weight under the uniform distribution over `{0,1}^d`, `d ≥ len`.
    pub fn uniform_weight(&self) -> f64 {
        0.5f64.powi(self.prefix.len() as i32)
    }
}

impl Predicate<BitVec> for PrefixPredicate {
    fn eval(&self, record: &BitVec) -> bool {
        if record.len() < self.prefix.len() {
            return false;
        }
        self.prefix
            .iter()
            .enumerate()
            .all(|(i, &b)| record.get(i) == b)
    }

    fn describe(&self) -> String {
        let bits: String = self
            .prefix
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        format!("prefix == {bits}")
    }

    fn shape(&self) -> PredShape {
        PredShape::Prefix {
            bits: self.prefix.clone(),
        }
    }
}

/// A Leftover-Hash-Lemma-style random predicate: matches records whose keyed
/// hash lands in a `1/modulus` slice of the output space. Under any
/// distribution with enough min-entropy its weight is ≈ `1/modulus` — this is
/// the construction the paper invokes (via \[ILL89\]) to build trivial
/// attackers with weight exactly tuned to `1/n`, and the refinement predicate
/// `p'` in the k-anonymity attack.
#[derive(Debug, Clone, Copy)]
pub struct KeyedHashPredicate {
    /// Hash key (the "seed" of the universal hash).
    pub key: u64,
    /// Size of the hash-range partition.
    pub modulus: u64,
    /// Which residue class to accept.
    pub target: u64,
}

impl KeyedHashPredicate {
    /// Predicate of designed weight `1/modulus`.
    ///
    /// # Panics
    /// Panics if `modulus == 0` or `target >= modulus`.
    pub fn new(key: u64, modulus: u64, target: u64) -> Self {
        assert!(modulus > 0, "modulus must be positive");
        assert!(target < modulus, "target must be a residue");
        KeyedHashPredicate {
            key,
            modulus,
            target,
        }
    }

    /// Designed weight `1/modulus` (exact under a uniform hash image).
    pub fn design_weight(&self) -> f64 {
        1.0 / self.modulus as f64
    }

    fn accepts_bytes(&self, bytes: &[u8]) -> bool {
        keyed_hash(self.key, bytes) % self.modulus == self.target
    }
}

impl Predicate<BitVec> for KeyedHashPredicate {
    fn eval(&self, record: &BitVec) -> bool {
        kernels::eval_atom_bits(
            &Atom::KeyedHash {
                key: self.key,
                modulus: self.modulus,
                target: self.target,
            },
            record,
        )
        .expect("keyed-hash atoms have bit-string semantics")
    }

    fn describe(&self) -> String {
        format!(
            "H_{:#x}(record) mod {} == {}",
            self.key, self.modulus, self.target
        )
    }

    fn shape(&self) -> PredShape {
        PredShape::KeyedHash {
            key: self.key,
            modulus: self.modulus,
            target: self.target,
        }
    }
}

impl Predicate<[Value]> for KeyedHashPredicate {
    fn eval(&self, record: &[Value]) -> bool {
        self.accepts_bytes(&canonical_bytes(record))
    }

    fn describe(&self) -> String {
        format!(
            "H_{:#x}(row) mod {} == {}",
            self.key, self.modulus, self.target
        )
    }

    fn shape(&self) -> PredShape {
        PredShape::KeyedHash {
            key: self.key,
            modulus: self.modulus,
            target: self.target,
        }
    }
}

/// Integer range test on one column: `lo ≤ ds[row][col] ≤ hi`.
#[derive(Debug, Clone, Copy)]
pub struct IntRangePredicate {
    /// Column index.
    pub col: usize,
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl IntRangePredicate {
    fn atom(&self) -> Atom {
        Atom::IntRange {
            col: self.col,
            lo: self.lo,
            hi: self.hi,
        }
    }
}

impl RowPredicate for IntRangePredicate {
    fn eval_row(&self, ds: &Dataset, row: usize) -> bool {
        kernels::eval_atom_row(&self.atom(), ds, row).expect("tabular atom")
    }

    fn scan(&self, ds: &Dataset) -> SelectionVector {
        kernels::scan_atom(&self.atom(), ds).expect("tabular atom")
    }

    fn describe(&self) -> String {
        format!("col{} in [{}, {}]", self.col, self.lo, self.hi)
    }

    fn shape(&self) -> PredShape {
        PredShape::IntRange {
            col: self.col,
            lo: self.lo,
            hi: self.hi,
        }
    }
}

/// Exact-value test on one column.
#[derive(Debug, Clone)]
pub struct ValueEqualsPredicate {
    /// Column index.
    pub col: usize,
    /// Required value.
    pub value: Value,
}

impl ValueEqualsPredicate {
    fn atom(&self) -> Atom {
        Atom::ValueEquals {
            col: self.col,
            value: self.value,
        }
    }
}

impl RowPredicate for ValueEqualsPredicate {
    fn eval_row(&self, ds: &Dataset, row: usize) -> bool {
        kernels::eval_atom_row(&self.atom(), ds, row).expect("tabular atom")
    }

    fn scan(&self, ds: &Dataset) -> SelectionVector {
        kernels::scan_atom(&self.atom(), ds).expect("tabular atom")
    }

    fn describe(&self) -> String {
        format!("col{} == {}", self.col, self.value)
    }

    fn shape(&self) -> PredShape {
        PredShape::ValueEquals {
            col: self.col,
            value: self.value,
        }
    }
}

/// Conjunction of row predicates.
pub struct AllRowPredicate {
    /// Conjuncts (all must hold).
    pub parts: Vec<Box<dyn RowPredicate>>,
}

impl RowPredicate for AllRowPredicate {
    fn eval_row(&self, ds: &Dataset, row: usize) -> bool {
        self.parts.iter().all(|p| p.eval_row(ds, row))
    }

    fn scan(&self, ds: &Dataset) -> SelectionVector {
        // Each conjunct scans its column once; the conjunction is a
        // word-level AND of the resulting bitmaps.
        let mut acc = SelectionVector::all(ds.n_rows());
        for p in &self.parts {
            acc.and_assign(&p.scan(ds));
            if acc.is_none() {
                break;
            }
        }
        acc
    }

    fn describe(&self) -> String {
        let parts: Vec<String> = self.parts.iter().map(|p| p.describe()).collect();
        parts.join(" AND ")
    }

    fn shape(&self) -> PredShape {
        PredShape::And(self.parts.iter().map(|p| p.shape()).collect())
    }
}

/// Disjunction of row predicates (word-level OR of the child bitmaps).
pub struct AnyRowPredicate {
    /// Disjuncts (at least one must hold; empty = matches nothing).
    pub parts: Vec<Box<dyn RowPredicate>>,
}

impl RowPredicate for AnyRowPredicate {
    fn eval_row(&self, ds: &Dataset, row: usize) -> bool {
        self.parts.iter().any(|p| p.eval_row(ds, row))
    }

    fn scan(&self, ds: &Dataset) -> SelectionVector {
        let mut acc = SelectionVector::none(ds.n_rows());
        for p in &self.parts {
            acc.or_assign(&p.scan(ds));
        }
        acc
    }

    fn describe(&self) -> String {
        let parts: Vec<String> = self.parts.iter().map(|p| p.describe()).collect();
        parts.join(" OR ")
    }

    fn shape(&self) -> PredShape {
        PredShape::Or(self.parts.iter().map(|p| p.shape()).collect())
    }
}

/// Negation of a row predicate (word-level NOT of the child bitmap) — the
/// `A ∧ ¬B` differencing shapes of Theorem 1.1 are built from this.
pub struct NotRowPredicate {
    /// The negated predicate.
    pub inner: Box<dyn RowPredicate>,
}

impl RowPredicate for NotRowPredicate {
    fn eval_row(&self, ds: &Dataset, row: usize) -> bool {
        !self.inner.eval_row(ds, row)
    }

    fn scan(&self, ds: &Dataset) -> SelectionVector {
        self.inner.scan(ds).not()
    }

    fn describe(&self) -> String {
        format!("NOT ({})", self.inner.describe())
    }

    fn shape(&self) -> PredShape {
        PredShape::Not(Box::new(self.inner.shape()))
    }
}

/// Boxed evaluation closure over a dataset row.
type RowEvalFn = Box<dyn Fn(&Dataset, usize) -> bool + Send + Sync>;

/// Closure-backed row predicate with a label and a stable process-unique
/// identity.
///
/// The identity — not the label — backs [`RowPredicate::shape`], so two
/// `FnRowPredicate`s that happen to share a label can never alias each
/// other's cached bitmaps in the [`crate::CountingEngine`].
pub struct FnRowPredicate {
    label: String,
    id: u64,
    f: RowEvalFn,
}

impl FnRowPredicate {
    /// Wraps a closure.
    pub fn new(label: &str, f: impl Fn(&Dataset, usize) -> bool + Send + Sync + 'static) -> Self {
        FnRowPredicate {
            label: label.to_owned(),
            id: next_opaque_id(),
            f: Box::new(f),
        }
    }

    /// The stable identity assigned at construction.
    pub fn opaque_id(&self) -> u64 {
        self.id
    }
}

impl RowPredicate for FnRowPredicate {
    fn eval_row(&self, ds: &Dataset, row: usize) -> bool {
        (self.f)(ds, row)
    }

    fn describe(&self) -> String {
        self.label.clone()
    }

    fn shape(&self) -> PredShape {
        PredShape::Opaque { id: self.id }
    }
}

/// Keyed-hash predicate over a subset of columns of a row — the tabular
/// counterpart of [`KeyedHashPredicate`], used to refine an equivalence-class
/// predicate to weight `1/k'` inside the class (Theorem 2.10's `p'`).
#[derive(Debug, Clone)]
pub struct RowHashPredicate {
    /// The hash test.
    pub hash: KeyedHashPredicate,
    /// Columns fed to the hash (in order).
    pub cols: Vec<usize>,
}

impl RowHashPredicate {
    fn atom(&self) -> Atom {
        Atom::RowHash {
            key: self.hash.key,
            modulus: self.hash.modulus,
            target: self.hash.target,
            cols: self.cols.clone(),
        }
    }
}

impl RowPredicate for RowHashPredicate {
    fn eval_row(&self, ds: &Dataset, row: usize) -> bool {
        kernels::eval_atom_row(&self.atom(), ds, row).expect("tabular atom")
    }

    fn scan(&self, ds: &Dataset) -> SelectionVector {
        kernels::scan_atom(&self.atom(), ds).expect("tabular atom")
    }

    fn describe(&self) -> String {
        format!(
            "{} over cols {:?}",
            <KeyedHashPredicate as Predicate<[Value]>>::describe(&self.hash),
            self.cols
        )
    }

    fn shape(&self) -> PredShape {
        PredShape::RowHash {
            key: self.hash.key,
            modulus: self.hash.modulus,
            target: self.hash.target,
            cols: self.cols.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use so_data::dist::RecordDistribution;
    use so_data::rng::seeded_rng;
    use so_data::{AttributeDef, AttributeRole, DataType, DatasetBuilder, Schema, UniformBits};

    #[test]
    fn combinators_follow_boolean_algebra() {
        let t = FnPredicate::<BitVec>::new("true", |_| true);
        let f = FnPredicate::<BitVec>::new("false", |_| false);
        let r = BitVec::zeros(4);
        assert!(AndPredicate {
            left: &t,
            right: &t
        }
        .eval(&r));
        assert!(!AndPredicate {
            left: &t,
            right: &f
        }
        .eval(&r));
        assert!(OrPredicate {
            left: &f,
            right: &t
        }
        .eval(&r));
        assert!(!OrPredicate {
            left: &f,
            right: &f
        }
        .eval(&r));
        assert!(NotPredicate { inner: &f }.eval(&r));
        assert!(!NotPredicate { inner: &t }.eval(&r));
    }

    #[test]
    fn describe_composes() {
        let a = BitExtractPredicate {
            bit: 0,
            value: true,
        };
        let b = BitExtractPredicate {
            bit: 1,
            value: false,
        };
        let c = AndPredicate { left: a, right: b };
        assert_eq!(c.describe(), "(bit[0] == 1) AND (bit[1] == 0)");
    }

    #[test]
    fn prefix_predicate_matches_prefixes() {
        let p = PrefixPredicate {
            prefix: vec![true, false],
        };
        assert!(p.eval(&BitVec::from_bools(&[true, false, true])));
        assert!(!p.eval(&BitVec::from_bools(&[true, true, true])));
        assert!(!p.eval(&BitVec::from_bools(&[true]))); // too short
        assert_eq!(p.uniform_weight(), 0.25);
        let q = p.extended(true);
        assert_eq!(q.len(), 3);
        assert!(q.eval(&BitVec::from_bools(&[true, false, true])));
    }

    #[test]
    fn keyed_hash_weight_close_to_design() {
        let d = UniformBits::new(64);
        let mut rng = seeded_rng(9);
        let p = KeyedHashPredicate::new(0xfeed, 8, 3);
        let n = 20_000;
        let hits = (0..n).filter(|_| p.eval(&d.sample(&mut rng))).count();
        let frac = hits as f64 / n as f64;
        assert!(
            (frac - p.design_weight()).abs() < 0.01,
            "weight {frac} vs design {}",
            p.design_weight()
        );
    }

    #[test]
    fn keyed_hash_partitions_cover_everything() {
        // The m residue classes partition the record space.
        let d = UniformBits::new(32);
        let mut rng = seeded_rng(10);
        let m = 5u64;
        let preds: Vec<_> = (0..m).map(|t| KeyedHashPredicate::new(1, m, t)).collect();
        for _ in 0..500 {
            let r = d.sample(&mut rng);
            let matches = preds.iter().filter(|p| p.eval(&r)).count();
            assert_eq!(matches, 1, "exactly one residue class per record");
        }
    }

    #[test]
    #[should_panic(expected = "target must be a residue")]
    fn keyed_hash_rejects_bad_target() {
        KeyedHashPredicate::new(1, 4, 4);
    }

    fn tiny_dataset() -> Dataset {
        let schema = Schema::new(vec![
            AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("sex", DataType::Str, AttributeRole::QuasiIdentifier),
        ]);
        let mut b = DatasetBuilder::new(schema);
        let f = b.intern("F");
        let m = b.intern("M");
        for (age, sex) in [(30, f), (40, m), (50, f)] {
            b.push_row(vec![Value::Int(age), Value::Str(sex)]);
        }
        b.finish()
    }

    #[test]
    fn int_range_row_predicate() {
        let ds = tiny_dataset();
        let p = IntRangePredicate {
            col: 0,
            lo: 35,
            hi: 50,
        };
        let matches: Vec<bool> = (0..3).map(|r| p.eval_row(&ds, r)).collect();
        assert_eq!(matches, vec![false, true, true]);
    }

    #[test]
    fn value_equals_row_predicate() {
        let ds = tiny_dataset();
        let f = ds.interner().get("F").unwrap();
        let p = ValueEqualsPredicate {
            col: 1,
            value: Value::Str(f),
        };
        assert!(p.eval_row(&ds, 0));
        assert!(!p.eval_row(&ds, 1));
        assert!(p.eval_row(&ds, 2));
    }

    #[test]
    fn all_row_predicate_conjunction() {
        let ds = tiny_dataset();
        let f = ds.interner().get("F").unwrap();
        let p = AllRowPredicate {
            parts: vec![
                Box::new(IntRangePredicate {
                    col: 0,
                    lo: 45,
                    hi: 60,
                }),
                Box::new(ValueEqualsPredicate {
                    col: 1,
                    value: Value::Str(f),
                }),
            ],
        };
        let matches: Vec<bool> = (0..3).map(|r| p.eval_row(&ds, r)).collect();
        assert_eq!(matches, vec![false, false, true]);
    }

    #[test]
    fn row_hash_predicate_depends_only_on_selected_cols() {
        let ds = tiny_dataset();
        // Hash over sex only: rows 0 and 2 share "F" so they agree.
        let p = RowHashPredicate {
            hash: KeyedHashPredicate::new(3, 2, 0),
            cols: vec![1],
        };
        assert_eq!(p.eval_row(&ds, 0), p.eval_row(&ds, 2));
    }

    #[test]
    fn typed_predicates_agree_with_plan_kernels() {
        // The delegation means this can't drift, but assert the contract
        // anyway: predicate scan == kernel scan == per-row kernel eval.
        let ds = tiny_dataset();
        let p = IntRangePredicate {
            col: 0,
            lo: 35,
            hi: 50,
        };
        let via_pred = p.scan(&ds);
        let via_kernel = so_plan::kernels::scan_atom(
            &Atom::IntRange {
                col: 0,
                lo: 35,
                hi: 50,
            },
            &ds,
        )
        .unwrap();
        for r in 0..ds.n_rows() {
            assert_eq!(via_pred.get(r), via_kernel.get(r));
        }
    }
}
