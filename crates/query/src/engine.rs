//! Counting engine over tabular datasets.
//!
//! A thin execution layer that evaluates [`RowPredicate`]s over a
//! [`Dataset`]: selection vectors, counts, and a [`CountingEngine`] that
//! serves counting queries while recording them in a [`QueryAuditor`]. This
//! is the "statistical tables" interface the paper's introduction describes —
//! an analyst asks how many individuals in a sub-population have a trait, and
//! the engine answers.
//!
//! Execution goes through the `so-plan` compilation pipeline: a predicate's
//! structural shape is lifted into the engine's hash-consed [`PredPool`],
//! and the resulting [`ExprId`]-keyed node cache holds one compiled bitmap
//! per distinct (sub)expression. Structurally equal predicates — however
//! they were constructed, whoever asked them — share one entry, shared
//! conjuncts are scanned once, and NOT/AND/OR evaluate as word-ops over
//! child bitmaps. Whole workloads go through
//! [`CountingEngine::execute_workload`], which plans a batch at once. The
//! row-at-a-time implementations survive as `*_scalar` reference oracles.
//!
//! Plan execution is sharded across worker threads
//! ([`so_plan::parallel::ParallelExecutor`], `SO_THREADS` override): rows
//! split into word-aligned chunks — static per-thread shards or
//! morsel-driven work stealing (`SO_SCHEDULE`) — each worker scans its
//! ranges, and bitmaps merge in range order, so answers are bit-identical
//! to serial execution at every thread count under either schedule. Atom
//! scans themselves run on the dataset's [`so_data::StorageEngine`]
//! (`SO_STORAGE`): packed dictionary / frame-of-reference segments by
//! default, the uncompressed oracle layout on request, with identical
//! answers either way.

use std::collections::HashMap;

use so_data::{Dataset, SelectionVector};
use so_plan::ir::{ExprId, PredPool};
use so_plan::parallel::ParallelExecutor;
use so_plan::plan::{NodeCache, PlanOutcome, PlanStats, QueryPlan};
use so_plan::workload::{QueryKind, WorkloadSpec};

use crate::audit::QueryAuditor;
use crate::predicate::RowPredicate;

/// Compiles `p` into a selection bitmap over the rows of `ds`.
pub fn scan_dataset(ds: &Dataset, p: &dyn RowPredicate) -> SelectionVector {
    p.scan(ds)
}

/// Counts rows of `ds` matching `p` (bitmap scan + popcount).
pub fn count_dataset(ds: &Dataset, p: &dyn RowPredicate) -> usize {
    p.scan(ds).count()
}

/// Returns the indices of rows matching `p` (bitmap scan + bit-walk).
pub fn select_dataset(ds: &Dataset, p: &dyn RowPredicate) -> Vec<usize> {
    p.scan(ds).indices()
}

/// Row-at-a-time count — the reference oracle for [`count_dataset`].
pub fn count_dataset_scalar(ds: &Dataset, p: &dyn RowPredicate) -> usize {
    (0..ds.n_rows()).filter(|&r| p.eval_row(ds, r)).count()
}

/// Row-at-a-time selection — the reference oracle for [`select_dataset`].
pub fn select_dataset_scalar(ds: &Dataset, p: &dyn RowPredicate) -> Vec<usize> {
    (0..ds.n_rows()).filter(|&r| p.eval_row(ds, r)).collect()
}

/// The engine's answer to one workload query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadAnswer {
    /// Exact count of matching rows.
    ///
    /// The engine always answers exactly; the workload's
    /// [`so_plan::workload::Noise`] annotations describe how the *caller's
    /// release mechanism* will perturb these counts (and are what the
    /// `so-analyze` lints reason about) — they are not applied here.
    Count(usize),
    /// Refused by the query auditor (cap exhausted, or a policy layer such
    /// as `so-analyze`'s `GatedEngine` denied the workload).
    Refused,
    /// Not answerable by the tabular engine: subset-sum queries (answer
    /// those with a `SubsetSumMechanism` against the bit dataset) and
    /// opaque predicates with no registered evaluator.
    Unanswerable,
}

/// The result of executing a whole workload.
pub struct WorkloadAnswers {
    /// Per-query answers, in workload declaration order.
    pub answers: Vec<WorkloadAnswer>,
    /// Per-query target expressions in the *engine's* pool (`None` for
    /// subset queries). Structurally equal queries share a target; the
    /// targets' [`PredPool::structural_hash`] values equal those of the
    /// workload's own pool, which is how `GatedEngine` asserts it executed
    /// exactly the plan it linted.
    pub targets: Vec<Option<ExprId>>,
    /// What executing the plan actually did (scans, cache hits, …).
    pub stats: PlanStats,
}

static NO_EVALUATORS: std::sync::OnceLock<HashMap<u64, std::sync::Arc<dyn RowPredicate>>> =
    std::sync::OnceLock::new();

/// A counting-query server over one dataset, with auditing.
///
/// Compiled predicate bitmaps are cached in an [`ExprId`]-keyed node cache
/// over the engine's persistent [`PredPool`]: a repeated query (the shape of
/// every reconstruction attack — the same subset predicates asked over and
/// over) answers from a popcount of the cached bitmap without rescanning,
/// and *structurally* equal predicates share an entry even when they are
/// distinct objects from distinct call sites. The cache never needs
/// invalidation because [`Dataset`] is immutable.
///
/// Structural keys are what make the cache *sound*: equal expressions select
/// equal rows by construction (closure-backed predicates carry a unique
/// identity in their shape), unlike the human-facing `describe()` strings,
/// where two differently-behaving predicates can share a label. Predicates
/// whose shape is [`so_plan::PredShape::Volatile`] (no structure, no stable
/// identity) are answered correctly but never interned or cached.
pub struct CountingEngine<'a> {
    ds: &'a Dataset,
    auditor: QueryAuditor,
    pool: PredPool,
    cache: NodeCache,
    stats: PlanStats,
    executor: ParallelExecutor,
}

impl<'a> CountingEngine<'a> {
    /// Serves `ds` with an optional cap on the number of queries.
    pub fn new(ds: &'a Dataset, max_queries: Option<usize>) -> Self {
        Self::with_auditor(ds, QueryAuditor::new(max_queries))
    }

    /// Serves `ds` with a pre-configured auditor (e.g. one with a bounded
    /// or disabled audit trail for long attack loops).
    pub fn with_auditor(ds: &'a Dataset, auditor: QueryAuditor) -> Self {
        CountingEngine {
            ds,
            auditor,
            pool: PredPool::new(),
            cache: NodeCache::new(),
            stats: PlanStats::default(),
            executor: ParallelExecutor::from_env(),
        }
    }

    /// Sets the worker thread count for plan execution (both single-query
    /// compilation and whole workloads). Answers are bit-identical at every
    /// thread count — sharding is word-aligned and merges in shard order —
    /// so this is purely a throughput knob. The default comes from
    /// [`ParallelExecutor::from_env`] (`SO_THREADS`, else available
    /// parallelism).
    pub fn set_threads(&mut self, threads: usize) {
        self.executor = ParallelExecutor::with_threads(threads);
    }

    /// The worker thread count plan execution currently uses.
    pub fn threads(&self) -> usize {
        self.executor.threads()
    }

    /// Answers a counting query exactly; returns `None` once the query cap
    /// is exhausted (the "limit the number of queries" defence the paper
    /// mentions as one of the two ways to escape blatant non-privacy).
    pub fn count(&mut self, p: &dyn RowPredicate) -> Option<usize> {
        if !self.auditor.admit_with(|| p.describe()) {
            return None;
        }
        crate::obs::query_metrics().count_calls.inc();
        let shape = p.shape();
        if !shape.is_cache_stable() {
            // No sound cache key — evaluate fresh; interning a volatile
            // shape would mint a fresh opaque atom per call and grow the
            // pool without bound.
            crate::obs::query_metrics().volatile_scans.inc();
            return Some(p.scan(self.ds).count());
        }
        let id = self.pool.lift(&shape);
        if let Some(b) = self.cache.get(&id) {
            self.stats.cache_hits += 1;
            so_plan::obs::publish_stats(&PlanStats {
                cache_hits: 1,
                ..PlanStats::default()
            });
            return Some(b.count());
        }
        if shape.is_fully_structural() {
            // Node-by-node bitmap evaluation: subexpressions land in the
            // cache individually, so later queries sharing a conjunct reuse
            // its bitmap even if the full query is new.
            let plan = QueryPlan::compile(&self.pool, vec![Some(id)]);
            let evals = NO_EVALUATORS.get_or_init(HashMap::new);
            let (outcomes, stats) =
                self.executor
                    .execute(&plan, &self.pool, self.ds, evals, &mut self.cache);
            self.absorb(stats);
            match outcomes[0] {
                PlanOutcome::Count(c) => Some(c),
                // Structural but non-tabular (bit-string shapes on a custom
                // row predicate): fall back to the predicate's own scan.
                PlanOutcome::Unanswerable => Some(p.scan(self.ds).count()),
            }
        } else {
            // Contains an opaque atom: the closure itself is the only
            // evaluator, so compile the whole predicate as one scan, cached
            // under its (stable) lifted expression.
            let b = p.scan(self.ds);
            self.stats.atom_scans += 1;
            self.stats.nodes_evaluated += 1;
            so_plan::obs::publish_stats(&PlanStats {
                atom_scans: 1,
                nodes_evaluated: 1,
                ..PlanStats::default()
            });
            let c = b.count();
            self.cache.insert(id, b);
            Some(c)
        }
    }

    /// Plans and executes a whole workload in one pass.
    ///
    /// Every predicate query is imported into the engine's pool —
    /// hash-consing dedups structurally equal queries across the workload
    /// *and* against everything the engine has already compiled — then a
    /// single [`QueryPlan`] evaluates the distinct expressions bottom-up:
    /// each shared subexpression is scanned once and each boolean node is
    /// word-ops over child bitmaps. Answers come back in declaration order.
    ///
    /// Per query, the auditor admits or refuses as if the queries had been
    /// asked one at a time, so a query cap bites mid-workload exactly where
    /// it would have in a loop. Subset-sum queries are recorded as refusals
    /// and answered [`WorkloadAnswer::Unanswerable`] — this engine serves
    /// tabular counts; answer those against the bit dataset with a
    /// `SubsetSumMechanism` (see `answer_all`).
    pub fn execute_workload(&mut self, spec: &WorkloadSpec) -> WorkloadAnswers {
        crate::obs::query_metrics().workloads.inc();
        let span = so_obs::span("engine.workload");
        let mut memo = HashMap::new();
        let n_queries = spec.len();
        let mut targets: Vec<Option<ExprId>> = Vec::with_capacity(n_queries);
        let mut plan_targets: Vec<Option<ExprId>> = Vec::with_capacity(n_queries);
        let mut answers: Vec<WorkloadAnswer> = Vec::with_capacity(n_queries);
        for q in spec.queries() {
            match &q.kind {
                QueryKind::Subset(members) => {
                    let size = members.count_ones();
                    self.auditor.refuse_with(|| {
                        format!(
                            "unanswerable: subset-sum query (|q| = {size}) \
                             against the tabular counting engine"
                        )
                    });
                    targets.push(None);
                    plan_targets.push(None);
                    answers.push(WorkloadAnswer::Unanswerable);
                }
                QueryKind::Pred(id) => {
                    let tid = self.pool.import(spec.pool(), *id, &mut memo);
                    targets.push(Some(tid));
                    if self.auditor.admit_with(|| spec.pool().render(*id)) {
                        plan_targets.push(Some(tid));
                        // Placeholder; overwritten from the plan outcome.
                        answers.push(WorkloadAnswer::Count(0));
                    } else {
                        plan_targets.push(None);
                        answers.push(WorkloadAnswer::Refused);
                    }
                }
            }
        }
        let plan = QueryPlan::compile(&self.pool, plan_targets);
        let (outcomes, mut stats) = self.executor.execute(
            &plan,
            &self.pool,
            self.ds,
            spec.evaluators(),
            &mut self.cache,
        );
        for (answer, outcome) in answers.iter_mut().zip(&outcomes) {
            if matches!(answer, WorkloadAnswer::Count(_)) {
                *answer = match outcome {
                    PlanOutcome::Count(c) => WorkloadAnswer::Count(*c),
                    PlanOutcome::Unanswerable => WorkloadAnswer::Unanswerable,
                };
            }
        }
        // The plan counts refused/subset queries (None targets) as
        // unanswerable; report the real per-answer split instead.
        stats.queries = n_queries;
        stats.unanswerable = answers
            .iter()
            .filter(|a| matches!(a, WorkloadAnswer::Unanswerable))
            .count();
        self.absorb(stats);
        if so_obs::enabled() {
            span.finish_with(&[
                ("queries", n_queries.to_string()),
                ("atom_scans", stats.atom_scans.to_string()),
                ("cache_hits", stats.cache_hits.to_string()),
                ("unanswerable", stats.unanswerable.to_string()),
            ]);
        }
        WorkloadAnswers {
            answers,
            targets,
            stats,
        }
    }

    fn absorb(&mut self, stats: PlanStats) {
        self.stats.nodes_evaluated += stats.nodes_evaluated;
        self.stats.atom_scans += stats.atom_scans;
        self.stats.cache_hits += stats.cache_hits;
    }

    /// Number of distinct compiled bitmaps currently cached (one per
    /// distinct IR node the engine has evaluated, subexpressions included).
    pub fn cached_predicates(&self) -> usize {
        self.cache.len()
    }

    /// Cumulative execution counters (scans, node evaluations, cache hits)
    /// over the engine's lifetime.
    pub fn stats(&self) -> PlanStats {
        self.stats
    }

    /// The engine's persistent predicate pool.
    pub fn pool(&self) -> &PredPool {
        &self.pool
    }

    /// Read access to the audit trail.
    pub fn auditor(&self) -> &QueryAuditor {
        &self.auditor
    }

    /// Mutable access to the auditor, so policy layers (e.g. the static
    /// workload gate in `so-analyze`) can record their own refusals in the
    /// same trail the answered queries land in.
    pub fn auditor_mut(&mut self) -> &mut QueryAuditor {
        &mut self.auditor
    }

    /// The served dataset.
    pub fn dataset(&self) -> &'a Dataset {
        self.ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{
        AllRowPredicate, FnRowPredicate, IntRangePredicate, KeyedHashPredicate, NotRowPredicate,
        RowHashPredicate,
    };
    use so_data::{AttributeDef, AttributeRole, DataType, DatasetBuilder, Schema, Value};
    use so_plan::workload::Noise;
    use so_plan::PredShape;
    use so_plan::SubsetQuery;

    fn ds() -> Dataset {
        let schema = Schema::new(vec![AttributeDef::new(
            "age",
            DataType::Int,
            AttributeRole::QuasiIdentifier,
        )]);
        let mut b = DatasetBuilder::new(schema);
        for age in [10, 20, 30, 40, 50] {
            b.push_row(vec![Value::Int(age)]);
        }
        b.finish()
    }

    #[test]
    fn count_and_select_agree() {
        let ds = ds();
        let p = IntRangePredicate {
            col: 0,
            lo: 15,
            hi: 45,
        };
        assert_eq!(count_dataset(&ds, &p), 3);
        assert_eq!(select_dataset(&ds, &p), vec![1, 2, 3]);
    }

    #[test]
    fn bitmap_and_scalar_paths_agree() {
        let ds = ds();
        let p = IntRangePredicate {
            col: 0,
            lo: 15,
            hi: 45,
        };
        assert_eq!(count_dataset(&ds, &p), count_dataset_scalar(&ds, &p));
        assert_eq!(select_dataset(&ds, &p), select_dataset_scalar(&ds, &p));
        assert_eq!(scan_dataset(&ds, &p).indices(), select_dataset(&ds, &p));
    }

    #[test]
    fn engine_counts_until_cap() {
        let ds = ds();
        let mut e = CountingEngine::new(&ds, Some(2));
        let p = IntRangePredicate {
            col: 0,
            lo: 0,
            hi: 100,
        };
        assert_eq!(e.count(&p), Some(5));
        assert_eq!(e.count(&p), Some(5));
        assert_eq!(e.count(&p), None, "third query must be refused");
        assert_eq!(e.auditor().queries_answered(), 2);
        assert_eq!(e.auditor().queries_refused(), 1);
    }

    #[test]
    fn engine_without_cap_is_unlimited() {
        let ds = ds();
        let mut e = CountingEngine::new(&ds, None);
        let p = IntRangePredicate {
            col: 0,
            lo: 25,
            hi: 100,
        };
        for _ in 0..100 {
            assert_eq!(e.count(&p), Some(3));
        }
        assert_eq!(e.auditor().queries_answered(), 100);
    }

    #[test]
    fn repeated_queries_hit_the_bitmap_cache() {
        let ds = ds();
        let mut e = CountingEngine::new(&ds, None);
        let p = IntRangePredicate {
            col: 0,
            lo: 25,
            hi: 100,
        };
        let q = IntRangePredicate {
            col: 0,
            lo: 0,
            hi: 15,
        };
        for _ in 0..10 {
            assert_eq!(e.count(&p), Some(3));
            assert_eq!(e.count(&q), Some(1));
        }
        // Two distinct predicates → exactly two cached bitmaps.
        assert_eq!(e.cached_predicates(), 2);
        assert_eq!(e.auditor().queries_answered(), 20);
        // 2 scans, 18 cache hits.
        assert_eq!(e.stats().atom_scans, 2);
        assert_eq!(e.stats().cache_hits, 18);
    }

    /// Regression test for the describe()-keyed cache unsoundness: two
    /// differently-behaving closure predicates sharing one label must not
    /// return each other's cached counts. Under the old `describe()` key
    /// scheme the second query aliased the first's bitmap and answered 5;
    /// structural identity (per-instance opaque id, now interned as distinct
    /// `Atom::Opaque` expressions) keeps them apart.
    #[test]
    fn same_label_different_closures_do_not_alias_the_cache() {
        let ds = ds();
        let mut e = CountingEngine::new(&ds, None);
        let everyone = FnRowPredicate::new("cohort", |_, _| true);
        let nobody = FnRowPredicate::new("cohort", |_, _| false);
        assert_eq!(everyone.describe(), nobody.describe());
        assert_eq!(e.count(&everyone), Some(5));
        assert_eq!(
            e.count(&nobody),
            Some(0),
            "label collision returned the wrong predicate's cached count"
        );
        // And the cached entries stay distinct on repeat queries.
        assert_eq!(e.count(&everyone), Some(5));
        assert_eq!(e.count(&nobody), Some(0));
        assert_eq!(e.cached_predicates(), 2);
    }

    /// Predicates that opt out of shape reflection entirely (default
    /// `Volatile` shape) are answered correctly and never cached.
    #[test]
    fn volatile_shapes_are_answered_but_not_cached() {
        struct Bare(i64);
        impl RowPredicate for Bare {
            fn eval_row(&self, ds: &Dataset, row: usize) -> bool {
                ds.get(row, 0).as_int().is_some_and(|v| v >= self.0)
            }
        }
        let ds = ds();
        let mut e = CountingEngine::new(&ds, None);
        assert_eq!(e.count(&Bare(15)), Some(4));
        assert_eq!(e.count(&Bare(45)), Some(1), "distinct despite same shape");
        assert_eq!(e.cached_predicates(), 0);
        // And the pool stays clean too — no per-call opaque pollution.
        assert!(e.pool().is_empty());
    }

    /// Structurally equal predicates share one cache entry even across the
    /// single-query and workload paths.
    #[test]
    fn workload_and_single_query_paths_share_the_cache() {
        let ds = ds();
        let mut e = CountingEngine::new(&ds, None);
        let p = IntRangePredicate {
            col: 0,
            lo: 15,
            hi: 45,
        };
        assert_eq!(e.count(&p), Some(3));
        let mut w = WorkloadSpec::new(ds.n_rows());
        w.push_predicate(&p, Noise::Exact);
        let out = e.execute_workload(&w);
        assert_eq!(out.answers, vec![WorkloadAnswer::Count(3)]);
        // The workload answered from the single-query path's bitmap.
        assert_eq!(out.stats.atom_scans, 0);
        assert_eq!(out.stats.cache_hits, 1);
        assert_eq!(e.cached_predicates(), 1);
    }

    /// A planned tracker pair (`A`, `A ∧ ¬B`) scans the shared conjunct `A`
    /// exactly once; the pair's second query is word-ops on top of it.
    #[test]
    fn planned_tracker_pair_scans_shared_conjunct_once() {
        let ds = ds();
        let range = || IntRangePredicate {
            col: 0,
            lo: 15,
            hi: 45,
        };
        let hash = || RowHashPredicate {
            hash: KeyedHashPredicate::new(0xBEEF, 256, 0),
            cols: vec![0],
        };
        let mut w = WorkloadSpec::new(ds.n_rows());
        w.push_predicate(&range(), Noise::Exact);
        w.push_predicate(
            &AllRowPredicate {
                parts: vec![
                    Box::new(range()),
                    Box::new(NotRowPredicate {
                        inner: Box::new(hash()),
                    }),
                ],
            },
            Noise::Exact,
        );
        let mut e = CountingEngine::new(&ds, None);
        let out = e.execute_workload(&w);
        // Exactly two dataset scans: the shared range atom and the hash
        // atom. NOT and AND are word-ops, not scans.
        assert_eq!(out.stats.atom_scans, 2, "shared conjunct scanned once");
        let (WorkloadAnswer::Count(a), WorkloadAnswer::Count(b)) = (out.answers[0], out.answers[1])
        else {
            panic!("both queries answerable");
        };
        assert_eq!(a, 3);
        assert!(b <= a, "A ∧ ¬B can't exceed A");
        assert_eq!(
            b,
            count_dataset_scalar(
                &ds,
                &AllRowPredicate {
                    parts: vec![
                        Box::new(range()),
                        Box::new(NotRowPredicate {
                            inner: Box::new(hash()),
                        }),
                    ],
                }
            )
        );
    }

    /// Workload execution respects the auditor cap mid-batch.
    #[test]
    fn workload_respects_query_cap() {
        let ds = ds();
        let mut e = CountingEngine::new(&ds, Some(2));
        let mut w = WorkloadSpec::new(ds.n_rows());
        for hi in [20, 30, 40] {
            w.push_shape(&PredShape::IntRange { col: 0, lo: 0, hi }, Noise::Exact);
        }
        let out = e.execute_workload(&w);
        assert_eq!(
            out.answers,
            vec![
                WorkloadAnswer::Count(2),
                WorkloadAnswer::Count(3),
                WorkloadAnswer::Refused
            ]
        );
        assert_eq!(e.auditor().queries_refused(), 1);
    }

    /// Subset queries are not answerable against a tabular engine and are
    /// recorded as refusals in the audit trail.
    #[test]
    fn subset_queries_are_unanswerable_in_the_tabular_engine() {
        let ds = ds();
        let mut e = CountingEngine::new(&ds, None);
        let mut w = WorkloadSpec::new(ds.n_rows());
        w.push_subset(
            &SubsetQuery::from_indices(ds.n_rows(), &[0, 2]),
            Noise::Exact,
        );
        w.push_shape(
            &PredShape::IntRange {
                col: 0,
                lo: 0,
                hi: 100,
            },
            Noise::Exact,
        );
        let out = e.execute_workload(&w);
        assert_eq!(out.answers[0], WorkloadAnswer::Unanswerable);
        assert_eq!(out.answers[1], WorkloadAnswer::Count(5));
        assert_eq!(out.targets[0], None);
        assert!(out.targets[1].is_some());
        assert_eq!(e.auditor().queries_refused(), 1);
        assert_eq!(e.auditor().queries_answered(), 1);
    }

    /// Workload targets carry the same stable structural hashes as the
    /// spec's own pool — the executed plan is the declared plan.
    #[test]
    fn workload_targets_match_spec_hashes() {
        let ds = ds();
        let mut e = CountingEngine::new(&ds, None);
        let mut w = WorkloadSpec::new(ds.n_rows());
        let shape = PredShape::Not(Box::new(PredShape::IntRange {
            col: 0,
            lo: 15,
            hi: 45,
        }));
        w.push_shape(&shape, Noise::Exact);
        let out = e.execute_workload(&w);
        let spec_id = match &w.queries()[0].kind {
            QueryKind::Pred(id) => *id,
            _ => unreachable!(),
        };
        assert_eq!(
            e.pool().structural_hash(out.targets[0].unwrap()),
            w.pool().structural_hash(spec_id)
        );
    }
}
