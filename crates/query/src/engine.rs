//! Counting engine over tabular datasets.
//!
//! A thin execution layer that evaluates [`RowPredicate`]s over a
//! [`Dataset`]: selection vectors, counts, and a [`CountingEngine`] that
//! serves counting queries while recording them in a [`QueryAuditor`]. This
//! is the "statistical tables" interface the paper's introduction describes —
//! an analyst asks how many individuals in a sub-population have a trait, and
//! the engine answers.

use so_data::Dataset;

use crate::audit::QueryAuditor;
use crate::predicate::RowPredicate;

/// Counts rows of `ds` matching `p`.
pub fn count_dataset(ds: &Dataset, p: &dyn RowPredicate) -> usize {
    (0..ds.n_rows()).filter(|&r| p.eval_row(ds, r)).count()
}

/// Returns the indices of rows matching `p`.
pub fn select_dataset(ds: &Dataset, p: &dyn RowPredicate) -> Vec<usize> {
    (0..ds.n_rows()).filter(|&r| p.eval_row(ds, r)).collect()
}

/// A counting-query server over one dataset, with auditing.
pub struct CountingEngine<'a> {
    ds: &'a Dataset,
    auditor: QueryAuditor,
}

impl<'a> CountingEngine<'a> {
    /// Serves `ds` with an optional cap on the number of queries.
    pub fn new(ds: &'a Dataset, max_queries: Option<usize>) -> Self {
        CountingEngine {
            ds,
            auditor: QueryAuditor::new(max_queries),
        }
    }

    /// Answers a counting query exactly; returns `None` once the query cap
    /// is exhausted (the "limit the number of queries" defence the paper
    /// mentions as one of the two ways to escape blatant non-privacy).
    pub fn count(&mut self, p: &dyn RowPredicate) -> Option<usize> {
        if !self.auditor.admit(&p.describe()) {
            return None;
        }
        Some(count_dataset(self.ds, p))
    }

    /// Read access to the audit trail.
    pub fn auditor(&self) -> &QueryAuditor {
        &self.auditor
    }

    /// The served dataset.
    pub fn dataset(&self) -> &'a Dataset {
        self.ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::IntRangePredicate;
    use so_data::{AttributeDef, AttributeRole, DataType, DatasetBuilder, Schema, Value};

    fn ds() -> Dataset {
        let schema = Schema::new(vec![AttributeDef::new(
            "age",
            DataType::Int,
            AttributeRole::QuasiIdentifier,
        )]);
        let mut b = DatasetBuilder::new(schema);
        for age in [10, 20, 30, 40, 50] {
            b.push_row(vec![Value::Int(age)]);
        }
        b.finish()
    }

    #[test]
    fn count_and_select_agree() {
        let ds = ds();
        let p = IntRangePredicate {
            col: 0,
            lo: 15,
            hi: 45,
        };
        assert_eq!(count_dataset(&ds, &p), 3);
        assert_eq!(select_dataset(&ds, &p), vec![1, 2, 3]);
    }

    #[test]
    fn engine_counts_until_cap() {
        let ds = ds();
        let mut e = CountingEngine::new(&ds, Some(2));
        let p = IntRangePredicate {
            col: 0,
            lo: 0,
            hi: 100,
        };
        assert_eq!(e.count(&p), Some(5));
        assert_eq!(e.count(&p), Some(5));
        assert_eq!(e.count(&p), None, "third query must be refused");
        assert_eq!(e.auditor().queries_answered(), 2);
        assert_eq!(e.auditor().queries_refused(), 1);
    }

    #[test]
    fn engine_without_cap_is_unlimited() {
        let ds = ds();
        let mut e = CountingEngine::new(&ds, None);
        let p = IntRangePredicate {
            col: 0,
            lo: 25,
            hi: 100,
        };
        for _ in 0..100 {
            assert_eq!(e.count(&p), Some(3));
        }
        assert_eq!(e.auditor().queries_answered(), 100);
    }
}
