//! Counting engine over tabular datasets.
//!
//! A thin execution layer that evaluates [`RowPredicate`]s over a
//! [`Dataset`]: selection vectors, counts, and a [`CountingEngine`] that
//! serves counting queries while recording them in a [`QueryAuditor`]. This
//! is the "statistical tables" interface the paper's introduction describes —
//! an analyst asks how many individuals in a sub-population have a trait, and
//! the engine answers.
//!
//! Execution is columnar: a predicate is compiled once into a packed
//! [`SelectionVector`] bitmap by [`RowPredicate::scan`] (typed predicates
//! read a column slice; compound predicates combine child bitmaps with
//! word-level boolean ops), after which counting is a popcount and
//! selection a bit-walk. The row-at-a-time implementations survive as
//! `*_scalar` reference oracles.

use std::collections::HashMap;

use so_data::{Dataset, SelectionVector};

use crate::audit::QueryAuditor;
use crate::predicate::RowPredicate;
use crate::shape::PredShape;

/// Compiles `p` into a selection bitmap over the rows of `ds`.
pub fn scan_dataset(ds: &Dataset, p: &dyn RowPredicate) -> SelectionVector {
    p.scan(ds)
}

/// Counts rows of `ds` matching `p` (bitmap scan + popcount).
pub fn count_dataset(ds: &Dataset, p: &dyn RowPredicate) -> usize {
    p.scan(ds).count()
}

/// Returns the indices of rows matching `p` (bitmap scan + bit-walk).
pub fn select_dataset(ds: &Dataset, p: &dyn RowPredicate) -> Vec<usize> {
    p.scan(ds).indices()
}

/// Row-at-a-time count — the reference oracle for [`count_dataset`].
pub fn count_dataset_scalar(ds: &Dataset, p: &dyn RowPredicate) -> usize {
    (0..ds.n_rows()).filter(|&r| p.eval_row(ds, r)).count()
}

/// Row-at-a-time selection — the reference oracle for [`select_dataset`].
pub fn select_dataset_scalar(ds: &Dataset, p: &dyn RowPredicate) -> Vec<usize> {
    (0..ds.n_rows()).filter(|&r| p.eval_row(ds, r)).collect()
}

/// A counting-query server over one dataset, with auditing.
///
/// Compiled predicate bitmaps are cached keyed by the *structural*
/// [`RowPredicate::shape`]: a repeated query (the shape of every
/// reconstruction attack — the same subset predicates asked over and over)
/// answers from a popcount of the cached bitmap without rescanning. The
/// cache never needs invalidation because [`Dataset`] is immutable.
///
/// Structural keys are what make the cache *sound*: equal shapes select
/// equal rows by construction (closure-backed predicates carry a unique
/// identity in their shape), unlike the human-facing `describe()` strings,
/// where two differently-behaving predicates can share a label. Predicates
/// whose shape is [`PredShape::Volatile`] (no structure, no stable
/// identity) are answered correctly but never cached.
pub struct CountingEngine<'a> {
    ds: &'a Dataset,
    auditor: QueryAuditor,
    cache: HashMap<PredShape, SelectionVector>,
}

impl<'a> CountingEngine<'a> {
    /// Serves `ds` with an optional cap on the number of queries.
    pub fn new(ds: &'a Dataset, max_queries: Option<usize>) -> Self {
        CountingEngine {
            ds,
            auditor: QueryAuditor::new(max_queries),
            cache: HashMap::new(),
        }
    }

    /// Serves `ds` with a pre-configured auditor (e.g. one with a bounded
    /// or disabled audit trail for long attack loops).
    pub fn with_auditor(ds: &'a Dataset, auditor: QueryAuditor) -> Self {
        CountingEngine {
            ds,
            auditor,
            cache: HashMap::new(),
        }
    }

    /// Answers a counting query exactly; returns `None` once the query cap
    /// is exhausted (the "limit the number of queries" defence the paper
    /// mentions as one of the two ways to escape blatant non-privacy).
    pub fn count(&mut self, p: &dyn RowPredicate) -> Option<usize> {
        if !self.auditor.admit_with(|| p.describe()) {
            return None;
        }
        let shape = p.shape();
        if !shape.is_cache_stable() {
            // No sound cache key — evaluate fresh, don't pollute the cache.
            return Some(p.scan(self.ds).count());
        }
        let bitmap = self.cache.entry(shape).or_insert_with(|| p.scan(self.ds));
        Some(bitmap.count())
    }

    /// Number of distinct predicate bitmaps currently cached.
    pub fn cached_predicates(&self) -> usize {
        self.cache.len()
    }

    /// Read access to the audit trail.
    pub fn auditor(&self) -> &QueryAuditor {
        &self.auditor
    }

    /// Mutable access to the auditor, so policy layers (e.g. the static
    /// workload gate in `so-analyze`) can record their own refusals in the
    /// same trail the answered queries land in.
    pub fn auditor_mut(&mut self) -> &mut QueryAuditor {
        &mut self.auditor
    }

    /// The served dataset.
    pub fn dataset(&self) -> &'a Dataset {
        self.ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{FnRowPredicate, IntRangePredicate};
    use so_data::{AttributeDef, AttributeRole, DataType, DatasetBuilder, Schema, Value};

    fn ds() -> Dataset {
        let schema = Schema::new(vec![AttributeDef::new(
            "age",
            DataType::Int,
            AttributeRole::QuasiIdentifier,
        )]);
        let mut b = DatasetBuilder::new(schema);
        for age in [10, 20, 30, 40, 50] {
            b.push_row(vec![Value::Int(age)]);
        }
        b.finish()
    }

    #[test]
    fn count_and_select_agree() {
        let ds = ds();
        let p = IntRangePredicate {
            col: 0,
            lo: 15,
            hi: 45,
        };
        assert_eq!(count_dataset(&ds, &p), 3);
        assert_eq!(select_dataset(&ds, &p), vec![1, 2, 3]);
    }

    #[test]
    fn bitmap_and_scalar_paths_agree() {
        let ds = ds();
        let p = IntRangePredicate {
            col: 0,
            lo: 15,
            hi: 45,
        };
        assert_eq!(count_dataset(&ds, &p), count_dataset_scalar(&ds, &p));
        assert_eq!(select_dataset(&ds, &p), select_dataset_scalar(&ds, &p));
        assert_eq!(scan_dataset(&ds, &p).indices(), select_dataset(&ds, &p));
    }

    #[test]
    fn engine_counts_until_cap() {
        let ds = ds();
        let mut e = CountingEngine::new(&ds, Some(2));
        let p = IntRangePredicate {
            col: 0,
            lo: 0,
            hi: 100,
        };
        assert_eq!(e.count(&p), Some(5));
        assert_eq!(e.count(&p), Some(5));
        assert_eq!(e.count(&p), None, "third query must be refused");
        assert_eq!(e.auditor().queries_answered(), 2);
        assert_eq!(e.auditor().queries_refused(), 1);
    }

    #[test]
    fn engine_without_cap_is_unlimited() {
        let ds = ds();
        let mut e = CountingEngine::new(&ds, None);
        let p = IntRangePredicate {
            col: 0,
            lo: 25,
            hi: 100,
        };
        for _ in 0..100 {
            assert_eq!(e.count(&p), Some(3));
        }
        assert_eq!(e.auditor().queries_answered(), 100);
    }

    #[test]
    fn repeated_queries_hit_the_bitmap_cache() {
        let ds = ds();
        let mut e = CountingEngine::new(&ds, None);
        let p = IntRangePredicate {
            col: 0,
            lo: 25,
            hi: 100,
        };
        let q = IntRangePredicate {
            col: 0,
            lo: 0,
            hi: 15,
        };
        for _ in 0..10 {
            assert_eq!(e.count(&p), Some(3));
            assert_eq!(e.count(&q), Some(1));
        }
        // Two distinct predicates → exactly two cached bitmaps.
        assert_eq!(e.cached_predicates(), 2);
        assert_eq!(e.auditor().queries_answered(), 20);
    }

    /// Regression test for the describe()-keyed cache unsoundness: two
    /// differently-behaving closure predicates sharing one label must not
    /// return each other's cached counts. Under the old `describe()` key
    /// scheme the second query aliased the first's bitmap and answered 5;
    /// structural keys (per-instance opaque identity) keep them apart.
    #[test]
    fn same_label_different_closures_do_not_alias_the_cache() {
        let ds = ds();
        let mut e = CountingEngine::new(&ds, None);
        let everyone = FnRowPredicate::new("cohort", |_, _| true);
        let nobody = FnRowPredicate::new("cohort", |_, _| false);
        assert_eq!(everyone.describe(), nobody.describe());
        assert_eq!(e.count(&everyone), Some(5));
        assert_eq!(
            e.count(&nobody),
            Some(0),
            "label collision returned the wrong predicate's cached count"
        );
        // And the cached entries stay distinct on repeat queries.
        assert_eq!(e.count(&everyone), Some(5));
        assert_eq!(e.count(&nobody), Some(0));
        assert_eq!(e.cached_predicates(), 2);
    }

    /// Predicates that opt out of shape reflection entirely (default
    /// `Volatile` shape) are answered correctly and never cached.
    #[test]
    fn volatile_shapes_are_answered_but_not_cached() {
        struct Bare(i64);
        impl RowPredicate for Bare {
            fn eval_row(&self, ds: &Dataset, row: usize) -> bool {
                ds.get(row, 0).as_int().is_some_and(|v| v >= self.0)
            }
        }
        let ds = ds();
        let mut e = CountingEngine::new(&ds, None);
        assert_eq!(e.count(&Bare(15)), Some(4));
        assert_eq!(e.count(&Bare(45)), Some(1), "distinct despite same shape");
        assert_eq!(e.cached_predicates(), 0);
    }
}
