//! Structural reflection of predicates — re-exported from `so-plan`.
//!
//! [`PredShape`] and the opaque-identity allocator moved into the `so-plan`
//! compilation pipeline (which sits below this crate) so that the static
//! linter, the workload planner, and this engine all share one definition.
//! This module keeps the historical `so_query::shape::*` paths working.

pub use so_plan::shape::{next_opaque_id, PredShape};
