//! Query auditing.
//!
//! "It turns out that such reconstruction is possible unless either the
//! mechanism introduces sufficiently large error in its answers or it limits
//! the number of queries asked (or both)." — §1. The auditor implements the
//! second defence: it admits queries up to a cap, keeps a trail of what was
//! asked, and reports usage, so experiments can show exactly when a query
//! interface crosses into blatant non-privacy.

/// One entry in the audit trail.
#[derive(Debug, Clone)]
pub struct AuditRecord {
    /// Sequence number (0-based).
    pub seq: usize,
    /// The query's self-description.
    pub description: String,
    /// Whether the query was answered (false = refused by cap).
    pub admitted: bool,
}

/// Tracks queries against an optional cap.
#[derive(Debug)]
pub struct QueryAuditor {
    max_queries: Option<usize>,
    trail: Vec<AuditRecord>,
    answered: usize,
    refused: usize,
}

impl QueryAuditor {
    /// Creates an auditor; `None` means unlimited.
    pub fn new(max_queries: Option<usize>) -> Self {
        QueryAuditor {
            max_queries,
            trail: Vec::new(),
            answered: 0,
            refused: 0,
        }
    }

    /// Records a query attempt; returns whether it may be answered.
    pub fn admit(&mut self, description: &str) -> bool {
        let admitted = self
            .max_queries
            .is_none_or(|cap| self.answered < cap);
        self.trail.push(AuditRecord {
            seq: self.trail.len(),
            description: description.to_owned(),
            admitted,
        });
        if admitted {
            self.answered += 1;
        } else {
            self.refused += 1;
        }
        admitted
    }

    /// Number of queries answered so far.
    pub fn queries_answered(&self) -> usize {
        self.answered
    }

    /// Number of queries refused by the cap.
    pub fn queries_refused(&self) -> usize {
        self.refused
    }

    /// Remaining budget (`None` = unlimited).
    pub fn remaining(&self) -> Option<usize> {
        self.max_queries.map(|cap| cap.saturating_sub(self.answered))
    }

    /// Full audit trail.
    pub fn trail(&self) -> &[AuditRecord] {
        &self.trail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_auditor_always_admits() {
        let mut a = QueryAuditor::new(None);
        for i in 0..50 {
            assert!(a.admit(&format!("q{i}")));
        }
        assert_eq!(a.queries_answered(), 50);
        assert_eq!(a.queries_refused(), 0);
        assert_eq!(a.remaining(), None);
    }

    #[test]
    fn capped_auditor_refuses_after_budget() {
        let mut a = QueryAuditor::new(Some(3));
        assert!(a.admit("a"));
        assert!(a.admit("b"));
        assert_eq!(a.remaining(), Some(1));
        assert!(a.admit("c"));
        assert!(!a.admit("d"));
        assert!(!a.admit("e"));
        assert_eq!(a.queries_answered(), 3);
        assert_eq!(a.queries_refused(), 2);
        assert_eq!(a.remaining(), Some(0));
    }

    #[test]
    fn trail_records_everything_in_order() {
        let mut a = QueryAuditor::new(Some(1));
        a.admit("first");
        a.admit("second");
        let t = a.trail();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].seq, 0);
        assert!(t[0].admitted);
        assert_eq!(t[0].description, "first");
        assert!(!t[1].admitted);
    }

    #[test]
    fn zero_cap_refuses_everything() {
        let mut a = QueryAuditor::new(Some(0));
        assert!(!a.admit("q"));
        assert_eq!(a.queries_answered(), 0);
    }
}
