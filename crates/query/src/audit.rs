//! Query auditing.
//!
//! "It turns out that such reconstruction is possible unless either the
//! mechanism introduces sufficiently large error in its answers or it limits
//! the number of queries asked (or both)." — §1. The auditor implements the
//! second defence: it admits queries up to a cap, keeps a trail of what was
//! asked, and reports usage, so experiments can show exactly when a query
//! interface crosses into blatant non-privacy.
//!
//! The trail itself is bounded: a reconstruction run asks `m = 8n` queries,
//! and retaining an owned description string for every one of them grows
//! memory without limit. [`QueryAuditor::with_trail_cap`] keeps only the
//! most recent records (dropping the oldest first) and
//! [`QueryAuditor::without_trail`] disables retention entirely; the
//! answered/refused counters stay exact in every configuration.

use std::collections::{BTreeSet, VecDeque};

/// One entry in the audit trail.
#[derive(Debug, Clone)]
pub struct AuditRecord {
    /// Sequence number (0-based, global — stable even after older records
    /// have been evicted from a capped trail).
    pub seq: usize,
    /// The query's self-description.
    pub description: String,
    /// Whether the query was answered (false = refused by cap).
    pub admitted: bool,
}

/// Tracks queries against an optional cap.
#[derive(Debug)]
pub struct QueryAuditor {
    max_queries: Option<usize>,
    /// `None` = unbounded retention; `Some(cap)` = keep the `cap` most
    /// recent records (`Some(0)` = retain nothing).
    trail_cap: Option<usize>,
    trail: VecDeque<AuditRecord>,
    seen: usize,
    answered: usize,
    refused: usize,
    dropped: usize,
}

impl QueryAuditor {
    /// Creates an auditor; `None` means unlimited queries. The trail is
    /// unbounded — prefer [`QueryAuditor::with_trail_cap`] or
    /// [`QueryAuditor::without_trail`] for long attack loops.
    pub fn new(max_queries: Option<usize>) -> Self {
        Self::with_capacity(max_queries, None)
    }

    /// Creates an auditor whose trail retains at most `trail_cap` records,
    /// evicting the oldest once full. Counters remain exact regardless.
    pub fn with_trail_cap(max_queries: Option<usize>, trail_cap: usize) -> Self {
        Self::with_capacity(max_queries, Some(trail_cap))
    }

    /// Creates an auditor that retains no trail at all (counters only) —
    /// the right configuration for `m = 8n` reconstruction loops where the
    /// per-query descriptions would dominate the attack's memory.
    pub fn without_trail(max_queries: Option<usize>) -> Self {
        Self::with_capacity(max_queries, Some(0))
    }

    fn with_capacity(max_queries: Option<usize>, trail_cap: Option<usize>) -> Self {
        QueryAuditor {
            max_queries,
            trail_cap,
            trail: VecDeque::new(),
            seen: 0,
            answered: 0,
            refused: 0,
            dropped: 0,
        }
    }

    /// Records a query attempt; returns whether it may be answered.
    ///
    /// Prefer [`QueryAuditor::admit_with`] when the description is not
    /// already rendered: it skips rendering entirely when the trail retains
    /// nothing.
    pub fn admit(&mut self, description: &str) -> bool {
        self.admit_with(|| description.to_owned())
    }

    /// Records a query attempt with a *lazy* description; returns whether it
    /// may be answered. The description closure runs only if a trail record
    /// will actually be retained, so callers in `m = 8n` attack loops with a
    /// disabled trail never pay for rendering.
    pub fn admit_with(&mut self, describe: impl FnOnce() -> String) -> bool {
        let admitted = self.max_queries.map_or(true, |cap| self.answered < cap);
        if admitted {
            self.answered += 1;
        } else {
            self.refused += 1;
        }
        self.record(describe, admitted);
        admitted
    }

    /// Records a query as *refused by policy* (e.g. a static workload gate
    /// vetoed it), independent of the query cap. The description closure
    /// runs only if a trail record will be retained.
    pub fn refuse_with(&mut self, describe: impl FnOnce() -> String) {
        self.refused += 1;
        self.record(describe, false);
    }

    /// Appends a trail record (honouring the retention policy) and advances
    /// the global sequence number. Records not retained — cap evictions and
    /// `Some(0)` non-retention — count as dropped, so
    /// `trail_len() + dropped_entries() == queries_seen()` always holds.
    fn record(&mut self, describe: impl FnOnce() -> String, admitted: bool) {
        let seq = self.seen;
        self.seen += 1;
        match self.trail_cap {
            Some(0) => {
                self.drop_entry();
                return;
            }
            Some(cap) if self.trail.len() == cap => {
                self.trail.pop_front();
                self.drop_entry();
            }
            Some(_) | None => {}
        }
        self.trail.push_back(AuditRecord {
            seq,
            description: describe(),
            admitted,
        });
        crate::obs::query_metrics()
            .audit_trail_len
            .set(self.trail.len() as f64);
    }

    fn drop_entry(&mut self) {
        self.dropped += 1;
        crate::obs::query_metrics().audit_dropped.inc();
    }

    /// Number of queries answered so far.
    pub fn queries_answered(&self) -> usize {
        self.answered
    }

    /// Number of queries refused by the cap.
    pub fn queries_refused(&self) -> usize {
        self.refused
    }

    /// Total trail events seen (query attempts plus version-bump
    /// annotations), independent of how many trail records are retained.
    pub fn queries_seen(&self) -> usize {
        self.seen
    }

    /// Records a dataset version bump in the audit trail so downstream
    /// analysis can correlate answered queries with the dataset state they
    /// ran against. The entry is informational — it does not count as a
    /// query attempt (answered/refused stay put) — but it is bounded by the
    /// trail cap like any other record and participates in the
    /// `trail_len() + dropped_entries() == queries_seen()` invariant.
    pub fn note_version_bump(&mut self, version: u64, touched: &BTreeSet<usize>) {
        self.record(
            || {
                let cols: Vec<String> = touched.iter().map(|c| c.to_string()).collect();
                format!("[version] v{version} touched columns [{}]", cols.join(", "))
            },
            true,
        );
    }

    /// Remaining budget (`None` = unlimited).
    pub fn remaining(&self) -> Option<usize> {
        self.max_queries
            .map(|cap| cap.saturating_sub(self.answered))
    }

    /// The retained audit trail, oldest first. With a trail cap this is the
    /// most recent window; check [`AuditRecord::seq`] against
    /// [`QueryAuditor::queries_seen`] to detect evictions.
    pub fn trail(&self) -> impl Iterator<Item = &AuditRecord> {
        self.trail.iter()
    }

    /// Number of records currently retained in the trail.
    pub fn trail_len(&self) -> usize {
        self.trail.len()
    }

    /// Number of attempts whose trail record was *not* retained: evictions
    /// from a full capped trail plus every record under `Some(0)`
    /// non-retention. Invariant:
    /// `trail_len() + dropped_entries() == queries_seen()`.
    pub fn dropped_entries(&self) -> usize {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trail_vec(a: &QueryAuditor) -> Vec<&AuditRecord> {
        a.trail().collect()
    }

    #[test]
    fn unlimited_auditor_always_admits() {
        let mut a = QueryAuditor::new(None);
        for i in 0..50 {
            assert!(a.admit(&format!("q{i}")));
        }
        assert_eq!(a.queries_answered(), 50);
        assert_eq!(a.queries_refused(), 0);
        assert_eq!(a.remaining(), None);
    }

    #[test]
    fn capped_auditor_refuses_after_budget() {
        let mut a = QueryAuditor::new(Some(3));
        assert!(a.admit("a"));
        assert!(a.admit("b"));
        assert_eq!(a.remaining(), Some(1));
        assert!(a.admit("c"));
        assert!(!a.admit("d"));
        assert!(!a.admit("e"));
        assert_eq!(a.queries_answered(), 3);
        assert_eq!(a.queries_refused(), 2);
        assert_eq!(a.remaining(), Some(0));
    }

    #[test]
    fn trail_records_everything_in_order() {
        let mut a = QueryAuditor::new(Some(1));
        a.admit("first");
        a.admit("second");
        let t = trail_vec(&a);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].seq, 0);
        assert!(t[0].admitted);
        assert_eq!(t[0].description, "first");
        assert!(!t[1].admitted);
    }

    #[test]
    fn zero_cap_refuses_everything() {
        let mut a = QueryAuditor::new(Some(0));
        assert!(!a.admit("q"));
        assert_eq!(a.queries_answered(), 0);
    }

    #[test]
    fn trail_cap_drops_oldest_but_counts_stay_exact() {
        let mut a = QueryAuditor::with_trail_cap(None, 3);
        for i in 0..10 {
            assert!(a.admit(&format!("q{i}")));
        }
        assert_eq!(a.queries_answered(), 10);
        assert_eq!(a.queries_seen(), 10);
        assert_eq!(a.trail_len(), 3);
        let t = trail_vec(&a);
        // The retained window is the most recent three, oldest first.
        assert_eq!(t[0].seq, 7);
        assert_eq!(t[0].description, "q7");
        assert_eq!(t[2].seq, 9);
        assert_eq!(t[2].description, "q9");
    }

    #[test]
    fn without_trail_retains_nothing() {
        let mut a = QueryAuditor::without_trail(Some(5));
        for i in 0..8 {
            a.admit(&format!("q{i}"));
        }
        assert_eq!(a.trail_len(), 0);
        assert_eq!(a.queries_answered(), 5);
        assert_eq!(a.queries_refused(), 3);
        assert_eq!(a.queries_seen(), 8);
        assert_eq!(a.remaining(), Some(0));
    }

    #[test]
    fn lazy_description_not_rendered_when_trail_disabled() {
        let mut a = QueryAuditor::without_trail(None);
        let rendered = std::cell::Cell::new(false);
        assert!(a.admit_with(|| {
            rendered.set(true);
            "expensive".to_owned()
        }));
        assert!(!rendered.get(), "description rendered despite no retention");
        // With retention on, the closure does run.
        let mut b = QueryAuditor::new(None);
        assert!(b.admit_with(|| {
            rendered.set(true);
            "expensive".to_owned()
        }));
        assert!(rendered.get());
    }

    #[test]
    fn version_bump_notes_land_in_the_trail_without_counting_as_queries() {
        let mut a = QueryAuditor::new(None);
        assert!(a.admit("q0"));
        let touched: BTreeSet<usize> = [2usize, 0].into_iter().collect();
        a.note_version_bump(7, &touched);
        assert!(a.admit("q1"));
        assert_eq!(a.queries_answered(), 2);
        assert_eq!(a.queries_refused(), 0);
        assert_eq!(a.queries_seen(), 3);
        let t = trail_vec(&a);
        assert_eq!(t.len(), 3);
        assert_eq!(t[1].seq, 1);
        assert!(t[1].admitted);
        assert_eq!(t[1].description, "[version] v7 touched columns [0, 2]");
    }

    #[test]
    fn version_bump_notes_respect_the_trail_cap() {
        let mut a = QueryAuditor::with_trail_cap(None, 2);
        let touched: BTreeSet<usize> = [1usize].into_iter().collect();
        for v in 0..5u64 {
            a.note_version_bump(v, &touched);
            assert_eq!(a.trail_len() + a.dropped_entries(), a.queries_seen());
        }
        assert_eq!(a.trail_len(), 2);
        assert_eq!(a.dropped_entries(), 3);
        assert_eq!(a.queries_answered(), 0);
        let t = trail_vec(&a);
        assert_eq!(t[0].description, "[version] v3 touched columns [1]");
        assert_eq!(t[1].description, "[version] v4 touched columns [1]");
    }

    #[test]
    fn policy_refusal_counts_and_leaves_a_record() {
        let mut a = QueryAuditor::new(None);
        assert!(a.admit("fine"));
        a.refuse_with(|| "vetoed by gate".to_owned());
        assert_eq!(a.queries_answered(), 1);
        assert_eq!(a.queries_refused(), 1);
        assert_eq!(a.queries_seen(), 2);
        let t = trail_vec(&a);
        assert_eq!(t.len(), 2);
        assert!(!t[1].admitted);
        assert_eq!(t[1].description, "vetoed by gate");
        assert_eq!(t[1].seq, 1);
    }

    #[test]
    fn cap_overflow_accounting_tracks_evictions() {
        // Regression: evictions from a full capped trail must be counted,
        // and the invariant trail_len + dropped == seen must hold at every
        // step and in every retention configuration.
        let mut a = QueryAuditor::with_trail_cap(None, 3);
        for i in 0..10 {
            a.admit(&format!("q{i}"));
            assert_eq!(
                a.trail_len() + a.dropped_entries(),
                a.queries_seen(),
                "after query {i}"
            );
        }
        assert_eq!(a.trail_len(), 3);
        assert_eq!(a.dropped_entries(), 7, "10 seen, 3 retained");

        // Zero retention: every record is dropped.
        let mut b = QueryAuditor::without_trail(None);
        for i in 0..4 {
            b.admit(&format!("q{i}"));
        }
        assert_eq!(b.dropped_entries(), 4);
        assert_eq!(b.trail_len() + b.dropped_entries(), b.queries_seen());

        // Unbounded retention never drops.
        let mut c = QueryAuditor::new(None);
        for i in 0..4 {
            c.admit(&format!("q{i}"));
        }
        assert_eq!(c.dropped_entries(), 0);
        assert_eq!(c.trail_len() + c.dropped_entries(), c.queries_seen());

        // Policy refusals are attempts too; their records evict like any
        // other once the cap is hit.
        let mut d = QueryAuditor::with_trail_cap(None, 1);
        d.admit("kept-then-evicted");
        d.refuse_with(|| "vetoed".to_owned());
        assert_eq!(d.trail_len(), 1);
        assert_eq!(d.dropped_entries(), 1);
        assert_eq!(d.trail_len() + d.dropped_entries(), d.queries_seen());
    }

    #[test]
    fn trail_cap_interacts_with_query_cap() {
        let mut a = QueryAuditor::with_trail_cap(Some(2), 2);
        assert!(a.admit("a"));
        assert!(a.admit("b"));
        assert!(!a.admit("c"));
        let t = trail_vec(&a);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].description, "b");
        assert!(t[0].admitted);
        assert_eq!(t[1].description, "c");
        assert!(!t[1].admitted);
    }
}
