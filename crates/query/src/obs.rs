//! so-query observability: engine call counters and audit-trail metrics
//! published to the `so-obs` global registry.
//!
//! Plan-level counters (scans, node evaluations, cache hits) are published
//! by `so-plan` itself; this module adds the engine-level view — how many
//! single-query calls were served, how many bypassed the cache as volatile,
//! how many workloads were executed — plus the [`QueryAuditor`] retention
//! metrics (`so_query_audit_dropped_total`, `so_query_audit_trail_len`).
//!
//! [`QueryAuditor`]: crate::audit::QueryAuditor

use std::sync::OnceLock;

use so_obs::{global, Counter, Gauge};

/// Cached handles to the query-layer metrics in the [`so_obs::global`]
/// registry. Fetch once via [`query_metrics`]; updates are lock-free.
#[derive(Debug)]
pub struct QueryMetrics {
    /// `so_query_count_calls_total` — single-query
    /// [`CountingEngine::count`](crate::engine::CountingEngine::count)
    /// calls admitted by the auditor.
    pub count_calls: Counter,
    /// `so_query_volatile_scans_total` — admitted calls answered by an
    /// uncached scan because the predicate's shape is not cache-stable.
    pub volatile_scans: Counter,
    /// `so_query_workloads_total` — whole workloads executed through
    /// [`CountingEngine::execute_workload`](crate::engine::CountingEngine::execute_workload).
    pub workloads: Counter,
    /// `so_query_audit_dropped_total` — audit-trail records not retained
    /// (cap evictions plus zero-retention records), summed over all
    /// auditors in the process.
    pub audit_dropped: Counter,
    /// `so_query_audit_trail_len` — retained trail depth of the most
    /// recently updated auditor (last writer wins across auditors).
    pub audit_trail_len: Gauge,
}

/// The query layer's global metric handles, registered on first use.
pub fn query_metrics() -> &'static QueryMetrics {
    static METRICS: OnceLock<QueryMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        QueryMetrics {
            count_calls: r.counter("so_query_count_calls_total"),
            volatile_scans: r.counter("so_query_volatile_scans_total"),
            workloads: r.counter("so_query_workloads_total"),
            audit_dropped: r.counter("so_query_audit_dropped_total"),
            audit_trail_len: r.gauge("so_query_audit_trail_len"),
        }
    })
}
