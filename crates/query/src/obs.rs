//! so-query observability: engine call counters and audit-trail metrics
//! published to the `so-obs` global registry.
//!
//! Plan-level counters (scans, node evaluations, cache hits) are published
//! by `so-plan` itself; this module adds the engine-level view — how many
//! single-query calls were served, how many bypassed the cache as volatile,
//! how many workloads were executed — plus the [`QueryAuditor`] retention
//! metrics (`so_query_audit_dropped_total`, `so_query_audit_trail_len`).
//!
//! [`QueryAuditor`]: crate::audit::QueryAuditor

use std::sync::OnceLock;

use so_obs::{global, Counter, Gauge};

/// Cached handles to the query-layer metrics in the [`so_obs::global`]
/// registry. Fetch once via [`query_metrics`]; updates are lock-free.
#[derive(Debug)]
pub struct QueryMetrics {
    /// `so_query_count_calls_total` — single-query
    /// [`CountingEngine::count`](crate::engine::CountingEngine::count)
    /// calls admitted by the auditor.
    pub count_calls: Counter,
    /// `so_query_volatile_scans_total` — admitted calls answered by an
    /// uncached scan because the predicate's shape is not cache-stable.
    pub volatile_scans: Counter,
    /// `so_query_workloads_total` — whole workloads executed through
    /// [`CountingEngine::execute_workload`](crate::engine::CountingEngine::execute_workload).
    pub workloads: Counter,
    /// `so_query_audit_dropped_total` — audit-trail records not retained
    /// (cap evictions plus zero-retention records), summed over all
    /// auditors in the process.
    pub audit_dropped: Counter,
    /// `so_query_audit_trail_len` — retained trail depth of the most
    /// recently updated auditor (last writer wins across auditors).
    pub audit_trail_len: Gauge,
    /// `so_query_delta_repairs_total` — segment caches rebuilt by the
    /// incremental engine because the segment's dataset version moved
    /// (delta-scan repair), including first-time builds.
    pub delta_repairs: Counter,
    /// `so_query_delta_hits_total` — segments served from a warm cache
    /// (version unchanged since the last workload) by the incremental
    /// engine.
    pub delta_segment_hits: Counter,
    /// `so_query_shortcut_atoms_total` — atom selections synthesized from a
    /// delta segment's touched-column set instead of scanned.
    pub shortcut_atoms: Counter,
}

/// The query layer's global metric handles, registered on first use.
pub fn query_metrics() -> &'static QueryMetrics {
    static METRICS: OnceLock<QueryMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        QueryMetrics {
            count_calls: r.counter("so_query_count_calls_total"),
            volatile_scans: r.counter("so_query_volatile_scans_total"),
            workloads: r.counter("so_query_workloads_total"),
            audit_dropped: r.counter("so_query_audit_dropped_total"),
            audit_trail_len: r.gauge("so_query_audit_trail_len"),
            delta_repairs: r.counter("so_query_delta_repairs_total"),
            delta_segment_hits: r.counter("so_query_delta_hits_total"),
            shortcut_atoms: r.counter("so_query_shortcut_atoms_total"),
        }
    })
}
