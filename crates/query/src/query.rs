//! Query types: subset-sum queries over binary datasets and predicate
//! counting queries over record collections.

use crate::predicate::Predicate;

// The subset-sum query type moved into the `so-plan` compilation pipeline so
// workload specs can carry it without depending on this crate; the historical
// `so_query::query::SubsetQuery` path keeps working through this re-export.
pub use so_plan::subset::SubsetQuery;

/// A counting query `M_#q(x) = Σ_i q(x_i)` (the mechanism of Theorem 2.5),
/// carrying its predicate.
pub struct CountQuery<R: ?Sized, P: Predicate<R>> {
    /// The predicate `q` being counted.
    pub predicate: P,
    _marker: std::marker::PhantomData<fn(&R)>,
}

impl<R: ?Sized, P: Predicate<R>> CountQuery<R, P> {
    /// Wraps a predicate as a counting query.
    pub fn new(predicate: P) -> Self {
        CountQuery {
            predicate,
            _marker: std::marker::PhantomData,
        }
    }

    /// Exact count over a slice of records.
    pub fn answer(&self, records: &[R]) -> usize
    where
        R: Sized,
    {
        count(records, &self.predicate)
    }
}

/// Counts records in `records` satisfying `p`.
pub fn count<R>(records: &[R], p: &(impl Predicate<R> + ?Sized)) -> usize {
    records.iter().filter(|r| p.eval(r)).count()
}

/// Returns the indices of records satisfying `p`.
pub fn matching_indices<R>(records: &[R], p: &(impl Predicate<R> + ?Sized)) -> Vec<usize> {
    records
        .iter()
        .enumerate()
        .filter(|(_, r)| p.eval(r))
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{BitExtractPredicate, FnPredicate};
    use so_data::BitVec;

    #[test]
    fn subset_query_true_answer() {
        let x = BitVec::from_bools(&[true, false, true, true, false]);
        let q = SubsetQuery::from_indices(5, &[0, 1, 2]);
        assert_eq!(q.true_answer(&x), 2);
        assert_eq!(q.size(), 3);
        assert_eq!(q.n(), 5);
        assert!(q.contains(1));
        assert!(!q.contains(3));
    }

    #[test]
    fn full_and_empty_queries() {
        let x = BitVec::from_bools(&[true, true, false, true]);
        let all = SubsetQuery::from_indices(4, &[0, 1, 2, 3]);
        let none = SubsetQuery::from_indices(4, &[]);
        assert_eq!(all.true_answer(&x), 3);
        assert_eq!(none.true_answer(&x), 0);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn size_mismatch_panics() {
        let x = BitVec::zeros(4);
        SubsetQuery::from_indices(5, &[0]).true_answer(&x);
    }

    #[test]
    fn subset_query_spanning_many_words() {
        let n = 200;
        let mut x = BitVec::zeros(n);
        for i in (0..n).step_by(3) {
            x.set(i, true);
        }
        let q = SubsetQuery::from_indices(n, &(0..n).step_by(2).collect::<Vec<_>>());
        // Indices divisible by 6: in both the query (even) and data (mult 3).
        let expected = (0..n).filter(|i| i % 6 == 0).count() as u64;
        assert_eq!(q.true_answer(&x), expected);
    }

    #[test]
    fn count_query_counts() {
        let records = vec![
            BitVec::from_bools(&[true, false]),
            BitVec::from_bools(&[false, false]),
            BitVec::from_bools(&[true, true]),
        ];
        let q = CountQuery::new(BitExtractPredicate {
            bit: 0,
            value: true,
        });
        assert_eq!(q.answer(&records), 2);
    }

    #[test]
    fn matching_indices_returns_positions() {
        let records: Vec<u32> = vec![1, 4, 7, 10];
        let p = FnPredicate::<u32>::new("even", |x| x % 2 == 0);
        assert_eq!(matching_indices(&records, &p), vec![1, 3]);
        assert_eq!(count(&records, &p), 2);
    }
}
