//! Mutation transcripts: replayable interleavings of inserts, deletes, and
//! workloads against an [`IncrementalEngine`].
//!
//! A [`MutationTranscript`] is pure data — a starting relation plus an
//! ordered op list — and [`MutationTranscript::replay`] is a pure function
//! of (transcript, [`ReplayConfig`]): the textual log and the per-workload
//! answers it produces must be *byte-identical* across thread counts,
//! storage engines, and schedule policies, and the answers must further be
//! identical across compaction thresholds (the log may differ there, since
//! it narrates segment layout). The E19 experiment checks a transcript of
//! this shape into the repo and CI replays it under every configuration
//! axis; the proptests in `tests/transcript_proptests.rs` do the same for
//! *arbitrary* generated transcripts, and additionally compare every answer
//! against a from-scratch rebuild of the final logical relation.
//!
//! Transcripts deliberately carry no randomness and no clock: determinism
//! is the whole point. Rows are plain [`Value`] vectors; `Str` values are
//! only replayable if their symbols appear in the initial rows (the
//! interner is frozen once the base dataset is built — see
//! [`so_data::Dataset::append_rows`]).

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::Arc;

use so_data::{Dataset, DatasetBuilder, Schema, StorageEngine, Value, VersionedDataset};
use so_plan::parallel::{ParallelExecutor, SchedulePolicy};
use so_plan::shape::PredShape;
use so_plan::workload::{Noise, WorkloadSpec};

use crate::engine::{CountingEngine, WorkloadAnswer};
use crate::incremental::{IncrementalEngine, IncrementalStats};

/// One step of a mutation transcript.
#[derive(Debug, Clone)]
pub enum MutationOp {
    /// Append rows (each row must match the schema arity).
    Insert {
        /// Rows to append, in order.
        rows: Vec<Vec<Value>>,
    },
    /// Tombstone rows addressed by *live index* at the time the op runs.
    /// Indices address the pre-delete live ordering; out-of-range indices
    /// are clamped away by the generator, never by replay (replay panics,
    /// matching [`VersionedDataset::delete_live`]).
    DeleteLive {
        /// Live indices to delete (duplicates collapse).
        indices: Vec<usize>,
    },
    /// Execute a counting workload over the current live rows.
    Workload {
        /// Query shapes, pushed in order.
        shapes: Vec<PredShape>,
        /// Noise annotation applied to every query in this workload.
        noise: Noise,
    },
}

/// A replayable interleaving of mutations and workloads.
#[derive(Debug, Clone)]
pub struct MutationTranscript {
    /// Schema of the relation.
    pub schema: Arc<Schema>,
    /// Rows of the initial (version 0) dataset.
    pub initial: Vec<Vec<Value>>,
    /// Ordered operations.
    pub ops: Vec<MutationOp>,
}

/// The explicit execution configuration for a replay. Env knobs
/// (`SO_THREADS`, `SO_STORAGE`, `SO_SCHEDULE`, `SO_COMPACT_THRESHOLD`) are
/// process-global; tests sweep configurations by passing them here instead.
#[derive(Debug, Clone, Copy)]
pub struct ReplayConfig {
    /// Worker threads for per-segment plan execution.
    pub threads: usize,
    /// Shard schedule (static ranges or morsel stealing).
    pub policy: SchedulePolicy,
    /// Columnar storage engine for the base and every delta segment.
    pub engine: StorageEngine,
    /// Delta-segment count that triggers compaction.
    pub compact_threshold: usize,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            threads: 1,
            policy: SchedulePolicy::Static,
            engine: StorageEngine::Packed,
            compact_threshold: so_data::DEFAULT_COMPACT_THRESHOLD,
        }
    }
}

/// Everything a replay produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Human-readable narration, one line per op plus a trailing summary.
    /// Byte-identical across threads, engines, and schedules for a fixed
    /// compaction threshold.
    pub log: String,
    /// Per-workload answers, in op order.
    pub answers: Vec<Vec<WorkloadAnswer>>,
    /// The engine's deterministic repair/shortcut tallies.
    pub stats: IncrementalStats,
    /// Final dataset version.
    pub version: u64,
    /// Final live row count.
    pub n_live: usize,
}

impl MutationTranscript {
    /// Replays the transcript through an [`IncrementalEngine`] under an
    /// explicit configuration.
    pub fn replay(&self, cfg: &ReplayConfig) -> ReplayOutcome {
        let ds = self.build_initial(cfg.engine);
        let mut eng = IncrementalEngine::new(
            VersionedDataset::with_compact_threshold(ds, cfg.compact_threshold),
            None,
        );
        eng.set_executor(ParallelExecutor::with_threads_and_policy(
            cfg.threads,
            cfg.policy,
        ));
        let mut log = String::new();
        let mut answers = Vec::new();
        for op in &self.ops {
            match op {
                MutationOp::Insert { rows } => {
                    let eff = eng.insert_rows(rows);
                    let _ = writeln!(
                        log,
                        "insert {} rows -> v{} ({} segments, {} live)",
                        eff.rows_inserted,
                        eff.version,
                        eng.dataset().n_segments(),
                        eng.dataset().n_live(),
                    );
                }
                MutationOp::DeleteLive { indices } => {
                    let eff = eng.delete_live(indices);
                    let _ = writeln!(
                        log,
                        "delete {} live rows -> v{} ({} live)",
                        eff.rows_deleted,
                        eff.version,
                        eng.dataset().n_live(),
                    );
                }
                MutationOp::Workload { shapes, noise } => {
                    let spec = build_workload(eng.dataset().n_live(), shapes, *noise);
                    let w = eng.execute_workload(&spec);
                    let rendered: Vec<String> = w
                        .answers
                        .iter()
                        .map(|a| match a {
                            WorkloadAnswer::Count(c) => c.to_string(),
                            WorkloadAnswer::Refused => "refused".to_owned(),
                            WorkloadAnswer::Unanswerable => "unanswerable".to_owned(),
                        })
                        .collect();
                    let _ = writeln!(
                        log,
                        "workload {} queries -> [{}]",
                        w.answers.len(),
                        rendered.join(", "),
                    );
                    answers.push(w.answers);
                }
            }
        }
        let stats = eng.stats();
        let _ = writeln!(
            log,
            "final v{} ({} live); repairs={} hits={} shortcut_atoms={} compactions={}",
            eng.dataset().version(),
            eng.dataset().n_live(),
            stats.segment_repairs,
            stats.segment_hits,
            stats.shortcut_atoms,
            stats.compactions,
        );
        ReplayOutcome {
            log,
            answers,
            stats,
            version: eng.dataset().version(),
            n_live: eng.dataset().n_live(),
        }
    }

    /// The from-scratch oracle: maintains the logical live relation as a
    /// plain row vector, and answers each workload by rebuilding an
    /// immutable [`Dataset`] of the current live rows and executing the
    /// workload through [`CountingEngine`]. Shares no code with the
    /// incremental path beyond the scan kernels themselves.
    pub fn oracle_answers(&self, engine: StorageEngine) -> Vec<Vec<WorkloadAnswer>> {
        let mut live: Vec<Vec<Value>> = self.initial.clone();
        let mut answers = Vec::new();
        for op in &self.ops {
            match op {
                MutationOp::Insert { rows } => live.extend(rows.iter().cloned()),
                MutationOp::DeleteLive { indices } => {
                    // Indices address the pre-delete ordering; collapse
                    // duplicates and remove back-to-front so earlier
                    // removals don't shift later targets.
                    let dedup: BTreeSet<usize> = indices.iter().copied().collect();
                    for &idx in dedup.iter().rev() {
                        assert!(idx < live.len(), "oracle: live index {idx} out of range");
                        live.remove(idx);
                    }
                }
                MutationOp::Workload { shapes, noise } => {
                    let mut b = DatasetBuilder::new(self.schema.clone());
                    for row in &live {
                        b.push_row(row.clone());
                    }
                    let ds = b.finish_with_engine(engine);
                    let spec = build_workload(ds.n_rows(), shapes, *noise);
                    let mut eng = CountingEngine::new(&ds, None);
                    answers.push(eng.execute_workload(&spec).answers);
                }
            }
        }
        answers
    }

    /// Number of live rows after every op has run (without replaying plans).
    pub fn final_live_rows(&self) -> usize {
        let mut live = self.initial.len();
        for op in &self.ops {
            match op {
                MutationOp::Insert { rows } => live += rows.len(),
                MutationOp::DeleteLive { indices } => {
                    let dedup: BTreeSet<usize> = indices.iter().copied().collect();
                    live -= dedup.len();
                }
                MutationOp::Workload { .. } => {}
            }
        }
        live
    }

    fn build_initial(&self, engine: StorageEngine) -> Dataset {
        let mut b = DatasetBuilder::new(self.schema.clone());
        for row in &self.initial {
            b.push_row(row.clone());
        }
        b.finish_with_engine(engine)
    }
}

fn build_workload(n_rows: usize, shapes: &[PredShape], noise: Noise) -> WorkloadSpec {
    let mut spec = WorkloadSpec::new(n_rows);
    for s in shapes {
        spec.push_shape(s, noise);
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use so_data::{AttributeDef, AttributeRole, DataType};

    fn schema() -> Arc<Schema> {
        Schema::new(vec![
            AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("score", DataType::Int, AttributeRole::Sensitive),
        ])
    }

    fn sample_transcript() -> MutationTranscript {
        let initial: Vec<Vec<Value>> = (0..150)
            .map(|i| vec![Value::Int(i % 90), Value::Int(i % 25)])
            .collect();
        let shapes = vec![
            PredShape::IntRange {
                col: 0,
                lo: 10,
                hi: 40,
            },
            PredShape::And(vec![
                PredShape::IntRange {
                    col: 0,
                    lo: 0,
                    hi: 60,
                },
                PredShape::ValueEquals {
                    col: 1,
                    value: Value::Int(3),
                },
            ]),
            PredShape::ValueEquals {
                col: 1,
                value: Value::Missing,
            },
        ];
        MutationTranscript {
            schema: schema(),
            initial,
            ops: vec![
                MutationOp::Workload {
                    shapes: shapes.clone(),
                    noise: Noise::Exact,
                },
                MutationOp::Insert {
                    rows: vec![
                        vec![Value::Int(20), Value::Int(3)],
                        vec![Value::Missing, Value::Int(3)],
                    ],
                },
                MutationOp::DeleteLive {
                    indices: vec![0, 5, 5, 149],
                },
                MutationOp::Workload {
                    shapes: shapes.clone(),
                    noise: Noise::Exact,
                },
                MutationOp::Insert {
                    rows: vec![vec![Value::Int(33), Value::Int(3)]],
                },
                MutationOp::Workload {
                    shapes,
                    noise: Noise::PureDp { epsilon: 0.5 },
                },
            ],
        }
    }

    #[test]
    fn replay_matches_oracle_and_is_config_invariant() {
        let t = sample_transcript();
        let reference = t.replay(&ReplayConfig::default());
        assert_eq!(
            reference.answers,
            t.oracle_answers(StorageEngine::Packed),
            "incremental replay diverged from the from-scratch oracle"
        );
        assert_eq!(reference.n_live, t.final_live_rows());
        for &engine in &[StorageEngine::Packed, StorageEngine::Uncompressed] {
            for &policy in &[SchedulePolicy::Static, SchedulePolicy::Morsel] {
                for threads in [1usize, 3, 8] {
                    let out = t.replay(&ReplayConfig {
                        threads,
                        policy,
                        engine,
                        compact_threshold: so_data::DEFAULT_COMPACT_THRESHOLD,
                    });
                    assert_eq!(
                        out, reference,
                        "replay diverged at {threads} threads / {policy:?} / {engine:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn answers_are_invariant_across_compaction_thresholds() {
        let t = sample_transcript();
        let a1 = t.replay(&ReplayConfig {
            compact_threshold: 1,
            ..ReplayConfig::default()
        });
        let a_huge = t.replay(&ReplayConfig {
            compact_threshold: 1_000_000,
            ..ReplayConfig::default()
        });
        assert_eq!(a1.answers, a_huge.answers);
        assert_eq!(a1.version, a_huge.version, "versions count mutations only");
        assert_eq!(a1.n_live, a_huge.n_live);
        assert!(a1.stats.compactions > 0);
        assert_eq!(a_huge.stats.compactions, 0);
    }

    #[test]
    fn log_narrates_every_op() {
        let t = sample_transcript();
        let out = t.replay(&ReplayConfig::default());
        let lines: Vec<&str> = out.log.lines().collect();
        assert_eq!(lines.len(), t.ops.len() + 1, "one line per op plus summary");
        assert!(lines[0].starts_with("workload 3 queries -> ["));
        assert!(lines[1].starts_with("insert 2 rows -> v1"));
        assert!(lines[2].starts_with("delete 3 live rows -> v2"));
        assert!(lines.last().unwrap().starts_with("final v"));
    }
}
