#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! # so-query — statistical query engine
//!
//! The paper's attacks all interact with data through *statistical queries*:
//!
//! * the Dinur–Nissim reconstruction setting (§1, Theorem 1.1) issues
//!   **subset-sum queries** `q ⊆ [n]` against a binary dataset
//!   `x ∈ {0,1}^n`, answered by a mechanism with bounded error `α`;
//! * the predicate-singling-out framework (§2) evaluates **predicates**
//!   `p : X → {0,1}` on records and publishes **counts**
//!   `M_#q(x) = Σ_i q(x_i)` (Theorem 2.5).
//!
//! This crate provides both: concrete typed predicates with combinators and
//! keyed-hash random predicate families (the Leftover-Hash-Lemma-style
//! predicates of §2.2), row predicates over tabular [`so_data::Dataset`]s,
//! subset-sum queries with exact / bounded-noise answer mechanisms, and a
//! query auditor that tracks how much of the "fundamental law of information
//! recovery" budget a client has consumed.
//!
//! Compilation — predicate traits, structural shapes, the hash-consed IR,
//! workload specs, and the bitmap kernels — lives below this crate in
//! `so-plan`; the historical `so_query` paths for those items re-export it.
//! [`CountingEngine`] executes single queries and whole workloads
//! ([`CountingEngine::execute_workload`]) through that one pipeline.

pub mod audit;
pub mod engine;
pub mod incremental;
pub mod mechanism;
pub mod obs;
pub mod predicate;
pub mod query;
pub mod shape;
pub mod transcript;
pub mod workload;

pub use audit::{AuditRecord, QueryAuditor};
pub use engine::{
    count_dataset, count_dataset_scalar, scan_dataset, select_dataset, select_dataset_scalar,
    CountingEngine, WorkloadAnswer, WorkloadAnswers,
};
pub use incremental::{IncrementalEngine, IncrementalStats};
pub use mechanism::{BoundedNoiseSum, ExactSum, RoundingSum, SubsetSumMechanism};
pub use obs::{query_metrics, QueryMetrics};
pub use predicate::{
    canonical_bytes, AllRowPredicate, AndPredicate, AnyRowPredicate, BitExtractPredicate,
    FnPredicate, FnRowPredicate, IntRangePredicate, KeyedHashPredicate, NotPredicate,
    NotRowPredicate, OrPredicate, Predicate, PrefixPredicate, RowHashPredicate, RowPredicate,
    ValueEqualsPredicate,
};
pub use query::{count, matching_indices, CountQuery, SubsetQuery};
pub use shape::PredShape;
pub use transcript::{MutationOp, MutationTranscript, ReplayConfig, ReplayOutcome};
pub use workload::{
    all_subsets_workload, prefix_workload, random_subset_workload, tracker_workload,
};
