//! Query workload generators.
//!
//! The reconstruction literature distinguishes attack power by the *shape*
//! of the query workload: all subsets (Theorem 1.1(i)), polynomially many
//! random subsets (Theorem 1.1(ii)), intervals/prefixes (range-query
//! engines), and singletons+complements (the differencing tracker). These
//! generators make the workloads first-class values so experiments and
//! benches can sweep over them.

use rand::Rng;

use crate::query::SubsetQuery;

/// `m` random subset queries with independent inclusion probability
/// `density` — the Theorem 1.1(ii) workload at `density = 0.5`.
pub fn random_subset_workload<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    density: f64,
    rng: &mut R,
) -> Vec<SubsetQuery> {
    assert!((0.0..=1.0).contains(&density), "bad density {density}");
    (0..m)
        .map(|_| {
            let mut members = so_data::BitVec::zeros(n);
            for i in 0..n {
                members.set(i, rng.gen::<f64>() < density);
            }
            SubsetQuery::new(members)
        })
        .collect()
}

/// Every subset of `[n]` — the Theorem 1.1(i) workload.
///
/// # Panics
/// Panics if `n > 20` (2^n queries).
pub fn all_subsets_workload(n: usize) -> Vec<SubsetQuery> {
    assert!(n <= 20, "all-subsets workload limited to n <= 20 (got {n})");
    (0..(1u64 << n))
        .map(|mask| {
            let mut members = so_data::BitVec::zeros(n);
            for i in 0..n {
                if (mask >> i) & 1 == 1 {
                    members.set(i, true);
                }
            }
            SubsetQuery::new(members)
        })
        .collect()
}

/// The `n + 1` prefix queries `[0..k)` for `k = 0..=n` — the range-query
/// workload. Exact answers to it reveal every record by differencing.
pub fn prefix_workload(n: usize) -> Vec<SubsetQuery> {
    (0..=n)
        .map(|k| SubsetQuery::from_indices(n, &(0..k).collect::<Vec<_>>()))
        .collect()
}

/// The differencing-tracker workload: the full set, then every
/// complement-of-singleton.
pub fn tracker_workload(n: usize) -> Vec<SubsetQuery> {
    let mut out = Vec::with_capacity(n + 1);
    out.push(SubsetQuery::from_indices(n, &(0..n).collect::<Vec<_>>()));
    for t in 0..n {
        let members: Vec<usize> = (0..n).filter(|&i| i != t).collect();
        out.push(SubsetQuery::from_indices(n, &members));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use so_data::rng::seeded_rng;
    use so_data::BitVec;

    #[test]
    fn random_workload_respects_density() {
        let mut rng = seeded_rng(800);
        let w = random_subset_workload(100, 200, 0.25, &mut rng);
        assert_eq!(w.len(), 200);
        let mean_size: f64 = w.iter().map(|q| q.size() as f64).sum::<f64>() / w.len() as f64;
        assert!((20.0..=30.0).contains(&mean_size), "mean size {mean_size}");
    }

    #[test]
    fn all_subsets_enumerates_exactly() {
        let w = all_subsets_workload(4);
        assert_eq!(w.len(), 16);
        // Distinct masks.
        let mut masks: Vec<u64> = w.iter().map(|q| q.members().low_u64()).collect();
        masks.sort_unstable();
        masks.dedup();
        assert_eq!(masks.len(), 16);
    }

    #[test]
    #[should_panic(expected = "limited to n <= 20")]
    fn all_subsets_rejects_large_n() {
        all_subsets_workload(24);
    }

    #[test]
    fn prefix_workload_is_nested() {
        let w = prefix_workload(5);
        assert_eq!(w.len(), 6);
        for (k, q) in w.iter().enumerate() {
            assert_eq!(q.size(), k);
        }
        // Differencing adjacent prefixes recovers each record.
        let x = BitVec::from_bools(&[true, false, true, true, false]);
        for i in 0..5 {
            let diff = w[i + 1].true_answer(&x) - w[i].true_answer(&x);
            assert_eq!(diff == 1, x.get(i));
        }
    }

    #[test]
    fn tracker_workload_shape() {
        let w = tracker_workload(6);
        assert_eq!(w.len(), 7);
        assert_eq!(w[0].size(), 6);
        for t in 0..6 {
            assert_eq!(w[t + 1].size(), 5);
            assert!(!w[t + 1].contains(t));
        }
    }
}
