//! Answer mechanisms for subset-sum queries.
//!
//! Theorem 1.1 is a statement about mechanisms whose answers are within
//! additive error `α` of the truth: reconstruction succeeds when `α = c·n`
//! (exhaustive queries) or `α = c'·√n` (polynomially many). The mechanisms
//! here realize that model:
//!
//! * [`ExactSum`] — answers truthfully (α = 0);
//! * [`BoundedNoiseSum`] — adds independent noise uniform in `[-α, +α]`,
//!   saturating the error budget the theorem allows.
//!
//! The differentially private Laplace mechanism (unbounded tails, but
//! concentrated) lives in `so-dp` and implements the same trait, so the
//! reconstruction attacks can be pointed at DP-protected data unchanged.

use rand::Rng;

use so_data::BitVec;
use so_plan::parallel::ParallelExecutor;

use crate::query::SubsetQuery;

/// A (possibly stateful, possibly randomized) mechanism answering subset-sum
/// queries against a fixed private dataset.
pub trait SubsetSumMechanism {
    /// Answers one query.
    fn answer(&mut self, query: &SubsetQuery) -> f64;

    /// Answers a whole workload in declaration order — the batch entry point
    /// the reconstruction attacks use, mirroring the predicate-side
    /// `CountingEngine::execute_workload`. The default is the obvious loop;
    /// mechanisms with batch structure may override it, but must keep the
    /// same per-query answer distribution and the same internal state
    /// evolution as repeated [`SubsetSumMechanism::answer`] calls.
    fn answer_all(&mut self, queries: &[SubsetQuery]) -> Vec<f64> {
        queries.iter().map(|q| self.answer(q)).collect()
    }

    /// The dataset size `n` this mechanism serves.
    fn n(&self) -> usize;
}

/// Truthful mechanism: `a_q = Σ_{i∈q} x_i`.
pub struct ExactSum {
    x: BitVec,
}

impl ExactSum {
    /// Serves the secret dataset `x`.
    pub fn new(x: BitVec) -> Self {
        ExactSum { x }
    }
}

impl SubsetSumMechanism for ExactSum {
    fn answer(&mut self, query: &SubsetQuery) -> f64 {
        query.true_answer(&self.x) as f64
    }

    /// Batch answers fan out across worker threads (`SO_THREADS` override):
    /// the mechanism is stateless and each answer is an exact integer
    /// popcount, so chunked evaluation merged in declaration order is
    /// bit-identical to the serial loop at every thread count.
    fn answer_all(&mut self, queries: &[SubsetQuery]) -> Vec<f64> {
        let x = &self.x;
        ParallelExecutor::from_env()
            .map_chunks(queries.len(), |r| {
                queries[r]
                    .iter()
                    .map(|q| q.true_answer(x) as f64)
                    .collect::<Vec<f64>>()
            })
            .concat()
    }

    fn n(&self) -> usize {
        self.x.len()
    }
}

/// Bounded-noise mechanism: `a_q = Σ_{i∈q} x_i + η`, `η ~ Uniform[-α, +α]`.
///
/// Every answer is guaranteed within `α` of the truth — the exact error
/// model of Theorem 1.1.
pub struct BoundedNoiseSum<R: Rng> {
    x: BitVec,
    alpha: f64,
    rng: R,
}

impl<R: Rng> BoundedNoiseSum<R> {
    /// Serves `x` with noise magnitude `alpha ≥ 0`.
    ///
    /// # Panics
    /// Panics if `alpha` is negative or non-finite.
    pub fn new(x: BitVec, alpha: f64, rng: R) -> Self {
        assert!(alpha >= 0.0 && alpha.is_finite(), "bad alpha {alpha}");
        BoundedNoiseSum { x, alpha, rng }
    }

    /// The configured noise bound α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl<R: Rng> SubsetSumMechanism for BoundedNoiseSum<R> {
    fn answer(&mut self, query: &SubsetQuery) -> f64 {
        let truth = query.true_answer(&self.x) as f64;
        if self.alpha == 0.0 {
            truth
        } else {
            truth + self.rng.gen_range(-self.alpha..=self.alpha)
        }
    }

    // `answer_all` deliberately keeps the serial default: each answer draws
    // from the mechanism's RNG, and the trait contract requires batch
    // answers to evolve that state exactly as repeated `answer` calls would.
    // Splitting the single noise stream across threads would change which
    // query gets which draw depending on the thread count.

    fn n(&self) -> usize {
        self.x.len()
    }
}

/// Adversarial rounding mechanism: deterministically rounds the true answer
/// *down* to a multiple of `⌊α⌋ + 1`, maximizing the attacker's confusion
/// within the error budget. An integer truth sits at most `⌊α⌋ ≤ α` above
/// the grid point below it, so every answer satisfies `|answer − truth| ≤ α`
/// — the exact error model of Theorem 1.1. Used as the *worst-case* (for
/// the attacker) instance of the bounded-error model in the reconstruction
/// benchmarks.
pub struct RoundingSum {
    x: BitVec,
    alpha: f64,
}

impl RoundingSum {
    /// Serves `x`, flooring answers to the grid of spacing `⌊α⌋ + 1`.
    ///
    /// # Panics
    /// Panics if `alpha` is negative or non-finite.
    pub fn new(x: BitVec, alpha: f64) -> Self {
        assert!(alpha >= 0.0 && alpha.is_finite(), "bad alpha {alpha}");
        RoundingSum { x, alpha }
    }

    /// The grid spacing `⌊α⌋ + 1` the answers land on.
    pub fn grid(&self) -> f64 {
        self.alpha.floor() + 1.0
    }
}

impl SubsetSumMechanism for RoundingSum {
    fn answer(&mut self, query: &SubsetQuery) -> f64 {
        let truth = query.true_answer(&self.x) as f64;
        // Floor to the grid: an integer truth exceeds the grid point below
        // it by at most grid − 1 = ⌊α⌋ ≤ α.
        (truth / self.grid()).floor() * self.grid()
    }

    /// Batch answers fan out across worker threads (`SO_THREADS` override):
    /// rounding is a deterministic, stateless function of each query's exact
    /// count, so chunked evaluation merged in declaration order is
    /// bit-identical to the serial loop at every thread count.
    fn answer_all(&mut self, queries: &[SubsetQuery]) -> Vec<f64> {
        let x = &self.x;
        let grid = self.grid();
        ParallelExecutor::from_env()
            .map_chunks(queries.len(), |r| {
                queries[r]
                    .iter()
                    .map(|q| (q.true_answer(x) as f64 / grid).floor() * grid)
                    .collect::<Vec<f64>>()
            })
            .concat()
    }

    fn n(&self) -> usize {
        self.x.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use so_data::rng::seeded_rng;

    fn secret() -> BitVec {
        BitVec::from_bools(&[true, false, true, true, false, false, true, false])
    }

    #[test]
    fn exact_mechanism_is_truthful() {
        let mut m = ExactSum::new(secret());
        let q = SubsetQuery::from_indices(8, &[0, 2, 3, 6]);
        assert_eq!(m.answer(&q), 4.0);
        assert_eq!(m.n(), 8);
    }

    #[test]
    fn bounded_noise_stays_within_alpha() {
        let alpha = 2.5;
        let mut m = BoundedNoiseSum::new(secret(), alpha, seeded_rng(3));
        for trial in 0..200 {
            let q = SubsetQuery::from_indices(8, &[trial % 8, (trial + 3) % 8]);
            let truth = q.true_answer(&secret()) as f64;
            let a = m.answer(&q);
            assert!((a - truth).abs() <= alpha + 1e-12, "error too large");
        }
    }

    #[test]
    fn zero_alpha_is_exact() {
        let mut m = BoundedNoiseSum::new(secret(), 0.0, seeded_rng(4));
        let q = SubsetQuery::from_indices(8, &[1, 2]);
        assert_eq!(m.answer(&q), 1.0);
    }

    #[test]
    #[should_panic(expected = "bad alpha")]
    fn negative_alpha_rejected() {
        BoundedNoiseSum::new(secret(), -1.0, seeded_rng(5));
    }

    #[test]
    fn rounding_mechanism_error_bounded() {
        // The Theorem 1.1 contract: |answer − truth| ≤ α for integer truths.
        for alpha in [0.0, 1.0, 2.5, 3.0, 7.9] {
            let mut m = RoundingSum::new(secret(), alpha);
            for a in 0..8 {
                for b in 0..8 {
                    let q = SubsetQuery::from_indices(8, &[a, b]);
                    let truth = q.true_answer(&secret()) as f64;
                    let ans = m.answer(&q);
                    assert!(
                        (ans - truth).abs() <= alpha + 1e-12,
                        "alpha {alpha}: |{ans} - {truth}| > {alpha}"
                    );
                }
            }
        }
    }

    #[test]
    fn rounding_mechanism_is_deterministic_and_coarse() {
        let mut m = RoundingSum::new(secret(), 1.0);
        let q = SubsetQuery::from_indices(8, &[0, 2, 3, 6]);
        let a1 = m.answer(&q);
        let a2 = m.answer(&q);
        assert_eq!(a1, a2);
        // Answers land on the grid of spacing ⌊α⌋ + 1 = 2.
        assert_eq!(m.grid(), 2.0);
        assert_eq!(a1.rem_euclid(2.0), 0.0);
    }

    #[test]
    fn batch_answers_match_the_serial_loop() {
        // ExactSum and RoundingSum override `answer_all` with a chunked
        // parallel path; the override must be indistinguishable from the
        // default loop.
        let queries: Vec<SubsetQuery> = (0..100)
            .map(|i| SubsetQuery::from_indices(8, &[i % 8, (i + 3) % 8, (i * 5) % 8]))
            .collect();
        let mut exact = ExactSum::new(secret());
        let serial: Vec<f64> = queries.iter().map(|q| exact.answer(q)).collect();
        assert_eq!(exact.answer_all(&queries), serial);
        let mut rounded = RoundingSum::new(secret(), 2.5);
        let serial: Vec<f64> = queries.iter().map(|q| rounded.answer(q)).collect();
        assert_eq!(rounded.answer_all(&queries), serial);
        assert!(exact.answer_all(&[]).is_empty());
    }

    #[test]
    fn rounding_floors_rather_than_rounds_to_nearest() {
        // Truth 4 with α = 3 → grid 4 → answer 4; truth 3 → answer 0.
        let mut m = RoundingSum::new(secret(), 3.0);
        let q4 = SubsetQuery::from_indices(8, &[0, 2, 3, 6]); // truth 4
        assert_eq!(m.answer(&q4), 4.0);
        let q3 = SubsetQuery::from_indices(8, &[0, 2, 3]); // truth 3
        assert_eq!(m.answer(&q3), 0.0);
    }
}
