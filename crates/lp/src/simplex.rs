//! Two-phase primal simplex on a dense tableau.
//!
//! The solver converts a [`Problem`] to standard form (minimize, all
//! variables ≥ 0, rows normalized to non-negative right-hand sides), runs
//! phase 1 with artificial variables to find a basic feasible solution, then
//! phase 2 with the real objective. Pricing is Dantzig's rule (most negative
//! reduced cost) with a permanent switch to Bland's rule after a fixed number
//! of iterations, which guarantees termination on degenerate instances.

use crate::problem::{Objective, Problem, Relation};

/// Solver tuning knobs.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Hard cap on simplex pivots across both phases.
    pub max_iterations: usize,
    /// Pivots before switching from Dantzig to Bland pricing.
    pub bland_after: usize,
    /// Numerical tolerance for zero tests.
    pub tolerance: f64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            max_iterations: 200_000,
            bland_after: 20_000,
            tolerance: 1e-9,
        }
    }
}

/// Hard solver failures (distinct from well-defined LP outcomes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// Pivot budget exhausted (numerical trouble or pathological instance).
    IterationLimit,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::IterationLimit => write!(f, "simplex iteration limit reached"),
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal solution in the problem's original coordinates.
#[derive(Debug, Clone)]
pub struct OptimalSolution {
    /// Optimal variable assignment.
    pub x: Vec<f64>,
    /// Objective value at `x` (in the problem's own sense).
    pub objective: f64,
    /// Simplex pivot iterations across both phases — the solver's cost
    /// measure, surfaced so callers (and the `so-obs` metrics) can report
    /// LP effort per attack.
    pub iterations: usize,
}

/// LP outcome.
#[derive(Debug, Clone)]
pub enum Solution {
    /// Optimum found.
    Optimal(OptimalSolution),
    /// No feasible point exists.
    Infeasible,
    /// Objective unbounded in the optimization direction.
    Unbounded,
}

impl Solution {
    /// Unwraps the optimal solution.
    ///
    /// # Panics
    /// Panics if the outcome is not `Optimal`.
    pub fn expect_optimal(self) -> OptimalSolution {
        match self {
            Solution::Optimal(s) => s,
            other => panic!("expected optimal solution, got {other:?}"),
        }
    }

    /// True iff the outcome is `Optimal`.
    pub fn is_optimal(&self) -> bool {
        matches!(self, Solution::Optimal(_))
    }
}

/// How an original variable maps into standard-form columns.
#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// `x = y[col] + shift`
    Shifted { col: usize, shift: f64 },
    /// `x = y[pos] - y[neg]` (free variable split)
    Split { pos: usize, neg: usize },
}

/// Standard-form program: minimize `c·y` s.t. `A y (rel) b`, `y ≥ 0`.
struct StandardForm {
    n_cols: usize,
    costs: Vec<f64>,
    rows: Vec<(Vec<f64>, Relation, f64)>,
    var_map: Vec<VarMap>,
    negate_objective: bool,
}

/// Sparse row used while assembling bound constraints.
type SparseRow = (Vec<(usize, f64)>, Relation, f64);

fn to_standard_form(p: &Problem) -> StandardForm {
    let mut n_cols = 0usize;
    let mut var_map = Vec::with_capacity(p.n_vars());
    let mut extra_rows: Vec<SparseRow> = Vec::new();
    for b in p.bounds() {
        match (b.lo, b.hi) {
            (Some(lo), hi) => {
                let col = n_cols;
                n_cols += 1;
                var_map.push(VarMap::Shifted { col, shift: lo });
                if let Some(hi) = hi {
                    // y <= hi - lo
                    extra_rows.push((vec![(col, 1.0)], Relation::Le, hi - lo));
                }
            }
            (None, hi) => {
                let pos = n_cols;
                let neg = n_cols + 1;
                n_cols += 2;
                var_map.push(VarMap::Split { pos, neg });
                if let Some(hi) = hi {
                    extra_rows.push((vec![(pos, 1.0), (neg, -1.0)], Relation::Le, hi));
                }
            }
        }
    }

    let negate_objective = p.sense() == Objective::Maximize;
    let mut costs = vec![0.0; n_cols];
    for (v, &c) in p.objective().iter().enumerate() {
        let c = if negate_objective { -c } else { c };
        match var_map[v] {
            VarMap::Shifted { col, .. } => costs[col] += c,
            VarMap::Split { pos, neg } => {
                costs[pos] += c;
                costs[neg] -= c;
            }
        }
    }

    let mut rows = Vec::with_capacity(p.constraints().len() + extra_rows.len());
    for c in p.constraints() {
        let mut coeffs = vec![0.0; n_cols];
        let mut rhs = c.rhs;
        for &(v, a) in &c.coeffs {
            match var_map[v] {
                VarMap::Shifted { col, shift } => {
                    coeffs[col] += a;
                    rhs -= a * shift;
                }
                VarMap::Split { pos, neg } => {
                    coeffs[pos] += a;
                    coeffs[neg] -= a;
                }
            }
        }
        rows.push((coeffs, c.relation, rhs));
    }
    for (sparse, rel, rhs) in extra_rows {
        let mut coeffs = vec![0.0; n_cols];
        for (col, a) in sparse {
            coeffs[col] += a;
        }
        rows.push((coeffs, rel, rhs));
    }

    StandardForm {
        n_cols,
        costs,
        rows,
        var_map,
        negate_objective,
    }
}

/// Dense simplex tableau: `m` constraint rows plus one cost row, stored
/// row-major. Column layout: structural | slack/surplus | artificial | rhs.
struct Tableau {
    m: usize,
    n_total: usize,
    /// `(m + 1) × (n_total + 1)` entries; last row is the cost row, last
    /// column the rhs.
    data: Vec<f64>,
    basis: Vec<usize>,
    first_artificial: usize,
    iterations: usize,
}

impl Tableau {
    fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * (self.n_total + 1) + c]
    }

    fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * (self.n_total + 1) + c]
    }

    fn rhs(&self, r: usize) -> f64 {
        self.at(r, self.n_total)
    }

    fn cost(&self, c: usize) -> f64 {
        self.at(self.m, c)
    }

    /// Gauss-Jordan pivot at `(row, col)`.
    #[allow(clippy::needless_range_loop)] // parallel-array numeric kernel
    fn pivot(&mut self, row: usize, col: usize) {
        let stride = self.n_total + 1;
        let pivot_val = self.at(row, col);
        debug_assert!(pivot_val.abs() > 0.0, "zero pivot");
        let inv = 1.0 / pivot_val;
        for c in 0..stride {
            self.data[row * stride + c] *= inv;
        }
        // Snapshot the pivot row to keep the borrow checker happy while we
        // update the rest of the tableau.
        let pivot_row: Vec<f64> = self.data[row * stride..(row + 1) * stride].to_vec();
        for r in 0..=self.m {
            if r == row {
                continue;
            }
            let factor = self.data[r * stride + col];
            if factor == 0.0 {
                continue;
            }
            for c in 0..stride {
                self.data[r * stride + c] -= factor * pivot_row[c];
            }
            // Eliminate residual round-off in the pivot column explicitly.
            self.data[r * stride + col] = 0.0;
            // Keep constraint rows' rhs non-negative against drift.
            if r < self.m
                && self.data[r * stride + self.n_total] < 0.0
                && self.data[r * stride + self.n_total] > -1e-7
            {
                self.data[r * stride + self.n_total] = 0.0;
            }
        }
        self.basis[row] = col;
        self.iterations += 1;
    }

    /// Chooses the entering column: Dantzig early, Bland after the switch.
    /// `allowed` filters out artificial columns in phase 2.
    fn entering(&self, cfg: &SolverConfig, allow_artificial: bool) -> Option<usize> {
        let limit = if allow_artificial {
            self.n_total
        } else {
            self.first_artificial
        };
        if self.iterations >= cfg.bland_after {
            // Bland: smallest index with negative reduced cost.
            (0..limit).find(|&c| self.cost(c) < -cfg.tolerance)
        } else {
            let mut best: Option<(usize, f64)> = None;
            for c in 0..limit {
                let rc = self.cost(c);
                if rc < -cfg.tolerance && best.map_or(true, |(_, b)| rc < b) {
                    best = Some((c, rc));
                }
            }
            best.map(|(c, _)| c)
        }
    }

    /// Ratio test: leaving row for entering column `col`, or `None` when the
    /// column is unbounded. Ties break toward the smallest basis index
    /// (lexicographic flavor, cooperates with Bland's rule).
    fn leaving(&self, col: usize, cfg: &SolverConfig) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for r in 0..self.m {
            let a = self.at(r, col);
            if a > cfg.tolerance {
                // Negative rhs should not occur, but floating-point drift can
                // graze it; clamp so ratios stay non-negative.
                let ratio = self.rhs(r).max(0.0) / a;
                match best {
                    None => best = Some((r, ratio)),
                    Some((br, bratio)) => {
                        // Exact comparison + Bland-style index tie-break:
                        // choosing a within-tolerance *larger* ratio would
                        // push another row's rhs negative and thrash.
                        if ratio < bratio || (ratio == bratio && self.basis[r] < self.basis[br]) {
                            best = Some((r, ratio));
                        }
                    }
                }
            }
        }
        best.map(|(r, _)| r)
    }
}

enum PhaseOutcome {
    Optimal,
    Unbounded,
}

fn run_phase(
    t: &mut Tableau,
    cfg: &SolverConfig,
    allow_artificial: bool,
) -> Result<PhaseOutcome, LpError> {
    loop {
        if t.iterations >= cfg.max_iterations {
            return Err(LpError::IterationLimit);
        }
        let Some(col) = t.entering(cfg, allow_artificial) else {
            return Ok(PhaseOutcome::Optimal);
        };
        let Some(row) = t.leaving(col, cfg) else {
            return Ok(PhaseOutcome::Unbounded);
        };
        t.pivot(row, col);
    }
}

/// Solves `p` with the given configuration.
#[allow(clippy::needless_range_loop)] // parallel-array tableau assembly
pub fn solve(p: &Problem, cfg: &SolverConfig) -> Result<Solution, LpError> {
    let sf = to_standard_form(p);
    let m = sf.rows.len();

    // Column layout: structural | slack (one per Le/Ge row) | artificial.
    let mut n_slack = 0usize;
    for (_, rel, _) in &sf.rows {
        if !matches!(rel, Relation::Eq) {
            n_slack += 1;
        }
    }
    // Allocate an artificial for every row up front; slack columns double as
    // the initial basis where possible (Le rows with b >= 0).
    let first_slack = sf.n_cols;
    let first_artificial = sf.n_cols + n_slack;
    let n_total = first_artificial + m;
    let stride = n_total + 1;
    let mut data = vec![0.0; (m + 1) * stride];
    let mut basis = vec![usize::MAX; m];
    let mut artificial_used = vec![false; m];

    let mut slack_idx = 0usize;
    for (r, (coeffs, rel, rhs)) in sf.rows.iter().enumerate() {
        // Normalize to b >= 0.
        let flip = *rhs < 0.0;
        let sign = if flip { -1.0 } else { 1.0 };
        for (c, &a) in coeffs.iter().enumerate() {
            data[r * stride + c] = sign * a;
        }
        data[r * stride + n_total] = sign * rhs;
        let effective_rel = match (rel, flip) {
            (Relation::Le, false) | (Relation::Ge, true) => Relation::Le,
            (Relation::Ge, false) | (Relation::Le, true) => Relation::Ge,
            (Relation::Eq, _) => Relation::Eq,
        };
        match effective_rel {
            Relation::Le => {
                let sc = first_slack + slack_idx;
                slack_idx += 1;
                data[r * stride + sc] = 1.0;
                basis[r] = sc;
            }
            Relation::Ge => {
                let sc = first_slack + slack_idx;
                slack_idx += 1;
                data[r * stride + sc] = -1.0; // surplus
                let ac = first_artificial + r;
                data[r * stride + ac] = 1.0;
                basis[r] = ac;
                artificial_used[r] = true;
            }
            Relation::Eq => {
                let ac = first_artificial + r;
                data[r * stride + ac] = 1.0;
                basis[r] = ac;
                artificial_used[r] = true;
            }
        }
    }

    let mut t = Tableau {
        m,
        n_total,
        data,
        basis,
        first_artificial,
        iterations: 0,
    };

    // ---- Phase 1: minimize the sum of artificials ----------------------
    if artificial_used.iter().any(|&u| u) {
        // Cost row = Σ artificial columns; reduce against the basic rows.
        for r in 0..m {
            if artificial_used[r] {
                *t.at_mut(m, first_artificial + r) = 1.0;
            }
        }
        for r in 0..m {
            if artificial_used[r] {
                // Basis var is the artificial with cost 1 → subtract the row.
                for c in 0..stride {
                    t.data[m * stride + c] -= t.data[r * stride + c];
                }
            }
        }
        match run_phase(&mut t, cfg, true)? {
            PhaseOutcome::Unbounded => {
                // Phase-1 objective is bounded below by zero; unbounded here
                // means numerical breakdown. Treat as iteration trouble.
                return Err(LpError::IterationLimit);
            }
            PhaseOutcome::Optimal => {}
        }
        let phase1_obj = -t.rhs(m); // cost row rhs holds -objective
        if phase1_obj > 1e-6 {
            return Ok(Solution::Infeasible);
        }
        // Drive any remaining basic artificials out of the basis.
        for r in 0..m {
            if t.basis[r] >= first_artificial {
                let pivot_col = (0..first_artificial).find(|&c| t.at(r, c).abs() > cfg.tolerance);
                match pivot_col {
                    Some(c) => t.pivot(r, c),
                    None => {
                        // Redundant row: the artificial stays basic at zero;
                        // harmless as long as it never re-enters (phase 2
                        // disallows artificial entering columns).
                    }
                }
            }
        }
    }

    // ---- Phase 2: original objective ------------------------------------
    // Reset the cost row to the real costs and reduce against the basis.
    for c in 0..stride {
        t.data[m * stride + c] = 0.0;
    }
    for (c, &cost) in sf.costs.iter().enumerate() {
        t.data[m * stride + c] = cost;
    }
    for r in 0..m {
        let b = t.basis[r];
        let cb = if b < sf.n_cols { sf.costs[b] } else { 0.0 };
        if cb != 0.0 {
            for c in 0..stride {
                t.data[m * stride + c] -= cb * t.data[r * stride + c];
            }
        }
    }
    match run_phase(&mut t, cfg, false)? {
        PhaseOutcome::Unbounded => return Ok(Solution::Unbounded),
        PhaseOutcome::Optimal => {}
    }

    // ---- Extract the solution -------------------------------------------
    let mut y = vec![0.0; sf.n_cols];
    for r in 0..m {
        let b = t.basis[r];
        if b < sf.n_cols {
            y[b] = t.rhs(r);
        }
    }
    let mut x = vec![0.0; p.n_vars()];
    for (v, vm) in sf.var_map.iter().enumerate() {
        x[v] = match *vm {
            VarMap::Shifted { col, shift } => y[col] + shift,
            VarMap::Split { pos, neg } => y[pos] - y[neg],
        };
    }
    let objective = p.objective_value(&x);
    // `negate_objective` already handled by evaluating in original space.
    let _ = sf.negate_objective;
    Ok(Solution::Optimal(OptimalSolution {
        x,
        objective,
        iterations: t.iterations,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Bound, Constraint};

    #[test]
    fn trivial_zero_problem() {
        let p = Problem::new(2, Objective::Minimize);
        let s = solve(&p, &SolverConfig::default())
            .unwrap()
            .expect_optimal();
        assert_eq!(s.x, vec![0.0, 0.0]);
        assert_eq!(s.objective, 0.0);
    }

    #[test]
    fn single_equality() {
        // min 2x s.t. x = 7 → 14.
        let mut p = Problem::new(1, Objective::Minimize);
        p.set_objective_coeff(0, 2.0);
        p.add_constraint(Constraint::new(vec![(0, 1.0)], Relation::Eq, 7.0));
        let s = solve(&p, &SolverConfig::default())
            .unwrap()
            .expect_optimal();
        assert!((s.x[0] - 7.0).abs() < 1e-8);
        assert!((s.objective - 14.0).abs() < 1e-8);
    }

    #[test]
    fn duplicate_coefficients_are_summed() {
        // min x s.t. (0.5 + 0.5)x >= 3 → x = 3.
        let mut p = Problem::new(1, Objective::Minimize);
        p.set_objective_coeff(0, 1.0);
        p.add_constraint(Constraint::new(vec![(0, 0.5), (0, 0.5)], Relation::Ge, 3.0));
        let s = solve(&p, &SolverConfig::default())
            .unwrap()
            .expect_optimal();
        assert!((s.x[0] - 3.0).abs() < 1e-8);
    }

    #[test]
    fn redundant_equalities_do_not_break_phase1() {
        // x + y = 4 twice, min x → x = 0, y = 4.
        let mut p = Problem::new(2, Objective::Minimize);
        p.set_objective_coeff(0, 1.0);
        for _ in 0..2 {
            p.add_constraint(Constraint::new(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 4.0));
        }
        let s = solve(&p, &SolverConfig::default())
            .unwrap()
            .expect_optimal();
        assert!(s.x[0].abs() < 1e-8);
        assert!((s.x[1] - 4.0).abs() < 1e-8);
    }

    #[test]
    fn iteration_limit_is_reported() {
        let mut p = Problem::new(2, Objective::Maximize);
        p.set_objective_coeff(0, 1.0);
        p.add_constraint(Constraint::new(vec![(0, 1.0), (1, 1.0)], Relation::Le, 1.0));
        let cfg = SolverConfig {
            max_iterations: 0,
            ..SolverConfig::default()
        };
        assert!(matches!(solve(&p, &cfg), Err(LpError::IterationLimit)));
    }

    #[test]
    fn solution_is_feasible_for_random_like_instance() {
        // A small fixed instance with all relation kinds; verify feasibility
        // via Problem::is_feasible rather than a known optimum.
        let mut p = Problem::new(3, Objective::Maximize);
        p.set_objective_coeff(0, 1.0);
        p.set_objective_coeff(1, 2.0);
        p.set_objective_coeff(2, -1.0);
        p.set_bound(2, Bound::between(0.0, 4.0));
        p.add_constraint(Constraint::new(
            vec![(0, 1.0), (1, 1.0), (2, 1.0)],
            Relation::Le,
            10.0,
        ));
        p.add_constraint(Constraint::new(
            vec![(0, 1.0), (1, -1.0)],
            Relation::Ge,
            -2.0,
        ));
        p.add_constraint(Constraint::new(vec![(1, 1.0), (2, 1.0)], Relation::Eq, 6.0));
        let s = solve(&p, &SolverConfig::default())
            .unwrap()
            .expect_optimal();
        assert!(p.is_feasible(&s.x, 1e-6), "solution {:?}", s.x);
    }
}
