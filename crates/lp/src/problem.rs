//! Linear-program model: variables, bounds, constraints, objective.

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Minimize the objective function.
    Minimize,
    /// Maximize the objective function.
    Maximize,
}

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `Σ a_i x_i ≤ b`
    Le,
    /// `Σ a_i x_i = b`
    Eq,
    /// `Σ a_i x_i ≥ b`
    Ge,
}

/// Per-variable domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bound {
    /// Lower bound (`None` = −∞).
    pub lo: Option<f64>,
    /// Upper bound (`None` = +∞).
    pub hi: Option<f64>,
}

impl Bound {
    /// The default domain `x ≥ 0`.
    pub fn non_negative() -> Bound {
        Bound {
            lo: Some(0.0),
            hi: None,
        }
    }

    /// Free variable (−∞, +∞).
    pub fn free() -> Bound {
        Bound { lo: None, hi: None }
    }

    /// `x ≥ lo`.
    pub fn at_least(lo: f64) -> Bound {
        Bound {
            lo: Some(lo),
            hi: None,
        }
    }

    /// `lo ≤ x ≤ hi`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn between(lo: f64, hi: f64) -> Bound {
        assert!(lo <= hi, "empty bound [{lo}, {hi}]");
        Bound {
            lo: Some(lo),
            hi: Some(hi),
        }
    }
}

/// A single linear constraint given as sparse `(variable, coefficient)`
/// pairs.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Sparse coefficients; duplicate variable entries are summed.
    pub coeffs: Vec<(usize, f64)>,
    /// Relation to the right-hand side.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

impl Constraint {
    /// Convenience constructor.
    pub fn new(coeffs: Vec<(usize, f64)>, relation: Relation, rhs: f64) -> Self {
        Constraint {
            coeffs,
            relation,
            rhs,
        }
    }
}

/// A linear program.
#[derive(Debug, Clone)]
pub struct Problem {
    n_vars: usize,
    objective_sense: Objective,
    objective: Vec<f64>,
    bounds: Vec<Bound>,
    constraints: Vec<Constraint>,
}

impl Problem {
    /// Creates a problem with `n_vars` variables, all defaulting to `x ≥ 0`
    /// with objective coefficient 0.
    pub fn new(n_vars: usize, sense: Objective) -> Self {
        Problem {
            n_vars,
            objective_sense: sense,
            objective: vec![0.0; n_vars],
            bounds: vec![Bound::non_negative(); n_vars],
            constraints: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Optimization direction.
    pub fn sense(&self) -> Objective {
        self.objective_sense
    }

    /// Objective coefficients.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Sets the objective coefficient of variable `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range or `c` is non-finite.
    pub fn set_objective_coeff(&mut self, v: usize, c: f64) {
        assert!(v < self.n_vars, "variable {v} out of range");
        assert!(c.is_finite(), "non-finite objective coefficient");
        self.objective[v] = c;
    }

    /// Per-variable bounds.
    pub fn bounds(&self) -> &[Bound] {
        &self.bounds
    }

    /// Sets the domain of variable `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn set_bound(&mut self, v: usize, b: Bound) {
        assert!(v < self.n_vars, "variable {v} out of range");
        self.bounds[v] = b;
    }

    /// Constraints in insertion order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Adds a constraint.
    ///
    /// # Panics
    /// Panics on out-of-range variables or non-finite numbers.
    pub fn add_constraint(&mut self, c: Constraint) {
        for &(v, coeff) in &c.coeffs {
            assert!(v < self.n_vars, "variable {v} out of range");
            assert!(coeff.is_finite(), "non-finite coefficient");
        }
        assert!(c.rhs.is_finite(), "non-finite rhs");
        self.constraints.push(c);
    }

    /// Evaluates the objective at `x`.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n_vars);
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Checks feasibility of `x` within tolerance `tol` (bounds and all
    /// constraints).
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.n_vars {
            return false;
        }
        for (v, b) in x.iter().zip(&self.bounds) {
            if let Some(lo) = b.lo {
                if *v < lo - tol {
                    return false;
                }
            }
            if let Some(hi) = b.hi {
                if *v > hi + tol {
                    return false;
                }
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.coeffs.iter().map(|&(v, a)| a * x[v]).sum();
            let ok = match c.relation {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_nonnegative_zero_objective() {
        let p = Problem::new(3, Objective::Minimize);
        assert_eq!(p.n_vars(), 3);
        assert_eq!(p.objective(), &[0.0, 0.0, 0.0]);
        assert_eq!(p.bounds()[0], Bound::non_negative());
    }

    #[test]
    fn feasibility_checks_bounds_and_constraints() {
        let mut p = Problem::new(2, Objective::Minimize);
        p.set_bound(0, Bound::between(0.0, 1.0));
        p.add_constraint(Constraint::new(vec![(0, 1.0), (1, 1.0)], Relation::Le, 2.0));
        assert!(p.is_feasible(&[0.5, 1.0], 1e-9));
        assert!(!p.is_feasible(&[1.5, 0.0], 1e-9)); // violates upper bound
        assert!(!p.is_feasible(&[1.0, 1.5], 1e-9)); // violates constraint
        assert!(!p.is_feasible(&[-0.1, 0.0], 1e-9)); // violates lower bound
        assert!(!p.is_feasible(&[0.0], 1e-9)); // wrong arity
    }

    #[test]
    fn objective_value_dot_product() {
        let mut p = Problem::new(2, Objective::Maximize);
        p.set_objective_coeff(0, 2.0);
        p.set_objective_coeff(1, -1.0);
        assert_eq!(p.objective_value(&[3.0, 4.0]), 2.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_constraint_variable() {
        let mut p = Problem::new(1, Objective::Minimize);
        p.add_constraint(Constraint::new(vec![(5, 1.0)], Relation::Le, 0.0));
    }

    #[test]
    #[should_panic(expected = "empty bound")]
    fn rejects_empty_interval_bound() {
        Bound::between(2.0, 1.0);
    }

    #[test]
    fn eq_feasibility_tolerance() {
        let mut p = Problem::new(1, Objective::Minimize);
        p.add_constraint(Constraint::new(vec![(0, 1.0)], Relation::Eq, 1.0));
        assert!(p.is_feasible(&[1.0 + 1e-12], 1e-9));
        assert!(!p.is_feasible(&[1.1], 1e-9));
    }
}
