#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # so-lp — a pure-Rust dense linear-programming solver
//!
//! Substrate for the LP-decoding reconstruction attack (Theorem 1.1(ii) of
//! the paper, after Dinur–Nissim 2003 and Dwork–McSherry–Talwar 2007) and for
//! the census reconstruction experiments. The attack recovers a private bit
//! vector from noisy subset-sum answers by solving
//!
//! ```text
//!   minimize   Σ_q e_q
//!   subject to -e_q ≤ a_q − Σ_{i∈q} x_i ≤ e_q,   0 ≤ x_i ≤ 1
//! ```
//!
//! and rounding. The solver is a classic **two-phase primal simplex** on a
//! dense tableau with Dantzig pricing and a Bland's-rule fallback for
//! anti-cycling. It supports minimization/maximization, `≤`/`=`/`≥`
//! constraints, and per-variable bounds (finite lower bounds via shifting,
//! free variables via splitting).
//!
//! Scale target: thousands of variables/constraints — plenty for the paper's
//! experiments, with no external dependencies to audit.

//! ```
//! use so_lp::{solve, Constraint, Objective, Problem, Relation, SolverConfig};
//! // max 3x + 5y  s.t.  x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18  →  36 at (2, 6).
//! let mut p = Problem::new(2, Objective::Maximize);
//! p.set_objective_coeff(0, 3.0);
//! p.set_objective_coeff(1, 5.0);
//! p.add_constraint(Constraint::new(vec![(0, 1.0)], Relation::Le, 4.0));
//! p.add_constraint(Constraint::new(vec![(1, 2.0)], Relation::Le, 12.0));
//! p.add_constraint(Constraint::new(vec![(0, 3.0), (1, 2.0)], Relation::Le, 18.0));
//! let s = solve(&p, &SolverConfig::default()).unwrap().expect_optimal();
//! assert!((s.objective - 36.0).abs() < 1e-7);
//! ```

pub mod problem;
pub mod simplex;

pub use problem::{Bound, Constraint, Objective, Problem, Relation};
pub use simplex::{solve, LpError, OptimalSolution, Solution, SolverConfig};

#[cfg(test)]
mod integration_tests {
    use super::*;

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0
        // Optimum: x=2, y=6, objective 36 (classic Dantzig example).
        let mut p = Problem::new(2, Objective::Maximize);
        p.set_objective_coeff(0, 3.0);
        p.set_objective_coeff(1, 5.0);
        p.add_constraint(Constraint::new(vec![(0, 1.0)], Relation::Le, 4.0));
        p.add_constraint(Constraint::new(vec![(1, 2.0)], Relation::Le, 12.0));
        p.add_constraint(Constraint::new(
            vec![(0, 3.0), (1, 2.0)],
            Relation::Le,
            18.0,
        ));
        let sol = solve(&p, &SolverConfig::default()).unwrap();
        let s = sol.expect_optimal();
        assert!((s.objective - 36.0).abs() < 1e-7);
        assert!((s.x[0] - 2.0).abs() < 1e-7);
        assert!((s.x[1] - 6.0).abs() < 1e-7);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x + y s.t. x + y = 10, x >= 3, y >= 2 → objective 10.
        let mut p = Problem::new(2, Objective::Minimize);
        p.set_objective_coeff(0, 1.0);
        p.set_objective_coeff(1, 1.0);
        p.add_constraint(Constraint::new(
            vec![(0, 1.0), (1, 1.0)],
            Relation::Eq,
            10.0,
        ));
        p.set_bound(0, Bound::at_least(3.0));
        p.set_bound(1, Bound::at_least(2.0));
        let s = solve(&p, &SolverConfig::default())
            .unwrap()
            .expect_optimal();
        assert!((s.objective - 10.0).abs() < 1e-7);
        assert!((s.x[0] + s.x[1] - 10.0).abs() < 1e-7);
        assert!(s.x[0] >= 3.0 - 1e-9 && s.x[1] >= 2.0 - 1e-9);
    }

    #[test]
    fn detects_infeasible() {
        // x <= 1 and x >= 2 cannot both hold.
        let mut p = Problem::new(1, Objective::Minimize);
        p.set_objective_coeff(0, 1.0);
        p.add_constraint(Constraint::new(vec![(0, 1.0)], Relation::Le, 1.0));
        p.add_constraint(Constraint::new(vec![(0, 1.0)], Relation::Ge, 2.0));
        let sol = solve(&p, &SolverConfig::default()).unwrap();
        assert!(matches!(sol, Solution::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        // max x with no upper constraint.
        let mut p = Problem::new(1, Objective::Maximize);
        p.set_objective_coeff(0, 1.0);
        let sol = solve(&p, &SolverConfig::default()).unwrap();
        assert!(matches!(sol, Solution::Unbounded));
    }

    #[test]
    fn free_variables_split_correctly() {
        // min-|·| style LP: min e s.t. -e <= x - 3 <= e with x free → x = 3, e = 0.
        let mut p = Problem::new(2, Objective::Minimize);
        let (x, e) = (0, 1);
        p.set_bound(x, Bound::free());
        p.set_objective_coeff(e, 1.0);
        // x - e <= 3  and  x + e >= 3
        p.add_constraint(Constraint::new(
            vec![(x, 1.0), (e, -1.0)],
            Relation::Le,
            3.0,
        ));
        p.add_constraint(Constraint::new(vec![(x, 1.0), (e, 1.0)], Relation::Ge, 3.0));
        let s = solve(&p, &SolverConfig::default())
            .unwrap()
            .expect_optimal();
        assert!((s.x[x] - 3.0).abs() < 1e-7, "x = {}", s.x[x]);
        assert!(s.x[e].abs() < 1e-7);
    }

    #[test]
    fn boxed_variables_respect_upper_bounds() {
        // max x + y with x,y in [0, 2.5] → 5.
        let mut p = Problem::new(2, Objective::Maximize);
        p.set_objective_coeff(0, 1.0);
        p.set_objective_coeff(1, 1.0);
        p.set_bound(0, Bound::between(0.0, 2.5));
        p.set_bound(1, Bound::between(0.0, 2.5));
        let s = solve(&p, &SolverConfig::default())
            .unwrap()
            .expect_optimal();
        assert!((s.objective - 5.0).abs() < 1e-7);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // min x s.t. -x <= -4 (i.e. x >= 4) → 4.
        let mut p = Problem::new(1, Objective::Minimize);
        p.set_objective_coeff(0, 1.0);
        p.add_constraint(Constraint::new(vec![(0, -1.0)], Relation::Le, -4.0));
        let s = solve(&p, &SolverConfig::default())
            .unwrap()
            .expect_optimal();
        assert!((s.objective - 4.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Many redundant constraints through the same vertex — exercises
        // anti-cycling.
        let mut p = Problem::new(2, Objective::Maximize);
        p.set_objective_coeff(0, 1.0);
        p.set_objective_coeff(1, 1.0);
        for k in 1..=10 {
            let k = k as f64;
            p.add_constraint(Constraint::new(vec![(0, k), (1, k)], Relation::Le, 2.0 * k));
        }
        let s = solve(&p, &SolverConfig::default())
            .unwrap()
            .expect_optimal();
        assert!((s.objective - 2.0).abs() < 1e-7);
    }

    #[test]
    fn shifted_lower_bounds_report_original_coordinates() {
        // min x s.t. x >= -5 (lower bound), x <= -1 → x = -5? No: lower bound
        // -5 and constraint x <= -1; minimizing x gives -5.
        let mut p = Problem::new(1, Objective::Minimize);
        p.set_objective_coeff(0, 1.0);
        p.set_bound(0, Bound::at_least(-5.0));
        p.add_constraint(Constraint::new(vec![(0, 1.0)], Relation::Le, -1.0));
        let s = solve(&p, &SolverConfig::default())
            .unwrap()
            .expect_optimal();
        assert!((s.x[0] + 5.0).abs() < 1e-7);
        assert!((s.objective + 5.0).abs() < 1e-7);
    }
}
