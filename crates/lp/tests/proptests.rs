//! Property-based tests for the simplex solver.
//!
//! Strategy: generate LPs that are feasible *by construction* (constraints
//! derived from a known point), then check that the solver (a) returns a
//! feasible point and (b) weakly beats the witness point's objective.

use proptest::prelude::*;
use so_lp::{solve, Constraint, Objective, Problem, Relation, Solution, SolverConfig};

const TOL: f64 = 1e-6;

fn small_f64() -> impl Strategy<Value = f64> {
    // Well-conditioned coefficients: avoid denormals and huge magnitudes.
    (-50i32..=50).prop_map(|v| f64::from(v) / 5.0)
}

#[derive(Debug, Clone)]
struct GeneratedLp {
    objective: Vec<f64>,
    rows: Vec<(Vec<f64>, Relation, f64)>,
    witness: Vec<f64>,
}

fn arb_feasible_lp() -> impl Strategy<Value = GeneratedLp> {
    (2usize..6, 1usize..7).prop_flat_map(|(n_vars, n_rows)| {
        let witness =
            proptest::collection::vec((0i32..=20).prop_map(|v| f64::from(v) / 2.0), n_vars);
        let objective = proptest::collection::vec(small_f64(), n_vars);
        let row = (
            proptest::collection::vec(small_f64(), n_vars),
            prop_oneof![Just(Relation::Le), Just(Relation::Ge), Just(Relation::Eq)],
            0i32..=10,
        );
        let rows = proptest::collection::vec(row, n_rows);
        (witness, objective, rows).prop_map(|(witness, objective, rows)| {
            let rows = rows
                .into_iter()
                .map(|(coeffs, rel, slackish)| {
                    let lhs: f64 = coeffs.iter().zip(&witness).map(|(a, x)| a * x).sum();
                    // Choose rhs so the witness satisfies the row.
                    let rhs = match rel {
                        Relation::Le => lhs + f64::from(slackish),
                        Relation::Ge => lhs - f64::from(slackish),
                        Relation::Eq => lhs,
                    };
                    (coeffs, rel, rhs)
                })
                .collect();
            GeneratedLp {
                objective,
                rows,
                witness,
            }
        })
    })
}

fn build(glp: &GeneratedLp, sense: Objective, boxed: bool) -> Problem {
    let n = glp.objective.len();
    let mut p = Problem::new(n, sense);
    for (v, &c) in glp.objective.iter().enumerate() {
        p.set_objective_coeff(v, c);
    }
    if boxed {
        for v in 0..n {
            // Box is wide enough to contain every witness coordinate (≤ 10).
            p.set_bound(v, so_lp::Bound::between(0.0, 100.0));
        }
    }
    for (coeffs, rel, rhs) in &glp.rows {
        let sparse: Vec<(usize, f64)> = coeffs.iter().enumerate().map(|(v, &a)| (v, a)).collect();
        p.add_constraint(Constraint::new(sparse, *rel, *rhs));
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On boxed (hence bounded) feasible problems the solver must return an
    /// optimal, feasible point that weakly dominates the witness.
    #[test]
    fn boxed_feasible_lp_solved_optimally(glp in arb_feasible_lp()) {
        let p = build(&glp, Objective::Maximize, true);
        let sol = solve(&p, &SolverConfig::default()).unwrap();
        match sol {
            Solution::Optimal(s) => {
                prop_assert!(p.is_feasible(&s.x, TOL), "infeasible answer {:?}", s.x);
                let witness_obj = p.objective_value(&glp.witness);
                prop_assert!(
                    s.objective >= witness_obj - TOL,
                    "objective {} < witness {}",
                    s.objective,
                    witness_obj
                );
            }
            other => prop_assert!(false, "expected optimal, got {other:?}"),
        }
    }

    /// Minimization mirrors maximization.
    #[test]
    fn boxed_feasible_lp_minimized(glp in arb_feasible_lp()) {
        let p = build(&glp, Objective::Minimize, true);
        let sol = solve(&p, &SolverConfig::default()).unwrap();
        match sol {
            Solution::Optimal(s) => {
                prop_assert!(p.is_feasible(&s.x, TOL));
                let witness_obj = p.objective_value(&glp.witness);
                prop_assert!(s.objective <= witness_obj + TOL);
            }
            other => prop_assert!(false, "expected optimal, got {other:?}"),
        }
    }

    /// Unboxed problems may be unbounded but must never be reported
    /// infeasible (the witness proves feasibility), and optimal answers must
    /// be feasible.
    #[test]
    fn unboxed_feasible_lp_never_infeasible(glp in arb_feasible_lp()) {
        let p = build(&glp, Objective::Maximize, false);
        match solve(&p, &SolverConfig::default()).unwrap() {
            Solution::Infeasible => prop_assert!(false, "witness exists, cannot be infeasible"),
            Solution::Optimal(s) => {
                prop_assert!(p.is_feasible(&s.x, TOL));
                prop_assert!(s.objective >= p.objective_value(&glp.witness) - TOL);
            }
            Solution::Unbounded => {}
        }
    }
}
