use rand::Rng;
use so_lp::{solve, Bound, Constraint, Objective, Problem, Relation, SolverConfig};

#[test]
fn lp_decode_shape_stress() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    use rand::SeedableRng;
    for &(n, m) in &[
        (16usize, 64usize),
        (24, 96),
        (32, 128),
        (64, 256),
        (96, 384),
    ] {
        let x: Vec<f64> = (0..n).map(|_| f64::from(rng.gen::<bool>() as u8)).collect();
        let mut p = Problem::new(n + m, Objective::Minimize);
        for i in 0..n {
            p.set_bound(i, Bound::between(0.0, 1.0));
        }
        for j in 0..m {
            let e = n + j;
            p.set_objective_coeff(e, 1.0);
            let members: Vec<usize> = (0..n).filter(|_| rng.gen::<bool>()).collect();
            let a: f64 = members.iter().map(|&i| x[i]).sum();
            let mut le: Vec<(usize, f64)> = members.iter().map(|&i| (i, 1.0)).collect();
            le.push((e, -1.0));
            p.add_constraint(Constraint::new(le, Relation::Le, a));
            let mut ge: Vec<(usize, f64)> = members.iter().map(|&i| (i, 1.0)).collect();
            ge.push((e, 1.0));
            p.add_constraint(Constraint::new(ge, Relation::Ge, a));
        }
        let t = std::time::Instant::now();
        let sol = solve(&p, &SolverConfig::default());
        eprintln!(
            "n={n} m={m}: {:?} in {:?}",
            sol.as_ref().map(|s| s.is_optimal()),
            t.elapsed()
        );
        assert!(sol.is_ok(), "n={n} m={m}");
    }
}
