//! The exhaustive (exponential) reconstruction attack — Theorem 1.1(i).
//!
//! The attacker asks *every* subset query `q ⊆ [n]` and then searches for any
//! candidate `x̃ ∈ {0,1}^n` whose subset sums are all within `α` of the
//! answers. The Dinur–Nissim argument shows every such candidate satisfies
//! `|x − x̃|₁ ≤ 4α`: consider `q₀ = {i : x_i = 1, x̃_i = 0}` — both `x` and
//! `x̃` answer `q₀` within `α` of the mechanism, so they differ on it by at
//! most `2α`, i.e. `|q₀| ≤ 2α`; symmetrically for the other direction.
//!
//! Cost is `O(4^n)` in the worst case, so this is an `n ≤ ~16` attack — the
//! theorem is information-theoretic and small `n` exhibits it exactly.

use so_data::BitVec;
use so_query::{SubsetQuery, SubsetSumMechanism};

/// Outcome of the exhaustive attack.
#[derive(Debug, Clone)]
pub struct ExhaustiveResult {
    /// The reconstructed candidate (first consistent one found).
    pub reconstruction: BitVec,
    /// Number of queries issued (`2^n`).
    pub queries_issued: usize,
    /// Number of candidates examined before success.
    pub candidates_tried: usize,
}

/// Runs the attack against `mechanism`, assuming its answers are within
/// `alpha` of the truth. Returns `None` if no candidate is consistent —
/// which can only happen if the mechanism violated its error bound.
///
/// # Panics
/// Panics if `n > 20` (the query set would exceed a million entries).
pub fn exhaustive_reconstruct(
    mechanism: &mut dyn SubsetSumMechanism,
    alpha: f64,
) -> Option<ExhaustiveResult> {
    let n = mechanism.n();
    assert!(n <= 20, "exhaustive attack limited to n <= 20 (got {n})");
    let n_queries = 1usize << n;

    // The attack is non-adaptive: declare all 2^n subset queries up front
    // and submit the whole workload in one batch.
    let mut queries = Vec::with_capacity(n_queries);
    for mask in 0..n_queries as u64 {
        let mut members = BitVec::zeros(n);
        for i in 0..n {
            if (mask >> i) & 1 == 1 {
                members.set(i, true);
            }
        }
        queries.push(SubsetQuery::new(members));
    }
    let answers = mechanism.answer_all(&queries);

    // Search candidates; subset sums of a candidate are evaluated by popcount
    // over the mask intersection, with early abort on the first violation.
    for cand in 0..n_queries as u64 {
        let mut consistent = true;
        for (mask, &a) in answers.iter().enumerate() {
            let s = (cand & mask as u64).count_ones() as f64;
            if (s - a).abs() > alpha + 1e-9 {
                consistent = false;
                break;
            }
        }
        if consistent {
            let mut reconstruction = BitVec::zeros(n);
            for i in 0..n {
                reconstruction.set(i, (cand >> i) & 1 == 1);
            }
            return Some(ExhaustiveResult {
                reconstruction,
                queries_issued: n_queries,
                candidates_tried: cand as usize + 1,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reconstruction_accuracy;
    use so_data::dist::RecordDistribution;
    use so_data::rng::seeded_rng;
    use so_data::UniformBits;
    use so_query::{BoundedNoiseSum, ExactSum};

    fn random_secret(n: usize, seed: u64) -> BitVec {
        // One record = the whole dataset here: sample n independent bits.
        UniformBits::new(n).sample(&mut seeded_rng(seed))
    }

    #[test]
    fn exact_answers_give_exact_reconstruction() {
        let x = random_secret(10, 1);
        let mut m = ExactSum::new(x.clone());
        let r = exhaustive_reconstruct(&mut m, 0.0).expect("consistent");
        assert_eq!(r.reconstruction, x);
        assert_eq!(r.queries_issued, 1024);
    }

    #[test]
    fn error_bounded_by_four_alpha() {
        // Theorem 1.1(i): any consistent candidate is within 4α of x.
        for seed in 0..5u64 {
            let n = 12;
            let alpha = 1.5; // c·n with c = 0.125
            let x = random_secret(n, 100 + seed);
            let mut m = BoundedNoiseSum::new(x.clone(), alpha, seeded_rng(seed));
            let r = exhaustive_reconstruct(&mut m, alpha).expect("consistent");
            let dist = x.hamming_distance(&r.reconstruction);
            assert!(
                dist as f64 <= 4.0 * alpha,
                "seed {seed}: distance {dist} > 4α = {}",
                4.0 * alpha
            );
        }
    }

    #[test]
    fn truth_is_always_consistent() {
        // With a correct α bound the search can never come up empty, because
        // x itself is consistent.
        let x = random_secret(8, 7);
        let mut m = BoundedNoiseSum::new(x, 2.0, seeded_rng(9));
        assert!(exhaustive_reconstruct(&mut m, 2.0).is_some());
    }

    #[test]
    fn lying_mechanism_can_be_detected() {
        // Mechanism that claims α = 0 but adds noise → likely no candidate
        // is consistent at α = 0 tolerance... unless noise is consistent
        // with some other dataset; with large noise inconsistency is
        // overwhelming.
        struct Liar {
            inner: ExactSum,
            flip: bool,
        }
        impl SubsetSumMechanism for Liar {
            fn answer(&mut self, q: &SubsetQuery) -> f64 {
                self.flip = !self.flip;
                // Alternate ±3 — no single dataset fits within α = 0.5.
                self.inner.answer(q) + if self.flip { 3.0 } else { -3.0 }
            }
            fn n(&self) -> usize {
                self.inner.n()
            }
        }
        let x = random_secret(6, 3);
        let mut liar = Liar {
            inner: ExactSum::new(x),
            flip: false,
        };
        assert!(exhaustive_reconstruct(&mut liar, 0.5).is_none());
    }

    #[test]
    fn small_alpha_yields_high_accuracy() {
        let n = 12;
        let x = random_secret(n, 55);
        let mut m = BoundedNoiseSum::new(x.clone(), 0.4, seeded_rng(8));
        let r = exhaustive_reconstruct(&mut m, 0.4).expect("consistent");
        // 4α = 1.6 < 2 entries → at most 1 wrong.
        assert!(reconstruction_accuracy(&x, &r.reconstruction) >= 1.0 - 1.0 / n as f64);
    }

    #[test]
    #[should_panic(expected = "limited to n <= 20")]
    fn oversized_instance_rejected() {
        let x = BitVec::zeros(24);
        let mut m = ExactSum::new(x);
        let _ = exhaustive_reconstruct(&mut m, 0.0);
    }
}
