#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # so-recon — database reconstruction attacks
//!
//! Implementations of the attacks behind Theorem 1.1 (Dinur–Nissim 2003) and
//! the "Fundamental Law of Information Recovery":
//!
//! > overly accurate answers to too many questions will destroy privacy in a
//! > spectacular way.
//!
//! * [`exponential`] — the information-theoretic attack of Theorem 1.1(i):
//!   with answers to *all* subset queries within error `α = c·n`, any
//!   candidate dataset consistent with the answers agrees with the true one
//!   up to `4α` entries;
//! * [`mod@lp_decode`] — the polynomial attack of Theorem 1.1(ii) (in the
//!   linear-programming form of Dwork–McSherry–Talwar): `O(n)` random subset
//!   queries with error `α = c·√n` suffice to reconstruct almost all of `x`;
//! * [`least_squares`] — a projected-gradient least-squares decoder, the
//!   scalable ablation of the LP decoder;
//! * [`differencing`] — the classic tracker/differencing attack on exact
//!   (and repeated-noisy) count interfaces.
//!
//! All attacks operate through [`so_query::SubsetSumMechanism`], so they can
//! be aimed unchanged at exact, bounded-noise, or differentially private
//! answer mechanisms — which is how the experiments demonstrate both the
//! attack and the DP remedy.

pub mod differencing;
pub mod exponential;
pub mod least_squares;
pub mod lp_decode;
pub mod obs;

pub use differencing::{averaging_differencing_attack, differencing_attack};
pub use exponential::exhaustive_reconstruct;
pub use least_squares::least_squares_reconstruct;
pub use lp_decode::{lp_attack_queries, lp_decode, lp_reconstruct};
pub use obs::{recon_metrics, ReconMetrics};

use so_data::BitVec;

/// Fraction of entries on which the reconstruction agrees with the truth.
pub fn reconstruction_accuracy(truth: &BitVec, guess: &BitVec) -> f64 {
    assert_eq!(truth.len(), guess.len(), "length mismatch");
    if truth.is_empty() {
        return 1.0;
    }
    1.0 - truth.hamming_distance(guess) as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_bounds() {
        let a = BitVec::from_bools(&[true, false, true, false]);
        let b = BitVec::from_bools(&[true, false, false, true]);
        assert_eq!(reconstruction_accuracy(&a, &a), 1.0);
        assert_eq!(reconstruction_accuracy(&a, &b), 0.5);
    }

    #[test]
    fn empty_truth_is_trivially_reconstructed() {
        let e = BitVec::zeros(0);
        assert_eq!(reconstruction_accuracy(&e, &e), 1.0);
    }
}
