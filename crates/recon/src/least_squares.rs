//! Least-squares reconstruction: the scalable ablation of the LP decoder.
//!
//! Solves `min ‖A x − a‖²` over the box `[0,1]^n` by projected gradient
//! descent, where `A` is the 0/1 query-membership matrix, then rounds at ½.
//! Cheaper than the simplex (`O(iters · m · n)` with tiny constants), so the
//! fundamental-law sweeps can reach `n` in the thousands. Statistically it
//! behaves like the LP decoder for random queries with uniform noise — the
//! benchmarks quantify that claim (ablation called out in DESIGN.md).

use rand::Rng;

use so_data::BitVec;
use so_query::{SubsetQuery, SubsetSumMechanism};

/// Outcome of the least-squares attack.
#[derive(Debug, Clone)]
pub struct LsqReconResult {
    /// Rounded reconstruction.
    pub reconstruction: BitVec,
    /// Fractional iterate before rounding.
    pub fractional: Vec<f64>,
    /// Number of queries issued.
    pub queries_issued: usize,
    /// Final squared residual `‖Ax − a‖²`.
    pub residual: f64,
    /// Gradient iterations performed.
    pub iterations: usize,
}

/// Tuning for the projected-gradient solve.
#[derive(Debug, Clone)]
pub struct LsqConfig {
    /// Maximum gradient iterations.
    pub max_iterations: usize,
    /// Stop when the squared residual improves by less than this factor.
    pub relative_tolerance: f64,
}

impl Default for LsqConfig {
    fn default() -> Self {
        LsqConfig {
            max_iterations: 400,
            relative_tolerance: 1e-7,
        }
    }
}

/// Runs the least-squares attack with `m` random subset queries.
#[allow(clippy::needless_range_loop)] // parallel-array numeric kernel
pub fn least_squares_reconstruct<R: Rng>(
    mechanism: &mut dyn SubsetSumMechanism,
    m: usize,
    config: &LsqConfig,
    rng: &mut R,
) -> LsqReconResult {
    let n = mechanism.n();
    // Random queries as row bitmasks (words) for fast mat-vec. The query set
    // is non-adaptive, so it is declared in full and submitted as one batch.
    let words_per_row = n.div_ceil(64);
    let mut rows: Vec<u64> = Vec::with_capacity(m * words_per_row);
    let mut queries = Vec::with_capacity(m);
    for _ in 0..m {
        let mut members = BitVec::zeros(n);
        for i in 0..n {
            members.set(i, rng.gen::<bool>());
        }
        let q = SubsetQuery::new(members);
        rows.extend_from_slice(q.members().words());
        queries.push(q);
    }
    let answers = mechanism.answer_all(&queries);

    let row = |j: usize| &rows[j * words_per_row..(j + 1) * words_per_row];
    let a_dot = |j: usize, x: &[f64]| -> f64 {
        let mut s = 0.0;
        let r = row(j);
        for (w, &bits) in r.iter().enumerate() {
            let mut b = bits;
            while b != 0 {
                let i = w * 64 + b.trailing_zeros() as usize;
                s += x[i];
                b &= b - 1;
            }
        }
        s
    };

    // Lipschitz constant of the gradient: 2‖AᵀA‖ ≤ 2·(max row sum)·(max col
    // sum) is loose; a practical, safe estimate for random ½-dense A is
    // 2·(m·n/4 + m) / n ... instead use the standard bound ‖A‖² ≤ ‖A‖₁·‖A‖∞
    // = (max col sum)(max row sum).
    let mut row_sums = vec![0f64; m];
    let mut col_sums = vec![0f64; n];
    for j in 0..m {
        for (w, &bits) in row(j).iter().enumerate() {
            let mut b = bits;
            while b != 0 {
                let i = w * 64 + b.trailing_zeros() as usize;
                row_sums[j] += 1.0;
                col_sums[i] += 1.0;
                b &= b - 1;
            }
        }
    }
    let norm_bound = row_sums.iter().fold(0.0f64, |a, &b| a.max(b))
        * col_sums.iter().fold(0.0f64, |a, &b| a.max(b));
    let step = if norm_bound > 0.0 {
        1.0 / norm_bound
    } else {
        1.0
    };

    let mut x = vec![0.5f64; n];
    let mut residuals = vec![0.0f64; m];
    let mut prev_obj = f64::INFINITY;
    let mut iterations = 0;
    for it in 0..config.max_iterations {
        iterations = it + 1;
        // r = Ax − a; objective = ‖r‖².
        let mut obj = 0.0;
        for j in 0..m {
            residuals[j] = a_dot(j, &x) - answers[j];
            obj += residuals[j] * residuals[j];
        }
        if prev_obj.is_finite() && (prev_obj - obj).abs() <= config.relative_tolerance * prev_obj {
            break;
        }
        prev_obj = obj;
        // grad = 2 Aᵀ r; projected step.
        let mut grad = vec![0.0f64; n];
        for j in 0..m {
            let rj = 2.0 * residuals[j];
            if rj == 0.0 {
                continue;
            }
            for (w, &bits) in row(j).iter().enumerate() {
                let mut b = bits;
                while b != 0 {
                    let i = w * 64 + b.trailing_zeros() as usize;
                    grad[i] += rj;
                    b &= b - 1;
                }
            }
        }
        for i in 0..n {
            x[i] = (x[i] - step * grad[i]).clamp(0.0, 1.0);
        }
    }

    let mut final_res = 0.0;
    for j in 0..m {
        let r = a_dot(j, &x) - answers[j];
        final_res += r * r;
    }
    let mut reconstruction = BitVec::zeros(n);
    for (i, &v) in x.iter().enumerate() {
        reconstruction.set(i, v >= 0.5);
    }
    LsqReconResult {
        reconstruction,
        fractional: x,
        queries_issued: m,
        residual: final_res,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reconstruction_accuracy;
    use so_data::dist::RecordDistribution;
    use so_data::rng::seeded_rng;
    use so_data::UniformBits;
    use so_query::{BoundedNoiseSum, ExactSum};

    fn random_secret(n: usize, seed: u64) -> BitVec {
        UniformBits::new(n).sample(&mut seeded_rng(seed))
    }

    #[test]
    fn exact_answers_reconstruct_exactly() {
        let n = 64;
        let x = random_secret(n, 20);
        let mut m = ExactSum::new(x.clone());
        let r = least_squares_reconstruct(
            &mut m,
            6 * n,
            &LsqConfig {
                max_iterations: 3000,
                relative_tolerance: 1e-12,
            },
            &mut seeded_rng(21),
        );
        let acc = reconstruction_accuracy(&x, &r.reconstruction);
        assert!(acc >= 0.98, "accuracy {acc}");
    }

    #[test]
    fn sqrt_n_noise_reconstructs_most_entries() {
        let n = 128;
        let alpha = 0.5 * (n as f64).sqrt();
        let x = random_secret(n, 22);
        let mut m = BoundedNoiseSum::new(x.clone(), alpha, seeded_rng(23));
        let r =
            least_squares_reconstruct(&mut m, 8 * n, &LsqConfig::default(), &mut seeded_rng(24));
        let acc = reconstruction_accuracy(&x, &r.reconstruction);
        assert!(acc >= 0.85, "accuracy {acc}");
    }

    #[test]
    fn iterate_stays_in_box() {
        let n = 32;
        let x = random_secret(n, 25);
        let mut m = BoundedNoiseSum::new(x, 3.0, seeded_rng(26));
        let r =
            least_squares_reconstruct(&mut m, 4 * n, &LsqConfig::default(), &mut seeded_rng(27));
        for &v in &r.fractional {
            assert!((0.0..=1.0).contains(&v));
        }
        assert!(r.iterations >= 1);
    }

    #[test]
    fn heavy_noise_degrades_accuracy() {
        let n = 128;
        let x = random_secret(n, 28);
        let light = {
            let mut m = BoundedNoiseSum::new(x.clone(), 1.0, seeded_rng(29));
            let r = least_squares_reconstruct(
                &mut m,
                6 * n,
                &LsqConfig::default(),
                &mut seeded_rng(30),
            );
            reconstruction_accuracy(&x, &r.reconstruction)
        };
        let heavy = {
            let mut m = BoundedNoiseSum::new(x.clone(), n as f64 / 2.0, seeded_rng(31));
            let r = least_squares_reconstruct(
                &mut m,
                6 * n,
                &LsqConfig::default(),
                &mut seeded_rng(32),
            );
            reconstruction_accuracy(&x, &r.reconstruction)
        };
        assert!(
            light > heavy + 0.1,
            "light-noise accuracy {light} should beat heavy-noise {heavy}"
        );
    }
}
