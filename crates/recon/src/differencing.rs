//! Differencing (tracker) attacks.
//!
//! The oldest reconstruction idea: ask `Σ_{i∈q∪{t}} x_i` and `Σ_{i∈q} x_i`,
//! subtract, and learn `x_t` exactly. Against an exact interface this
//! recovers the entire dataset with `2n` queries; against a mechanism with
//! *fresh* bounded noise, repeating and averaging the two queries drives the
//! error below ½ and still recovers every bit — a concrete illustration of
//! why per-query noise alone, without budget tracking, does not help.

use so_data::BitVec;
use so_query::{SubsetQuery, SubsetSumMechanism};

/// The differencing workload: the full set followed by every
/// complement-of-singleton, `n + 1` queries total.
///
/// Queries are built by toggling one bit of a shared all-ones membership
/// bitmap, so constructing each complement-of-singleton costs `O(n/64)`
/// words rather than an `O(n)` index vector.
pub fn differencing_workload(n: usize) -> Vec<SubsetQuery> {
    let mut mask = BitVec::ones(n);
    let mut queries = Vec::with_capacity(n + 1);
    queries.push(SubsetQuery::new(mask.clone()));
    for t in 0..n {
        mask.set(t, false);
        queries.push(SubsetQuery::new(mask.clone()));
        mask.set(t, true);
    }
    queries
}

/// Reconstructs `x` from an exact mechanism with `n + 1` queries: one for
/// the full set and one for each complement-of-singleton.
///
/// The attack is non-adaptive, so the whole [`differencing_workload`] is
/// declared up front and submitted as one batch via
/// [`SubsetSumMechanism::answer_all`] — the shape a workload linter (or the
/// `so-query` planner) sees in its entirety before any answer is released.
pub fn differencing_attack(mechanism: &mut dyn SubsetSumMechanism) -> BitVec {
    let n = mechanism.n();
    let answers = mechanism.answer_all(&differencing_workload(n));
    let total = answers[0];
    let mut x = BitVec::zeros(n);
    for t in 0..n {
        x.set(t, (total - answers[t + 1]).round() >= 1.0);
    }
    x
}

/// Differencing against a *randomized* mechanism: asks each of the two
/// queries `repeats` times and averages before differencing. With i.i.d.
/// zero-mean noise of amplitude `α`, the averaged difference has error
/// `O(α/√repeats)`, so `repeats ≫ α²` recovers every bit with high
/// probability.
pub fn averaging_differencing_attack(
    mechanism: &mut dyn SubsetSumMechanism,
    repeats: usize,
) -> BitVec {
    assert!(repeats >= 1, "need at least one repetition");
    let n = mechanism.n();
    // Still non-adaptive: the full workload — each of the n + 1 differencing
    // queries repeated `repeats` times — is declared and submitted at once.
    let mut queries = Vec::with_capacity((n + 1) * repeats);
    for q in differencing_workload(n) {
        for _ in 0..repeats {
            queries.push(q.clone());
        }
    }
    let answers = mechanism.answer_all(&queries);
    let avg = |j: usize| -> f64 {
        answers[j * repeats..(j + 1) * repeats].iter().sum::<f64>() / repeats as f64
    };
    let total = avg(0);
    let mut x = BitVec::zeros(n);
    for t in 0..n {
        x.set(t, total - avg(t + 1) >= 0.5);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use so_data::dist::RecordDistribution;
    use so_data::rng::seeded_rng;
    use so_data::UniformBits;
    use so_query::{BoundedNoiseSum, ExactSum};

    fn random_secret(n: usize, seed: u64) -> BitVec {
        UniformBits::new(n).sample(&mut seeded_rng(seed))
    }

    #[test]
    fn exact_interface_fully_reconstructed() {
        let x = random_secret(50, 40);
        let mut m = ExactSum::new(x.clone());
        assert_eq!(differencing_attack(&mut m), x);
    }

    #[test]
    fn averaging_defeats_fresh_noise() {
        let n = 40;
        let alpha = 2.0;
        let x = random_secret(n, 41);
        // repeats ≫ α²: 400 repetitions → averaged error ≈ α/√reps = 0.1.
        let mut m = BoundedNoiseSum::new(x.clone(), alpha, seeded_rng(42));
        let rec = averaging_differencing_attack(&mut m, 400);
        assert_eq!(rec, x, "averaging should fully recover the secret");
    }

    #[test]
    fn single_shot_noise_breaks_plain_differencing() {
        // With α = 2 a single differencing pass gets many bits wrong.
        let n = 60;
        let x = random_secret(n, 43);
        let mut m = BoundedNoiseSum::new(x.clone(), 2.0, seeded_rng(44));
        let rec = averaging_differencing_attack(&mut m, 1);
        let dist = x.hamming_distance(&rec);
        assert!(dist > 5, "expected substantial errors, got {dist}");
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_repeats_rejected() {
        let mut m = ExactSum::new(BitVec::zeros(4));
        averaging_differencing_attack(&mut m, 0);
    }
}
