//! LP-decoding reconstruction — Theorem 1.1(ii) in the linear-programming
//! form of Dwork–McSherry–Talwar ("The price of privacy and the limits of
//! LP decoding", cited as \[18\] by the paper).
//!
//! The attacker issues `m` random subset queries (each index included
//! independently with probability ½), collects noisy answers `a_q`, and
//! solves
//!
//! ```text
//!   minimize   Σ_q e_q
//!   subject to a_q − e_q ≤ Σ_{i∈q} x̃_i ≤ a_q + e_q
//!              0 ≤ x̃_i ≤ 1,  e_q ≥ 0
//! ```
//!
//! then rounds `x̃` at ½. When the per-answer error is `O(√n)` the rounded
//! solution agrees with the secret on `1 − o(1)` of the entries.

use rand::Rng;

use so_data::BitVec;
use so_lp::{Bound, Constraint, Objective, Problem, Relation, Solution, SolverConfig};
use so_query::{SubsetQuery, SubsetSumMechanism};

/// Outcome of the LP-decoding attack.
#[derive(Debug, Clone)]
pub struct LpReconResult {
    /// Rounded reconstruction.
    pub reconstruction: BitVec,
    /// The fractional LP solution before rounding.
    pub fractional: Vec<f64>,
    /// Number of queries issued.
    pub queries_issued: usize,
    /// Total residual `Σ e_q` at the optimum.
    pub total_residual: f64,
    /// Simplex pivot iterations spent solving the decoding LP.
    pub lp_iterations: usize,
}

/// Errors from the attack.
#[derive(Debug)]
pub enum LpReconError {
    /// The LP solver failed (iteration limit) or the LP was infeasible /
    /// unbounded — both impossible for well-formed inputs.
    Solver(String),
}

impl std::fmt::Display for LpReconError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpReconError::Solver(s) => write!(f, "LP decoding failed: {s}"),
        }
    }
}

impl std::error::Error for LpReconError {}

/// The density-½ random subset workload of the attack: each of `n` indices
/// is included in each of `m` queries independently with probability ½.
/// Exposed so clients that speak to a *remote* mechanism (the `so-serve`
/// wire protocol) can declare exactly the workload [`lp_reconstruct`] would.
pub fn lp_attack_queries<R: Rng>(n: usize, m: usize, rng: &mut R) -> Vec<SubsetQuery> {
    let mut queries = Vec::with_capacity(m);
    for _ in 0..m {
        let mut members = BitVec::zeros(n);
        for i in 0..n {
            members.set(i, rng.gen::<bool>());
        }
        queries.push(SubsetQuery::new(members));
    }
    queries
}

/// Runs the LP-decoding attack with `m` random subset queries.
pub fn lp_reconstruct<R: Rng>(
    mechanism: &mut dyn SubsetSumMechanism,
    m: usize,
    rng: &mut R,
) -> Result<LpReconResult, LpReconError> {
    let n = mechanism.n();
    // Declare the full (non-adaptive) query set, then submit it as one
    // batch — the mechanism sees the workload, not a drip of single queries.
    let queries = lp_attack_queries(n, m, rng);
    let answers = mechanism.answer_all(&queries);
    lp_decode(n, &queries, &answers)
}

/// Decodes collected `answers` to the declared `queries` into a rounded
/// reconstruction — the solve half of [`lp_reconstruct`], split out so the
/// answers may come from anywhere (an in-process mechanism, or a statistical
/// query service spoken to over a socket).
///
/// # Panics
/// Panics when `queries` and `answers` have different lengths.
pub fn lp_decode(
    n: usize,
    queries: &[SubsetQuery],
    answers: &[f64],
) -> Result<LpReconResult, LpReconError> {
    assert_eq!(queries.len(), answers.len(), "one answer per query");
    let span = so_obs::span("recon.lp");
    let m = queries.len();

    // Build the LP: variables 0..n are x̃ ∈ [0,1]; n..n+m are e_q ≥ 0.
    let mut p = Problem::new(n + m, Objective::Minimize);
    for i in 0..n {
        p.set_bound(i, Bound::between(0.0, 1.0));
    }
    for (j, (q, &a)) in queries.iter().zip(answers).enumerate() {
        let e = n + j;
        p.set_objective_coeff(e, 1.0);
        let mut coeffs: Vec<(usize, f64)> = (0..n)
            .filter(|&i| q.contains(i))
            .map(|i| (i, 1.0))
            .collect();
        // Σ x_i - e ≤ a
        let mut le = coeffs.clone();
        le.push((e, -1.0));
        p.add_constraint(Constraint::new(le, Relation::Le, a));
        // Σ x_i + e ≥ a
        coeffs.push((e, 1.0));
        p.add_constraint(Constraint::new(coeffs, Relation::Ge, a));
    }

    let sol = so_lp::solve(&p, &SolverConfig::default())
        .map_err(|e| LpReconError::Solver(e.to_string()))?;
    let opt = match sol {
        Solution::Optimal(s) => s,
        Solution::Infeasible => return Err(LpReconError::Solver("infeasible (impossible)".into())),
        Solution::Unbounded => return Err(LpReconError::Solver("unbounded (impossible)".into())),
    };

    let fractional: Vec<f64> = opt.x[..n].to_vec();
    let mut reconstruction = BitVec::zeros(n);
    for (i, &v) in fractional.iter().enumerate() {
        reconstruction.set(i, v >= 0.5);
    }
    let metrics = crate::obs::recon_metrics();
    metrics.lp_attacks.inc();
    metrics.lp_queries.add(m as u64);
    metrics.lp_iterations.add(opt.iterations as u64);
    if so_obs::enabled() {
        span.finish_with(&[
            ("n", n.to_string()),
            ("queries", m.to_string()),
            ("iterations", opt.iterations.to_string()),
        ]);
    }
    Ok(LpReconResult {
        reconstruction,
        fractional,
        queries_issued: m,
        total_residual: opt.objective,
        lp_iterations: opt.iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reconstruction_accuracy;
    use so_data::dist::RecordDistribution;
    use so_data::rng::seeded_rng;
    use so_data::UniformBits;
    use so_query::{BoundedNoiseSum, ExactSum};

    fn random_secret(n: usize, seed: u64) -> BitVec {
        UniformBits::new(n).sample(&mut seeded_rng(seed))
    }

    #[test]
    fn exact_answers_reconstruct_exactly() {
        let n = 32;
        let x = random_secret(n, 2);
        let mut m = ExactSum::new(x.clone());
        let r = lp_reconstruct(&mut m, 4 * n, &mut seeded_rng(3)).unwrap();
        assert_eq!(r.reconstruction, x);
        assert!(r.total_residual < 1e-6);
    }

    #[test]
    fn sqrt_n_noise_reconstructs_most_entries() {
        let n = 48;
        let alpha = 0.5 * (n as f64).sqrt(); // c'·√n with c' = 0.5
        let x = random_secret(n, 4);
        let mut m = BoundedNoiseSum::new(x.clone(), alpha, seeded_rng(5));
        let r = lp_reconstruct(&mut m, 8 * n, &mut seeded_rng(6)).unwrap();
        let acc = reconstruction_accuracy(&x, &r.reconstruction);
        // 1 − o(1) accuracy is asymptotic; at n = 48 a handful of boundary
        // bits can still round wrong, so require 80% rather than a value one
        // flipped bit away from the observed run.
        assert!(acc >= 0.8, "accuracy {acc}");
    }

    #[test]
    fn linear_noise_defeats_the_decoder() {
        // With α = n/3 (well past the √n regime) the decoder should fail to
        // reconstruct much better than chance.
        let n = 48;
        let alpha = n as f64 / 3.0;
        let x = random_secret(n, 7);
        let mut m = BoundedNoiseSum::new(x.clone(), alpha, seeded_rng(8));
        let r = lp_reconstruct(&mut m, 6 * n, &mut seeded_rng(9)).unwrap();
        let acc = reconstruction_accuracy(&x, &r.reconstruction);
        assert!(
            acc <= 0.85,
            "accuracy {acc} suspiciously high under heavy noise"
        );
    }

    #[test]
    fn fractional_solution_within_bounds() {
        let n = 24;
        let x = random_secret(n, 10);
        let mut m = BoundedNoiseSum::new(x, 2.0, seeded_rng(11));
        let r = lp_reconstruct(&mut m, 4 * n, &mut seeded_rng(12)).unwrap();
        for &v in &r.fractional {
            assert!((-1e-9..=1.0 + 1e-9).contains(&v), "fractional {v}");
        }
        assert_eq!(r.queries_issued, 4 * n);
    }
}
