//! Reconstruction-attack observability: LP-decoder counters published to the
//! `so-obs` global registry.
//!
//! Attack, query, and simplex-iteration counts are deterministic for a fixed
//! seed (the simplex solver pivots deterministically), so these metrics are
//! safe to compare across thread counts and traced/untraced runs.

use std::sync::OnceLock;

use so_obs::{global, Counter};

/// Cached handles to the reconstruction-attack metrics in the
/// [`so_obs::global`] registry. Fetch once via [`recon_metrics`]; updates are
/// lock-free.
#[derive(Debug)]
pub struct ReconMetrics {
    /// `so_recon_lp_attacks_total` — completed LP-decoding attacks.
    pub lp_attacks: Counter,
    /// `so_recon_lp_queries_total` — subset queries issued by LP attacks.
    pub lp_queries: Counter,
    /// `so_recon_lp_iterations_total` — simplex pivot iterations spent
    /// solving the decoding LPs.
    pub lp_iterations: Counter,
}

/// The reconstruction layer's global metric handles, registered on first use.
pub fn recon_metrics() -> &'static ReconMetrics {
    static METRICS: OnceLock<ReconMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        ReconMetrics {
            lp_attacks: r.counter("so_recon_lp_attacks_total"),
            lp_queries: r.counter("so_recon_lp_queries_total"),
            lp_iterations: r.counter("so_recon_lp_iterations_total"),
        }
    })
}
