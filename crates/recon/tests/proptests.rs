//! Property-based tests for the reconstruction attacks.

use proptest::prelude::*;
use so_data::BitVec;
use so_query::ExactSum;
use so_recon::{differencing_attack, exhaustive_reconstruct, reconstruction_accuracy};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Differencing against an exact interface recovers ANY secret exactly.
    #[test]
    fn differencing_is_exact_on_exact_interfaces(
        bits in proptest::collection::vec(any::<bool>(), 1..80)
    ) {
        let x = BitVec::from_bools(&bits);
        let mut mech = ExactSum::new(x.clone());
        prop_assert_eq!(differencing_attack(&mut mech), x);
    }

    /// The exhaustive attack with α = 0 recovers any secret exactly.
    #[test]
    fn exhaustive_is_exact_at_zero_noise(
        bits in proptest::collection::vec(any::<bool>(), 1..10)
    ) {
        let x = BitVec::from_bools(&bits);
        let mut mech = ExactSum::new(x.clone());
        let res = exhaustive_reconstruct(&mut mech, 0.0).expect("consistent");
        prop_assert_eq!(res.reconstruction, x);
    }

    /// Accuracy is symmetric, bounded in [0, 1], and 1 only on equality.
    #[test]
    fn accuracy_properties(
        a in proptest::collection::vec(any::<bool>(), 1..60),
        flips in proptest::collection::vec(any::<bool>(), 1..60),
    ) {
        let n = a.len().min(flips.len());
        let va = BitVec::from_bools(&a[..n]);
        let b: Vec<bool> = (0..n).map(|i| a[i] ^ flips[i]).collect();
        let vb = BitVec::from_bools(&b);
        let acc = reconstruction_accuracy(&va, &vb);
        prop_assert!((0.0..=1.0).contains(&acc));
        prop_assert!((acc - reconstruction_accuracy(&vb, &va)).abs() < 1e-12);
        let n_flips = flips[..n].iter().filter(|&&f| f).count();
        prop_assert!((acc - (1.0 - n_flips as f64 / n as f64)).abs() < 1e-12);
    }
}
