//! The metrics registry: monotonic counters, gauges, and fixed-bucket
//! histograms, keyed by name plus an optional label set and rendered in the
//! Prometheus text exposition format.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones of
//! the registered metric — hot paths fetch them once (typically into a
//! `OnceLock`-cached struct) and then update lock-free atomics. The registry
//! mutex is touched only at registration and render time.
//!
//! Determinism contract: counter values are derived from deterministic
//! program events (scans, admissions, draws), so any value that feeds an
//! experiment transcript is reproducible. Wall-clock observations (span
//! durations, per-shard timings) go only into histograms whose values are
//! **export-only** — they appear in the `SO_METRICS` dump and trace files,
//! never in transcripts.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A free-standing counter not attached to any registry (useful as a
    /// struct field default and in tests).
    pub fn detached() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (stored as `f64`).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A free-standing gauge not attached to any registry.
    pub fn detached() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative) atomically.
    pub fn add(&self, delta: f64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + delta).to_bits())
            });
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds of the finite buckets, strictly increasing. An implicit
    /// `+Inf` bucket always follows.
    bounds: Vec<f64>,
    /// One slot per finite bound plus the `+Inf` overflow bucket.
    buckets: Vec<AtomicU64>,
    /// Total observation count.
    count: AtomicU64,
    /// Sum of observations, stored as `f64` bits.
    sum: AtomicU64,
}

/// A histogram with buckets fixed at registration time.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0f64.to_bits()),
        }))
    }

    /// A free-standing histogram not attached to any registry.
    pub fn detached(bounds: &[f64]) -> Self {
        Self::new(bounds)
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let inner = &self.0;
        let idx = inner
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(inner.bounds.len());
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        let _ = inner
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + v).to_bits())
            });
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum.load(Ordering::Relaxed))
    }

    /// Cumulative per-bucket counts in bound order, the `+Inf` bucket last.
    pub fn cumulative_buckets(&self) -> Vec<u64> {
        let mut acc = 0u64;
        self.0
            .buckets
            .iter()
            .map(|b| {
                acc += b.load(Ordering::Relaxed);
                acc
            })
            .collect()
    }

    /// An upper bound for the `q`-quantile of the observed distribution:
    /// the smallest registered bucket bound whose cumulative count reaches
    /// rank `ceil(q·count)`. Returns `None` with no observations, and
    /// `f64::INFINITY` when the quantile falls in the `+Inf` overflow
    /// bucket. Used by the serve slow-log summary ("p99 ≤ 500µs").
    pub fn quantile_upper_bound(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let cum = self.cumulative_buckets();
        for (i, &c) in cum.iter().enumerate() {
            if c >= rank {
                return Some(self.0.bounds.get(i).copied().unwrap_or(f64::INFINITY));
            }
        }
        Some(f64::INFINITY)
    }

    /// The finite bucket bounds this histogram was registered with.
    pub fn bounds(&self) -> &[f64] {
        &self.0.bounds
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A metric identity: name plus an ordered label set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    name: String,
    labels: Vec<(String, String)>,
}

/// Escapes a label value for the Prometheus text exposition format:
/// backslash, double-quote, and line-feed must be backslash-escaped or the
/// rendered line is unparsable (a raw `"` terminates the value early, a raw
/// newline splits the sample across lines).
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn key(name: &str, labels: &[(&str, &str)]) -> Key {
    Key {
        name: name.to_owned(),
        labels: labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect(),
    }
}

/// A named collection of metrics.
///
/// Most code uses the process-wide default via [`global`]; experiments and
/// tests can instantiate private registries to observe a scoped run.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<Key, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Gets or creates the counter `name` (no labels).
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Gets or creates the counter `name` with the given label set.
    ///
    /// # Panics
    /// Panics if the key is already registered as a different metric type.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let mut m = self.metrics.lock().expect("metrics registry poisoned");
        match m
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Counter(Counter::detached()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name} already registered as {other:?}"),
        }
    }

    /// Gets or creates the gauge `name` (no labels).
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Gets or creates the gauge `name` with the given label set.
    ///
    /// # Panics
    /// Panics if the key is already registered as a different metric type.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let mut m = self.metrics.lock().expect("metrics registry poisoned");
        match m
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Gauge(Gauge::detached()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name} already registered as {other:?}"),
        }
    }

    /// Gets or creates the histogram `name` with the given finite bucket
    /// bounds (an implicit `+Inf` bucket is appended). Bounds are fixed by
    /// the first registration; later calls return the existing histogram.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type, or
    /// if the bounds are not strictly increasing.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        self.histogram_with(name, bounds, &[])
    }

    /// Gets or creates the histogram `name` with the given label set (per-
    /// series bucket bounds are fixed by the first registration of that
    /// exact name+labels key).
    ///
    /// # Panics
    /// Panics if the key is already registered as a different metric type,
    /// or if the bounds are not strictly increasing.
    pub fn histogram_with(&self, name: &str, bounds: &[f64], labels: &[(&str, &str)]) -> Histogram {
        let mut m = self.metrics.lock().expect("metrics registry poisoned");
        match m
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds)))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {name} already registered as {other:?}"),
        }
    }

    /// Current value of a registered counter, if present.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counter_value_with(name, &[])
    }

    /// Current value of a registered labeled counter, if present.
    pub fn counter_value_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let m = self.metrics.lock().expect("metrics registry poisoned");
        match m.get(&key(name, labels)) {
            Some(Metric::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// Current value of a registered gauge, if present.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauge_value_with(name, &[])
    }

    /// Current value of a registered labeled gauge, if present.
    pub fn gauge_value_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let m = self.metrics.lock().expect("metrics registry poisoned");
        match m.get(&key(name, labels)) {
            Some(Metric::Gauge(g)) => Some(g.get()),
            _ => None,
        }
    }

    /// Renders every registered metric in the Prometheus text exposition
    /// format, sorted by name and label set so output order is stable.
    pub fn render(&self) -> String {
        let m = self.metrics.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for (k, metric) in m.iter() {
            if last_name != Some(k.name.as_str()) {
                let ty = match metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# TYPE {} {ty}", k.name);
                last_name = Some(k.name.as_str());
            }
            let labelset = |extra: Option<(&str, String)>| -> String {
                let mut parts: Vec<String> = k
                    .labels
                    .iter()
                    .map(|(lk, lv)| format!("{lk}=\"{}\"", escape_label_value(lv)))
                    .collect();
                if let Some((lk, lv)) = extra {
                    parts.push(format!("{lk}=\"{}\"", escape_label_value(&lv)));
                }
                if parts.is_empty() {
                    String::new()
                } else {
                    format!("{{{}}}", parts.join(","))
                }
            };
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{}{} {}", k.name, labelset(None), c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{}{} {}", k.name, labelset(None), g.get());
                }
                Metric::Histogram(h) => {
                    let cum = h.cumulative_buckets();
                    for (i, bound) in h.bounds().iter().enumerate() {
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            k.name,
                            labelset(Some(("le", format!("{bound}")))),
                            cum[i]
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        k.name,
                        labelset(Some(("le", "+Inf".to_owned()))),
                        cum[cum.len() - 1]
                    );
                    let _ = writeln!(out, "{}_sum{} {}", k.name, labelset(None), h.sum());
                    let _ = writeln!(out, "{}_count{} {}", k.name, labelset(None), h.count());
                }
            }
        }
        out
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide default registry. Instrumented crates publish here;
/// `SO_METRICS` and `--metrics` dumps render it.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_handles() {
        let r = Registry::new();
        let a = r.counter("hits_total");
        let b = r.counter("hits_total");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5, "both handles point at one metric");
        assert_eq!(r.counter_value("hits_total"), Some(5));
        assert_eq!(r.counter_value("missing"), None);
    }

    #[test]
    fn labeled_counters_are_distinct_metrics() {
        let r = Registry::new();
        r.counter_with("refusals_total", &[("code", "SO-DIFF")])
            .inc();
        r.counter_with("refusals_total", &[("code", "SO-RECON")])
            .add(2);
        assert_eq!(
            r.counter_value_with("refusals_total", &[("code", "SO-DIFF")]),
            Some(1)
        );
        assert_eq!(
            r.counter_value_with("refusals_total", &[("code", "SO-RECON")]),
            Some(2)
        );
        assert_eq!(r.counter_value("refusals_total"), None, "unlabeled absent");
    }

    #[test]
    fn gauge_set_and_add() {
        let r = Registry::new();
        let g = r.gauge("epsilon_spent");
        g.set(0.5);
        g.add(0.25);
        assert!((r.gauge_value("epsilon_spent").unwrap() - 0.75).abs() < 1e-12);
        g.add(-0.75);
        assert!(g.get().abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let r = Registry::new();
        let h = r.histogram("noise_abs", &[1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 105.0).abs() < 1e-12);
        assert_eq!(h.cumulative_buckets(), vec![1, 2, 3, 4]);
        // Boundary value lands in its bucket (le semantics).
        h.observe(2.0);
        assert_eq!(h.cumulative_buckets(), vec![1, 3, 4, 5]);
    }

    #[test]
    fn render_is_sorted_and_prometheus_shaped() {
        let r = Registry::new();
        r.counter("z_total").add(3);
        r.counter("a_total").inc();
        r.gauge("mid_gauge").set(1.5);
        let h = r.histogram("lat_micros", &[10.0, 100.0]);
        h.observe(7.0);
        h.observe(250.0);
        let text = r.render();
        let a = text.find("a_total 1").expect("a_total rendered");
        let m = text.find("mid_gauge 1.5").expect("gauge rendered");
        let z = text.find("z_total 3").expect("z_total rendered");
        assert!(a < m && m < z, "sorted by name:\n{text}");
        assert!(text.contains("# TYPE lat_micros histogram"));
        assert!(text.contains("lat_micros_bucket{le=\"10\"} 1"));
        assert!(text.contains("lat_micros_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lat_micros_sum 257"));
        assert!(text.contains("lat_micros_count 2"));
    }

    #[test]
    fn label_values_are_escaped_in_render() {
        let r = Registry::new();
        r.counter_with("odd_total", &[("tenant", "a\"b")]).inc();
        r.counter_with("odd_total", &[("tenant", "c\\d")]).add(2);
        r.counter_with("odd_total", &[("tenant", "e\nf")]).add(3);
        let text = r.render();
        assert!(
            text.contains("odd_total{tenant=\"a\\\"b\"} 1"),
            "quote must be escaped:\n{text}"
        );
        assert!(
            text.contains("odd_total{tenant=\"c\\\\d\"} 2"),
            "backslash must be escaped:\n{text}"
        );
        assert!(
            text.contains("odd_total{tenant=\"e\\nf\"} 3"),
            "newline must be escaped:\n{text}"
        );
        // Every rendered line is a single sample — a raw newline in a label
        // value would have split one into two.
        assert_eq!(text.lines().count(), 4, "TYPE line + 3 samples:\n{text}");
    }

    #[test]
    fn labeled_gauges_and_histograms_are_distinct_series() {
        let r = Registry::new();
        r.gauge_with("eps_spent", &[("tenant", "open")]).set(1.5);
        r.gauge_with("eps_spent", &[("tenant", "gated")]).set(0.25);
        assert_eq!(
            r.gauge_value_with("eps_spent", &[("tenant", "open")]),
            Some(1.5)
        );
        assert_eq!(
            r.gauge_value_with("eps_spent", &[("tenant", "gated")]),
            Some(0.25)
        );
        assert_eq!(r.gauge_value("eps_spent"), None, "unlabeled absent");
        let ha = r.histogram_with("lat_micros", &[10.0], &[("op", "a")]);
        let hb = r.histogram_with("lat_micros", &[10.0], &[("op", "b")]);
        ha.observe(5.0);
        assert_eq!((ha.count(), hb.count()), (1, 0));
        let text = r.render();
        assert!(text.contains("lat_micros_bucket{op=\"a\",le=\"10\"} 1"));
        assert!(text.contains("lat_micros_count{op=\"b\"} 0"));
    }

    #[test]
    fn cumulative_buckets_with_empty_bounds() {
        // Zero finite bounds: only the implicit +Inf bucket exists.
        let h = Histogram::detached(&[]);
        assert_eq!(h.cumulative_buckets(), vec![0]);
        h.observe(3.0);
        h.observe(-1.0);
        assert_eq!(h.cumulative_buckets(), vec![2]);
        assert_eq!(h.count(), 2);
        assert!((h.sum() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cumulative_buckets_all_overflow() {
        let h = Histogram::detached(&[1.0, 2.0]);
        for v in [10.0, 20.0, 30.0] {
            h.observe(v);
        }
        assert_eq!(h.cumulative_buckets(), vec![0, 0, 3]);
    }

    #[test]
    fn quantile_upper_bound_edges() {
        let h = Histogram::detached(&[10.0, 100.0, 1000.0]);
        assert_eq!(h.quantile_upper_bound(0.99), None, "no observations");
        for _ in 0..99 {
            h.observe(5.0);
        }
        assert_eq!(h.quantile_upper_bound(0.99), Some(10.0));
        h.observe(50.0);
        // Rank ceil(0.99·100)=99 still inside the first bucket.
        assert_eq!(h.quantile_upper_bound(0.99), Some(10.0));
        assert_eq!(h.quantile_upper_bound(1.0), Some(100.0));
        // All-overflow observations land in +Inf.
        let o = Histogram::detached(&[1.0]);
        o.observe(99.0);
        assert_eq!(o.quantile_upper_bound(0.5), Some(f64::INFINITY));
        // Empty bounds: every quantile is the overflow bucket.
        let e = Histogram::detached(&[]);
        e.observe(1.0);
        assert_eq!(e.quantile_upper_bound(0.0), Some(f64::INFINITY));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bad_histogram_bounds_panic() {
        Histogram::detached(&[1.0, 1.0]);
    }
}
