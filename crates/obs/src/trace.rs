//! Span-based tracing with a pluggable subscriber.
//!
//! By default no subscriber is installed and every [`span`] / [`event`] call
//! is a single relaxed atomic load — instrumentation can stay in hot paths
//! unconditionally. Installing a subscriber (once per process, e.g. the
//! [`JsonLinesSubscriber`] behind the `SO_TRACE` env var) turns spans into
//! timed records delivered on completion.
//!
//! Tracing is **observation only**: subscribers receive copies of names,
//! durations, and rendered fields; nothing they do can flow back into
//! experiment answers, which is what lets a CI gate diff transcripts with
//! and without `SO_TRACE` set.

use std::cell::RefCell;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// A rendered trace field: key plus stringified value.
pub type Field = (&'static str, String);

/// Receives completed spans and instant events.
pub trait TraceSubscriber: Send + Sync {
    /// A span finished after `micros` microseconds.
    fn on_span(&self, name: &str, micros: u64, fields: &[Field]);

    /// An instantaneous event occurred.
    fn on_event(&self, name: &str, fields: &[Field]);

    /// Flushes any buffered output.
    fn flush(&self) {}
}

static SUBSCRIBER: OnceLock<Box<dyn TraceSubscriber>> = OnceLock::new();
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Installs the process-wide subscriber. Returns false (and drops `s`) if a
/// subscriber is already installed.
pub fn set_subscriber(s: Box<dyn TraceSubscriber>) -> bool {
    let installed = SUBSCRIBER.set(s).is_ok();
    if installed {
        ENABLED.store(true, Ordering::Release);
    }
    installed
}

/// True iff a subscriber is installed (one relaxed load — the hot-path
/// guard).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

thread_local! {
    /// The request id governing spans/events emitted from this thread, set
    /// by [`with_request_id`]. Thread-local because a serve worker handles
    /// exactly one request at a time — every span the handler opens (gate,
    /// plan, execute, dp) inherits the id without signature plumbing.
    static REQUEST_ID: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Tags every span and event emitted from the current thread with a
/// `request_id` field until the returned guard drops. Nests: the guard
/// restores the previous id (if any) on drop.
///
/// Cheap when tracing is disabled — the id is stored but only rendered into
/// records when a subscriber is installed.
pub fn with_request_id(id: &str) -> RequestIdGuard {
    let prev = REQUEST_ID.with(|r| r.replace(Some(id.to_owned())));
    RequestIdGuard { prev }
}

/// The request id currently governing this thread, if any.
pub fn current_request_id() -> Option<String> {
    REQUEST_ID.with(|r| r.borrow().clone())
}

/// RAII guard from [`with_request_id`]; restores the previous thread-local
/// request id on drop.
#[must_use = "the request id is cleared when the guard drops"]
#[derive(Debug)]
pub struct RequestIdGuard {
    prev: Option<String>,
}

impl Drop for RequestIdGuard {
    fn drop(&mut self) {
        REQUEST_ID.with(|r| *r.borrow_mut() = self.prev.take());
    }
}

/// Appends the thread-local `request_id` field to `fields` unless the
/// caller already supplied one. Only called when a subscriber is installed.
fn with_context(fields: &[Field]) -> Vec<Field> {
    let mut out = fields.to_vec();
    if !fields.iter().any(|(k, _)| *k == "request_id") {
        if let Some(id) = current_request_id() {
            out.push(("request_id", id));
        }
    }
    out
}

/// Emits an instantaneous event to the subscriber, if any.
pub fn event(name: &str, fields: &[Field]) {
    if enabled() {
        if let Some(s) = SUBSCRIBER.get() {
            s.on_event(name, &with_context(fields));
        }
    }
}

/// Flushes the installed subscriber, if any.
pub fn flush() {
    if let Some(s) = SUBSCRIBER.get() {
        s.flush();
    }
}

/// An in-flight span. Created by [`span`]; reports its wall-clock duration
/// to the subscriber when finished (or dropped). When tracing is disabled
/// the span is inert and costs nothing beyond one atomic load.
#[must_use = "a span measures the scope it lives in"]
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

/// Starts a span named `name` (inert when tracing is disabled).
pub fn span(name: &'static str) -> Span {
    Span {
        name,
        start: if enabled() {
            Some(Instant::now())
        } else {
            None
        },
    }
}

impl Span {
    /// Finishes the span, attaching rendered fields to the completion
    /// record. Fields are only rendered by callers when tracing is enabled
    /// (guard with [`enabled`] if rendering is expensive).
    pub fn finish_with(mut self, fields: &[Field]) {
        if let Some(start) = self.start.take() {
            if let Some(s) = SUBSCRIBER.get() {
                s.on_span(
                    self.name,
                    start.elapsed().as_micros() as u64,
                    &with_context(fields),
                );
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            if let Some(s) = SUBSCRIBER.get() {
                s.on_span(
                    self.name,
                    start.elapsed().as_micros() as u64,
                    &with_context(&[]),
                );
            }
        }
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A subscriber writing one JSON object per line to any `Write` sink —
/// the `SO_TRACE=path` backend. Records carry a monotonic sequence number
/// so interleaving is reconstructable.
pub struct JsonLinesSubscriber {
    out: Mutex<Box<dyn Write + Send>>,
    seq: AtomicU64,
}

impl JsonLinesSubscriber {
    /// Writes JSON lines to the file at `path` (created / truncated).
    pub fn create(path: &str) -> std::io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(Self::to_writer(Box::new(std::io::BufWriter::new(f))))
    }

    /// Writes JSON lines to an arbitrary sink (used by tests).
    pub fn to_writer(out: Box<dyn Write + Send>) -> Self {
        JsonLinesSubscriber {
            out: Mutex::new(out),
            seq: AtomicU64::new(0),
        }
    }

    fn write_record(&self, kind: &str, name: &str, micros: Option<u64>, fields: &[Field]) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut line = format!(
            "{{\"seq\":{seq},\"kind\":\"{kind}\",\"name\":\"{}\"",
            json_escape(name)
        );
        if let Some(us) = micros {
            line.push_str(&format!(",\"us\":{us}"));
        }
        for (k, v) in fields {
            line.push_str(&format!(",\"{}\":\"{}\"", json_escape(k), json_escape(v)));
        }
        line.push_str("}\n");
        let mut out = self.out.lock().expect("trace sink poisoned");
        let _ = out.write_all(line.as_bytes());
    }
}

impl TraceSubscriber for JsonLinesSubscriber {
    fn on_span(&self, name: &str, micros: u64, fields: &[Field]) {
        self.write_record("span", name, Some(micros), fields);
    }

    fn on_event(&self, name: &str, fields: &[Field]) {
        self.write_record("event", name, None, fields);
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("trace sink poisoned").flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A sink capturing everything written, for asserting on JSON lines.
    #[derive(Clone, Default)]
    struct Capture(Arc<Mutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn json_lines_subscriber_writes_valid_records() {
        let cap = Capture::default();
        let sub = JsonLinesSubscriber::to_writer(Box::new(cap.clone()));
        sub.on_span("plan.execute", 42, &[("queries", "10".to_owned())]);
        sub.on_event("gate.refuse", &[("code", "SO-DIFF".to_owned())]);
        sub.flush();
        let text = String::from_utf8(cap.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"seq\":0,\"kind\":\"span\",\"name\":\"plan.execute\",\"us\":42,\"queries\":\"10\"}"
        );
        assert_eq!(
            lines[1],
            "{\"seq\":1,\"kind\":\"event\",\"name\":\"gate.refuse\",\"code\":\"SO-DIFF\"}"
        );
    }

    #[test]
    fn json_escaping_covers_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\n\t"), "x\\n\\t");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn request_id_context_nests_and_restores() {
        assert_eq!(current_request_id(), None);
        {
            let _outer = with_request_id("req-1");
            assert_eq!(current_request_id().as_deref(), Some("req-1"));
            {
                let _inner = with_request_id("req-2");
                assert_eq!(current_request_id().as_deref(), Some("req-2"));
            }
            assert_eq!(current_request_id().as_deref(), Some("req-1"));
        }
        assert_eq!(current_request_id(), None);
    }

    #[test]
    fn context_appends_request_id_without_clobbering() {
        let _g = with_request_id("ctx-9");
        let got = with_context(&[("op", "workload".to_owned())]);
        assert_eq!(
            got,
            vec![
                ("op", "workload".to_owned()),
                ("request_id", "ctx-9".to_owned())
            ]
        );
        // An explicit request_id field wins over the ambient one.
        let explicit = with_context(&[("request_id", "mine".to_owned())]);
        assert_eq!(explicit, vec![("request_id", "mine".to_owned())]);
    }

    #[test]
    fn context_is_per_thread() {
        let _g = with_request_id("main-thread");
        let other = std::thread::spawn(current_request_id)
            .join()
            .expect("thread");
        assert_eq!(other, None, "request ids do not leak across threads");
    }

    #[test]
    fn spans_are_inert_without_a_subscriber() {
        // The global subscriber may or may not be installed by other tests
        // in this binary; detached spans must be safe either way.
        let s = span("inert");
        s.finish_with(&[]);
        let _auto = span("dropped");
        // Dropping without finish_with must not panic.
    }
}
