#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! # so-obs — observability substrate
//!
//! The paper's results are *accounting* statements: Theorem 1.1 bounds what
//! an adversary learns per query answered, and the Cohen–Nissim LP attack
//! ran against an instrumented production system. This crate gives the
//! workspace the same kind of runtime ledger, with zero dependencies:
//!
//! * [`metrics`] — a registry of monotonic [`Counter`]s, [`Gauge`]s, and
//!   fixed-bucket [`Histogram`]s, rendered in the Prometheus text
//!   exposition format ([`Registry::render`]). Engines publish to the
//!   process-wide [`global`] registry; experiments can scope a private
//!   [`Registry`].
//! * [`trace`] — span-based tracing with a pluggable [`TraceSubscriber`].
//!   No-op by default (one atomic load per span); `SO_TRACE=path` installs
//!   a [`JsonLinesSubscriber`] writing one JSON record per completed span.
//!   A thread-local request-id context ([`with_request_id`]) tags every
//!   span/event a request handler emits, so one trace file reconstructs
//!   per-request span trees keyed by `request_id`.
//!
//! Determinism contract (enforced by the workspace's CI transcript gates):
//! every metric value that can feed an experiment transcript is derived
//! from deterministic counts; wall-clock data (span durations, per-shard
//! timings) is **export-only** — it reaches the `SO_TRACE` file and the
//! `SO_METRICS` dump, never stdout transcripts.
//!
//! Environment variables (see also `SO_THREADS` in `so-plan`):
//!
//! | variable     | effect                                                  |
//! |--------------|---------------------------------------------------------|
//! | `SO_TRACE`   | write JSON-lines span records to this path              |
//! | `SO_METRICS` | write a Prometheus-style metrics dump to this path      |

pub mod metrics;
pub mod trace;

pub use metrics::{global, Counter, Gauge, Histogram, Registry};
pub use trace::{
    current_request_id, enabled, event, flush, set_subscriber, span, with_request_id, Field,
    JsonLinesSubscriber, RequestIdGuard, Span, TraceSubscriber,
};

/// Environment variable naming the JSON-lines trace output path.
pub const TRACE_ENV: &str = "SO_TRACE";

/// Environment variable naming the metrics dump output path.
pub const METRICS_ENV: &str = "SO_METRICS";

/// Installs the `SO_TRACE` JSON-lines subscriber if the env var is set and
/// no subscriber is installed yet. Returns true iff tracing is active after
/// the call. Unopenable paths are reported on stderr and ignored — an
/// observability failure must never fail the experiment.
pub fn init_from_env() -> bool {
    if let Ok(path) = std::env::var(TRACE_ENV) {
        if !path.is_empty() && !trace::enabled() {
            match JsonLinesSubscriber::create(&path) {
                Ok(sub) => {
                    trace::set_subscriber(Box::new(sub));
                }
                Err(e) => eprintln!("so-obs: cannot open {TRACE_ENV}={path}: {e}"),
            }
        }
    }
    trace::enabled()
}

/// Writes the [`global`] registry's Prometheus dump to the `SO_METRICS`
/// path, if that env var is set. Returns true iff a dump was written.
/// Unopenable paths are reported on stderr and ignored.
pub fn write_metrics_if_env() -> bool {
    if let Ok(path) = std::env::var(METRICS_ENV) {
        if !path.is_empty() {
            match std::fs::write(&path, global().render()) {
                Ok(()) => return true,
                Err(e) => eprintln!("so-obs: cannot write {METRICS_ENV}={path}: {e}"),
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared() {
        let c = global().counter("so_obs_selftest_total");
        c.add(2);
        assert!(global().counter_value("so_obs_selftest_total").unwrap() >= 2);
    }
}
