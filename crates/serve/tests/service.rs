//! End-to-end service tests over real loopback sockets: session protocol,
//! adversarial framing, tenant isolation, rate limiting, graceful shutdown,
//! and the HTTP `/metrics` endpoint.

use std::io::{Read, Write};
use std::net::TcpStream;

use so_plan::workload::Noise;
use so_serve::proto::{read_frame, write_frame, Request, Response, DEFAULT_MAX_FRAME};
use so_serve::{
    lp_attack, AttackOutcome, ServerConfig, ServerHandle, ServiceClient, TenantConfig, WireQuery,
};

fn boot(tenants: Vec<TenantConfig>) -> ServerHandle {
    so_serve::spawn(tenants, ServerConfig::default(), None).expect("bind loopback")
}

fn demo_tenants() -> Vec<TenantConfig> {
    vec![
        TenantConfig::ungated("open", 32, 7),
        TenantConfig::gated("guarded", 32, 7),
    ]
}

#[test]
fn hello_workload_budget_roundtrip() {
    let server = boot(vec![
        TenantConfig::ungated("open", 16, 3),
        TenantConfig::gated("metered", 16, 3).with_continual_budget(1.0),
    ]);
    let mut c = ServiceClient::connect(server.local_addr()).unwrap();
    assert_eq!(c.hello("open").unwrap(), (false, 16));
    c.ping().unwrap();

    // Exact subset sums against the ungated tenant match server truth.
    let answers = match c
        .workload(vec![WireQuery::Subset((0..16).collect())], Noise::Exact)
        .unwrap()
    {
        Response::Answers { answers } => answers,
        other => panic!("{other:?}"),
    };
    let truth = server
        .with_tenant("open", |t| t.secret().count_ones())
        .unwrap();
    assert_eq!(answers, vec![truth as f64]);

    // Re-bind the same session to the metered tenant and check accounting.
    assert_eq!(c.hello("metered").unwrap(), (true, 16));
    match c
        .workload(
            vec![WireQuery::Subset(vec![0, 1])],
            Noise::PureDp { epsilon: 0.25 },
        )
        .unwrap()
    {
        Response::Answers { .. } => {}
        other => panic!("{other:?}"),
    }
    match c.budget().unwrap() {
        Response::BudgetState {
            accounting,
            spent,
            remaining,
            ..
        } => {
            assert!(accounting);
            assert!((spent - 0.25).abs() < 1e-12);
            assert!((remaining - 0.75).abs() < 1e-12);
        }
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn unknown_tenant_and_missing_hello_are_so_tenant() {
    let server = boot(demo_tenants());
    let mut c = ServiceClient::connect(server.local_addr()).unwrap();
    match c.call(&Request::Hello {
        tenant: "nobody".to_owned(),
    }) {
        Ok(Response::Error { code, .. }) => assert_eq!(code, "SO-TENANT"),
        other => panic!("{other:?}"),
    }
    match c.call(&Request::Budget) {
        Ok(Response::Error { code, detail, .. }) => {
            assert_eq!(code, "SO-TENANT");
            assert!(detail.contains("hello"), "{detail}");
        }
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn remote_lp_attack_reconstructs_open_and_is_refused_gated() {
    let n = 24;
    let server = boot(vec![
        TenantConfig::ungated("open", n, 7),
        TenantConfig::gated("guarded", n, 7),
    ]);

    // Ungated: exact answers + LP decoding = full reconstruction.
    let mut c = ServiceClient::connect(server.local_addr()).unwrap();
    c.hello("open").unwrap();
    let mut rng = so_data::rng::seeded_rng(99);
    match lp_attack(&mut c, n, 4 * n, Noise::Exact, &mut rng).unwrap() {
        AttackOutcome::Reconstructed { reconstruction, .. } => {
            let acc = server
                .with_tenant("open", |t| {
                    so_recon::reconstruction_accuracy(t.secret(), &reconstruction)
                })
                .unwrap();
            assert!(acc >= 0.95, "accuracy {acc}");
        }
        other => panic!("{other:?}"),
    }

    // Gated: the same workload is refused with reconstruction evidence,
    // and the tenant's audit log records citable entries.
    let mut c = ServiceClient::connect(server.local_addr()).unwrap();
    c.hello("guarded").unwrap();
    let mut rng = so_data::rng::seeded_rng(99);
    match lp_attack(&mut c, n, 4 * n, Noise::Exact, &mut rng).unwrap() {
        AttackOutcome::Refused { codes, .. } => {
            assert!(codes.iter().any(|c| c == "SO-RECON"), "{codes:?}");
        }
        other => panic!("{other:?}"),
    }
    let log_len = server
        .with_tenant("guarded", |t| t.refusal_log().len())
        .unwrap();
    assert!(log_len > 0, "refusals are audited server-side");
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Adversarial framing: raw sockets, no client library.
// ---------------------------------------------------------------------------

fn raw(server: &ServerHandle) -> TcpStream {
    TcpStream::connect(server.local_addr()).unwrap()
}

#[test]
fn oversized_frame_is_refused_and_closed() {
    let server = boot(demo_tenants());
    let mut s = raw(&server);
    // Declare a frame bigger than the cap; send nothing else.
    s.write_all(&(64u32 << 20).to_be_bytes()).unwrap();
    let resp = read_frame(&mut s, DEFAULT_MAX_FRAME).unwrap();
    match Response::from_json(&resp).unwrap() {
        Response::Error { code, detail, .. } => {
            assert_eq!(code, "SO-PROTO");
            assert!(detail.contains("exceeds"), "{detail}");
        }
        other => panic!("{other:?}"),
    }
    // The server closes after an oversized frame (the stream is out of
    // sync); the next read sees EOF.
    let mut buf = [0u8; 1];
    assert_eq!(s.read(&mut buf).unwrap(), 0);
    server.shutdown();
}

#[test]
fn garbage_payload_keeps_the_session_alive() {
    let server = boot(demo_tenants());
    let mut s = raw(&server);
    // A well-framed payload of non-JSON garbage: SO-PROTO, session lives.
    let garbage = b"\x01\x02\x03\x04not json";
    s.write_all(&(garbage.len() as u32).to_be_bytes()).unwrap();
    s.write_all(garbage).unwrap();
    let resp = read_frame(&mut s, DEFAULT_MAX_FRAME).unwrap();
    match Response::from_json(&resp).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, "SO-PROTO"),
        other => panic!("{other:?}"),
    }
    // Valid JSON, malformed request: still SO-PROTO, still alive.
    let bad = b"{\"op\":\"no-such-op\"}";
    s.write_all(&(bad.len() as u32).to_be_bytes()).unwrap();
    s.write_all(bad).unwrap();
    let resp = read_frame(&mut s, DEFAULT_MAX_FRAME).unwrap();
    match Response::from_json(&resp).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, "SO-PROTO"),
        other => panic!("{other:?}"),
    }
    // And a real request on the same socket succeeds.
    write_frame(&mut s, &Request::Ping.to_json()).unwrap();
    let resp = read_frame(&mut s, DEFAULT_MAX_FRAME).unwrap();
    assert!(matches!(
        Response::from_json(&resp).unwrap(),
        Response::Pong
    ));
    server.shutdown();
}

#[test]
fn partial_writes_are_reassembled() {
    let server = boot(demo_tenants());
    let mut s = raw(&server);
    // Dribble a ping frame byte by byte; the blocking reader reassembles.
    let payload = Request::Ping.to_json().render();
    let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
    frame.extend_from_slice(payload.as_bytes());
    for b in frame {
        s.write_all(&[b]).unwrap();
        s.flush().unwrap();
    }
    let resp = read_frame(&mut s, DEFAULT_MAX_FRAME).unwrap();
    assert!(matches!(
        Response::from_json(&resp).unwrap(),
        Response::Pong
    ));
    server.shutdown();
}

#[test]
fn mid_request_disconnect_does_not_corrupt_other_sessions() {
    let server = boot(vec![
        TenantConfig::gated("metered", 16, 3).with_continual_budget(1.0)
    ]);

    // Session A starts spending budget.
    let mut a = ServiceClient::connect(server.local_addr()).unwrap();
    a.hello("metered").unwrap();
    a.workload(
        vec![WireQuery::Subset(vec![0])],
        Noise::PureDp { epsilon: 0.25 },
    )
    .unwrap();

    // Session B declares a large frame, sends half of it, and vanishes.
    {
        let mut b = raw(&server);
        b.write_all(&(1000u32).to_be_bytes()).unwrap();
        b.write_all(&[b'{'; 400]).unwrap();
        // Dropped here: mid-request disconnect.
    }

    // Session A continues unharmed, and the accountant saw exactly A's
    // spends — the truncated session charged nothing.
    a.workload(
        vec![WireQuery::Subset(vec![1])],
        Noise::PureDp { epsilon: 0.25 },
    )
    .unwrap();
    match a.budget().unwrap() {
        Response::BudgetState { spent, .. } => assert!((spent - 0.5).abs() < 1e-12),
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn immediate_disconnects_and_prefix_fragments_never_wedge_the_pool() {
    let server = boot(demo_tenants());
    // A burst of degenerate sessions: instant close, 1-byte prefix, 3-byte
    // prefix.
    for _ in 0..3 {
        drop(raw(&server));
        let mut s = raw(&server);
        s.write_all(&[0]).unwrap();
        drop(s);
        let mut s = raw(&server);
        s.write_all(&[0, 0, 9]).unwrap();
        drop(s);
    }
    // Workers all survive: a real session still gets served.
    let mut c = ServiceClient::connect(server.local_addr()).unwrap();
    c.ping().unwrap();
    server.shutdown();
}

#[test]
fn rate_limit_pushes_back_with_retry_after() {
    let server = boot(vec![TenantConfig::ungated("tiny", 8, 1).with_rate(2, 10)]);
    let mut c = ServiceClient::connect(server.local_addr()).unwrap();
    c.hello("tiny").unwrap();
    let q = || vec![WireQuery::Subset(vec![0])];
    assert!(matches!(
        c.workload(q(), Noise::Exact).unwrap(),
        Response::Answers { .. }
    ));
    assert!(matches!(
        c.workload(q(), Noise::Exact).unwrap(),
        Response::Answers { .. }
    ));
    // Bucket empty: SO-RATE with honest retry-after.
    let retry = match c.workload(q(), Noise::Exact).unwrap() {
        Response::Error {
            code,
            retry_after_ticks,
            ..
        } => {
            assert_eq!(code, "SO-RATE");
            retry_after_ticks.expect("rate refusals carry retry_after")
        }
        other => panic!("{other:?}"),
    };
    assert!(retry > 0 && retry <= 10, "{retry}");
    // In tick-per-request mode each request advances the clock once, so
    // `retry` further requests later the bucket has earned a token.
    for _ in 0..retry.saturating_sub(1) {
        let _ = c.workload(q(), Noise::Exact).unwrap();
    }
    assert!(matches!(
        c.workload(q(), Noise::Exact).unwrap(),
        Response::Answers { .. }
    ));
    server.shutdown();
}

#[test]
fn http_metrics_endpoint_serves_the_registry() {
    let server = boot(demo_tenants());
    // Generate some traffic first.
    let mut c = ServiceClient::connect(server.local_addr()).unwrap();
    c.ping().unwrap();

    let mut s = raw(&server);
    s.write_all(b"GET /metrics HTTP/1.1\r\nhost: localhost\r\n\r\n")
        .unwrap();
    let mut body = String::new();
    s.read_to_string(&mut body).unwrap();
    assert!(body.starts_with("HTTP/1.1 200 OK"), "{body}");
    assert!(body.contains("so_serve_requests_total"), "{body}");
    assert!(body.contains("so_serve_sessions_total"), "{body}");

    // Unknown paths 404 without touching the registry.
    let mut s = raw(&server);
    s.write_all(b"GET /nope HTTP/1.1\r\n\r\n").unwrap();
    let mut body = String::new();
    s.read_to_string(&mut body).unwrap();
    assert!(body.starts_with("HTTP/1.1 404"), "{body}");
    server.shutdown();
}

#[test]
fn healthz_and_head_requests_through_the_sniffing_path() {
    let server = boot(demo_tenants());

    // GET /healthz answers a bare liveness probe.
    let mut s = raw(&server);
    s.write_all(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n")
        .unwrap();
    let mut body = String::new();
    s.read_to_string(&mut body).unwrap();
    assert!(body.starts_with("HTTP/1.1 200 OK"), "{body}");
    assert!(body.ends_with("\r\n\r\nok\n"), "{body}");

    // HEAD /metrics: same status + content-length, empty body.
    let mut s = raw(&server);
    s.write_all(b"HEAD /metrics HTTP/1.1\r\nhost: x\r\n\r\n")
        .unwrap();
    let mut head = String::new();
    s.read_to_string(&mut head).unwrap();
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(
        head.ends_with("\r\n\r\n"),
        "HEAD body must be empty: {head}"
    );
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("content-length: "))
        .expect("content-length header")
        .trim()
        .parse()
        .unwrap();
    assert!(len > 0, "HEAD still advertises the GET body length");

    // HEAD of an unknown path is a body-less 404.
    let mut s = raw(&server);
    s.write_all(b"HEAD /nope HTTP/1.1\r\n\r\n").unwrap();
    let mut head = String::new();
    s.read_to_string(&mut head).unwrap();
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    assert!(head.ends_with("\r\n\r\n"), "{head}");
    server.shutdown();
}

#[test]
fn request_ids_echo_and_server_assigns_sequence_numbers() {
    let server = boot(demo_tenants());
    let mut c = ServiceClient::connect(server.local_addr()).unwrap();

    // Client-supplied id comes back verbatim.
    c.set_next_request_id("probe-42");
    c.ping().unwrap();
    assert_eq!(c.last_request_id(), Some("probe-42"));

    // Untagged requests get server-assigned `srv-N` ids, monotonic per
    // server (the assignment counter only advances for untagged frames).
    c.ping().unwrap();
    let first = c.last_request_id().unwrap().to_owned();
    c.ping().unwrap();
    let second = c.last_request_id().unwrap().to_owned();
    assert!(first.starts_with("srv-"), "{first}");
    assert!(second.starts_with("srv-"), "{second}");
    let n1: u64 = first["srv-".len()..].parse().unwrap();
    let n2: u64 = second["srv-".len()..].parse().unwrap();
    assert_eq!(
        n2,
        n1 + 1,
        "sequential untagged requests get consecutive ids"
    );

    // A malformed id (wrong type) is refused as SO-PROTO without killing
    // the session.
    let mut s = raw(&server);
    let bad = b"{\"op\":\"ping\",\"request_id\":7}";
    s.write_all(&(bad.len() as u32).to_be_bytes()).unwrap();
    s.write_all(bad).unwrap();
    let resp = read_frame(&mut s, DEFAULT_MAX_FRAME).unwrap();
    match Response::from_json(&resp).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, "SO-PROTO"),
        other => panic!("{other:?}"),
    }
    write_frame(&mut s, &Request::Ping.to_json()).unwrap();
    let resp = read_frame(&mut s, DEFAULT_MAX_FRAME).unwrap();
    assert!(matches!(
        Response::from_json(&resp).unwrap(),
        Response::Pong
    ));
    server.shutdown();
}

#[test]
fn flight_recorder_captures_requests_and_serves_wire_and_http_dumps() {
    let n = 24;
    let server = boot(vec![
        TenantConfig::ungated("open", n, 7).with_flight_cap(8),
        TenantConfig::gated("guarded", n, 7).with_flight_cap(8),
    ]);

    // Drive one answered workload (tagged) and one refused attack.
    let mut c = ServiceClient::connect(server.local_addr()).unwrap();
    c.hello("guarded").unwrap();
    c.set_next_request_id("atk-1");
    let mut rng = so_data::rng::seeded_rng(99);
    match lp_attack(&mut c, n, 4 * n, Noise::Exact, &mut rng).unwrap() {
        AttackOutcome::Refused { .. } => {}
        other => panic!("{other:?}"),
    }

    // The flight op reads the ring over the wire — and is itself absent
    // from it (introspection is never recorded).
    let (cap, total, records) = c.flight().unwrap();
    assert_eq!(cap, 8);
    assert_eq!(total, 2, "hello + workload; the flight op is not recorded");
    assert_eq!(records.len(), 2);
    assert_eq!(records[0].op, "hello");
    assert_eq!(records[0].outcome, "ok");
    let wl = &records[1];
    assert_eq!(wl.op, "workload");
    assert_eq!(wl.request_id, "atk-1");
    assert_eq!(wl.outcome, "refused");
    assert!(wl.codes.iter().any(|c| c == "SO-RECON"), "{:?}", wl.codes);
    assert!(!wl.evidence.is_empty(), "refusal evidence rides along");
    assert_eq!(wl.rows_scanned, 0, "refused workloads never touch the data");
    let (_, _, again) = c.flight().unwrap();
    assert_eq!(again.len(), 2, "reading the recorder does not grow it");

    // The same dump is one JSON line per record over HTTP.
    let mut s = raw(&server);
    s.write_all(b"GET /flight/guarded HTTP/1.1\r\nhost: x\r\n\r\n")
        .unwrap();
    let mut body = String::new();
    s.read_to_string(&mut body).unwrap();
    assert!(body.starts_with("HTTP/1.1 200 OK"), "{body}");
    let payload = body.split("\r\n\r\n").nth(1).unwrap();
    assert_eq!(payload.lines().count(), 2, "{payload}");
    assert!(payload.contains("\"request_id\":\"atk-1\""), "{payload}");
    assert!(payload.contains("\"latency_micros\""), "{payload}");

    // Unknown tenant: 404. Tenants never leak across dumps.
    let mut s = raw(&server);
    s.write_all(b"GET /flight/nobody HTTP/1.1\r\n\r\n").unwrap();
    let mut body = String::new();
    s.read_to_string(&mut body).unwrap();
    assert!(body.starts_with("HTTP/1.1 404"), "{body}");

    // The labeled metrics saw the same traffic.
    let text = c.metrics().unwrap();
    assert!(
        text.contains("so_serve_requests_by_op_total{op=\"workload\",tenant=\"guarded\"}"),
        "{text}"
    );
    assert!(
        text.contains("so_serve_tenant_refusals_total{code=\"SO-RECON\",tenant=\"guarded\"}"),
        "{text}"
    );
    server.shutdown();
}

#[test]
fn flight_ring_evicts_oldest_but_total_keeps_counting() {
    let server = boot(vec![TenantConfig::ungated("open", 8, 3).with_flight_cap(2)]);
    let mut c = ServiceClient::connect(server.local_addr()).unwrap();
    c.hello("open").unwrap();
    for _ in 0..4 {
        c.workload(vec![WireQuery::Subset(vec![0])], Noise::Exact)
            .unwrap();
    }
    let (cap, total, records) = c.flight().unwrap();
    assert_eq!(cap, 2);
    assert_eq!(total, 5, "hello + 4 workloads, evictions included");
    assert_eq!(records.len(), 2, "ring holds only the newest cap records");
    assert!(records.iter().all(|r| r.op == "workload"));
    assert!(
        records.iter().all(|r| r.rows_scanned == 8),
        "one subset query over 8 rows: {records:?}"
    );
    server.shutdown();
}

#[test]
fn flight_requires_a_bound_tenant_but_ignores_rate_limits() {
    let server = boot(vec![TenantConfig::ungated("tiny", 8, 1).with_rate(1, 1000)]);
    let mut c = ServiceClient::connect(server.local_addr()).unwrap();

    // No hello yet: introspection has no tenant to read.
    match c.call(&Request::Flight).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, "SO-TENANT"),
        other => panic!("{other:?}"),
    }

    c.hello("tiny").unwrap();
    let q = || vec![WireQuery::Subset(vec![0])];
    c.workload(q(), Noise::Exact).unwrap();
    // Bucket is now empty; workloads bounce…
    match c.workload(q(), Noise::Exact).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, "SO-RATE"),
        other => panic!("{other:?}"),
    }
    // …but the throttled tenant can still inspect its own recorder, and the
    // rate-limited attempt is itself on record.
    let (_, _, records) = c.flight().unwrap();
    let last = records.last().unwrap();
    assert_eq!(last.outcome, "rate_limited");
    assert_eq!(last.codes, vec!["SO-RATE".to_owned()]);
    server.shutdown();
}

#[test]
fn shutdown_drains_in_flight_sessions_and_refuses_late_requests() {
    let server = boot(demo_tenants());
    let addr = server.local_addr();
    let mut c = ServiceClient::connect(addr).unwrap();
    c.hello("open").unwrap();
    c.ping().unwrap();
    server.shutdown();
    // The drained session's next request is answered with SO-SHUTDOWN (or
    // the socket is already closed — both are clean ends, never a hang).
    match c.call(&Request::Ping) {
        Ok(Response::Error { code, .. }) => assert_eq!(code, "SO-SHUTDOWN"),
        Ok(other) => panic!("{other:?}"),
        Err(_) => {} // connection closed during drain: acceptable
    }
    // New connections are refused once the listener is gone.
    assert!(
        TcpStream::connect(addr).is_err() || {
            // Rare: the OS may still accept briefly; a request must then fail.
            let mut late = ServiceClient::connect(addr).unwrap();
            late.ping().is_err()
        }
    );
}

#[test]
fn concurrent_tenants_do_not_interleave_noise_streams() {
    // Two tenants hammered from two threads: each tenant's seeded noise
    // stream must depend only on its own request order, not on scheduling.
    let run = || {
        let server = boot(vec![
            TenantConfig::ungated("a", 16, 1),
            TenantConfig::ungated("b", 16, 2),
        ]);
        let addr = server.local_addr();
        let spawn_client = |tenant: &'static str| {
            std::thread::spawn(move || {
                let mut c = ServiceClient::connect(addr).unwrap();
                c.hello(tenant).unwrap();
                let mut out = Vec::new();
                for _ in 0..5 {
                    match c
                        .workload(
                            vec![WireQuery::Subset(vec![0, 1, 2])],
                            Noise::Bounded { alpha: 4.0 },
                        )
                        .unwrap()
                    {
                        Response::Answers { answers } => out.extend(answers),
                        other => panic!("{other:?}"),
                    }
                }
                out
            })
        };
        let ta = spawn_client("a");
        let tb = spawn_client("b");
        let (a, b) = (ta.join().unwrap(), tb.join().unwrap());
        server.shutdown();
        (a, b)
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "per-tenant answer streams are deterministic");
}
