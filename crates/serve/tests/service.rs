//! End-to-end service tests over real loopback sockets: session protocol,
//! adversarial framing, tenant isolation, rate limiting, graceful shutdown,
//! and the HTTP `/metrics` endpoint.

use std::io::{Read, Write};
use std::net::TcpStream;

use so_plan::workload::Noise;
use so_serve::proto::{read_frame, write_frame, Request, Response, DEFAULT_MAX_FRAME};
use so_serve::{
    lp_attack, AttackOutcome, ServerConfig, ServerHandle, ServiceClient, TenantConfig, WireQuery,
};

fn boot(tenants: Vec<TenantConfig>) -> ServerHandle {
    so_serve::spawn(tenants, ServerConfig::default(), None).expect("bind loopback")
}

fn demo_tenants() -> Vec<TenantConfig> {
    vec![
        TenantConfig::ungated("open", 32, 7),
        TenantConfig::gated("guarded", 32, 7),
    ]
}

#[test]
fn hello_workload_budget_roundtrip() {
    let server = boot(vec![
        TenantConfig::ungated("open", 16, 3),
        TenantConfig::gated("metered", 16, 3).with_continual_budget(1.0),
    ]);
    let mut c = ServiceClient::connect(server.local_addr()).unwrap();
    assert_eq!(c.hello("open").unwrap(), (false, 16));
    c.ping().unwrap();

    // Exact subset sums against the ungated tenant match server truth.
    let answers = match c
        .workload(vec![WireQuery::Subset((0..16).collect())], Noise::Exact)
        .unwrap()
    {
        Response::Answers { answers } => answers,
        other => panic!("{other:?}"),
    };
    let truth = server
        .with_tenant("open", |t| t.secret().count_ones())
        .unwrap();
    assert_eq!(answers, vec![truth as f64]);

    // Re-bind the same session to the metered tenant and check accounting.
    assert_eq!(c.hello("metered").unwrap(), (true, 16));
    match c
        .workload(
            vec![WireQuery::Subset(vec![0, 1])],
            Noise::PureDp { epsilon: 0.25 },
        )
        .unwrap()
    {
        Response::Answers { .. } => {}
        other => panic!("{other:?}"),
    }
    match c.budget().unwrap() {
        Response::BudgetState {
            accounting,
            spent,
            remaining,
            ..
        } => {
            assert!(accounting);
            assert!((spent - 0.25).abs() < 1e-12);
            assert!((remaining - 0.75).abs() < 1e-12);
        }
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn unknown_tenant_and_missing_hello_are_so_tenant() {
    let server = boot(demo_tenants());
    let mut c = ServiceClient::connect(server.local_addr()).unwrap();
    match c.call(&Request::Hello {
        tenant: "nobody".to_owned(),
    }) {
        Ok(Response::Error { code, .. }) => assert_eq!(code, "SO-TENANT"),
        other => panic!("{other:?}"),
    }
    match c.call(&Request::Budget) {
        Ok(Response::Error { code, detail, .. }) => {
            assert_eq!(code, "SO-TENANT");
            assert!(detail.contains("hello"), "{detail}");
        }
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn remote_lp_attack_reconstructs_open_and_is_refused_gated() {
    let n = 24;
    let server = boot(vec![
        TenantConfig::ungated("open", n, 7),
        TenantConfig::gated("guarded", n, 7),
    ]);

    // Ungated: exact answers + LP decoding = full reconstruction.
    let mut c = ServiceClient::connect(server.local_addr()).unwrap();
    c.hello("open").unwrap();
    let mut rng = so_data::rng::seeded_rng(99);
    match lp_attack(&mut c, n, 4 * n, Noise::Exact, &mut rng).unwrap() {
        AttackOutcome::Reconstructed { reconstruction, .. } => {
            let acc = server
                .with_tenant("open", |t| {
                    so_recon::reconstruction_accuracy(t.secret(), &reconstruction)
                })
                .unwrap();
            assert!(acc >= 0.95, "accuracy {acc}");
        }
        other => panic!("{other:?}"),
    }

    // Gated: the same workload is refused with reconstruction evidence,
    // and the tenant's audit log records citable entries.
    let mut c = ServiceClient::connect(server.local_addr()).unwrap();
    c.hello("guarded").unwrap();
    let mut rng = so_data::rng::seeded_rng(99);
    match lp_attack(&mut c, n, 4 * n, Noise::Exact, &mut rng).unwrap() {
        AttackOutcome::Refused { codes, .. } => {
            assert!(codes.iter().any(|c| c == "SO-RECON"), "{codes:?}");
        }
        other => panic!("{other:?}"),
    }
    let log_len = server
        .with_tenant("guarded", |t| t.refusal_log().len())
        .unwrap();
    assert!(log_len > 0, "refusals are audited server-side");
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Adversarial framing: raw sockets, no client library.
// ---------------------------------------------------------------------------

fn raw(server: &ServerHandle) -> TcpStream {
    TcpStream::connect(server.local_addr()).unwrap()
}

#[test]
fn oversized_frame_is_refused_and_closed() {
    let server = boot(demo_tenants());
    let mut s = raw(&server);
    // Declare a frame bigger than the cap; send nothing else.
    s.write_all(&(64u32 << 20).to_be_bytes()).unwrap();
    let resp = read_frame(&mut s, DEFAULT_MAX_FRAME).unwrap();
    match Response::from_json(&resp).unwrap() {
        Response::Error { code, detail, .. } => {
            assert_eq!(code, "SO-PROTO");
            assert!(detail.contains("exceeds"), "{detail}");
        }
        other => panic!("{other:?}"),
    }
    // The server closes after an oversized frame (the stream is out of
    // sync); the next read sees EOF.
    let mut buf = [0u8; 1];
    assert_eq!(s.read(&mut buf).unwrap(), 0);
    server.shutdown();
}

#[test]
fn garbage_payload_keeps_the_session_alive() {
    let server = boot(demo_tenants());
    let mut s = raw(&server);
    // A well-framed payload of non-JSON garbage: SO-PROTO, session lives.
    let garbage = b"\x01\x02\x03\x04not json";
    s.write_all(&(garbage.len() as u32).to_be_bytes()).unwrap();
    s.write_all(garbage).unwrap();
    let resp = read_frame(&mut s, DEFAULT_MAX_FRAME).unwrap();
    match Response::from_json(&resp).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, "SO-PROTO"),
        other => panic!("{other:?}"),
    }
    // Valid JSON, malformed request: still SO-PROTO, still alive.
    let bad = b"{\"op\":\"no-such-op\"}";
    s.write_all(&(bad.len() as u32).to_be_bytes()).unwrap();
    s.write_all(bad).unwrap();
    let resp = read_frame(&mut s, DEFAULT_MAX_FRAME).unwrap();
    match Response::from_json(&resp).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, "SO-PROTO"),
        other => panic!("{other:?}"),
    }
    // And a real request on the same socket succeeds.
    write_frame(&mut s, &Request::Ping.to_json()).unwrap();
    let resp = read_frame(&mut s, DEFAULT_MAX_FRAME).unwrap();
    assert!(matches!(
        Response::from_json(&resp).unwrap(),
        Response::Pong
    ));
    server.shutdown();
}

#[test]
fn partial_writes_are_reassembled() {
    let server = boot(demo_tenants());
    let mut s = raw(&server);
    // Dribble a ping frame byte by byte; the blocking reader reassembles.
    let payload = Request::Ping.to_json().render();
    let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
    frame.extend_from_slice(payload.as_bytes());
    for b in frame {
        s.write_all(&[b]).unwrap();
        s.flush().unwrap();
    }
    let resp = read_frame(&mut s, DEFAULT_MAX_FRAME).unwrap();
    assert!(matches!(
        Response::from_json(&resp).unwrap(),
        Response::Pong
    ));
    server.shutdown();
}

#[test]
fn mid_request_disconnect_does_not_corrupt_other_sessions() {
    let server = boot(vec![
        TenantConfig::gated("metered", 16, 3).with_continual_budget(1.0)
    ]);

    // Session A starts spending budget.
    let mut a = ServiceClient::connect(server.local_addr()).unwrap();
    a.hello("metered").unwrap();
    a.workload(
        vec![WireQuery::Subset(vec![0])],
        Noise::PureDp { epsilon: 0.25 },
    )
    .unwrap();

    // Session B declares a large frame, sends half of it, and vanishes.
    {
        let mut b = raw(&server);
        b.write_all(&(1000u32).to_be_bytes()).unwrap();
        b.write_all(&[b'{'; 400]).unwrap();
        // Dropped here: mid-request disconnect.
    }

    // Session A continues unharmed, and the accountant saw exactly A's
    // spends — the truncated session charged nothing.
    a.workload(
        vec![WireQuery::Subset(vec![1])],
        Noise::PureDp { epsilon: 0.25 },
    )
    .unwrap();
    match a.budget().unwrap() {
        Response::BudgetState { spent, .. } => assert!((spent - 0.5).abs() < 1e-12),
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn immediate_disconnects_and_prefix_fragments_never_wedge_the_pool() {
    let server = boot(demo_tenants());
    // A burst of degenerate sessions: instant close, 1-byte prefix, 3-byte
    // prefix.
    for _ in 0..3 {
        drop(raw(&server));
        let mut s = raw(&server);
        s.write_all(&[0]).unwrap();
        drop(s);
        let mut s = raw(&server);
        s.write_all(&[0, 0, 9]).unwrap();
        drop(s);
    }
    // Workers all survive: a real session still gets served.
    let mut c = ServiceClient::connect(server.local_addr()).unwrap();
    c.ping().unwrap();
    server.shutdown();
}

#[test]
fn rate_limit_pushes_back_with_retry_after() {
    let server = boot(vec![TenantConfig::ungated("tiny", 8, 1).with_rate(2, 10)]);
    let mut c = ServiceClient::connect(server.local_addr()).unwrap();
    c.hello("tiny").unwrap();
    let q = || vec![WireQuery::Subset(vec![0])];
    assert!(matches!(
        c.workload(q(), Noise::Exact).unwrap(),
        Response::Answers { .. }
    ));
    assert!(matches!(
        c.workload(q(), Noise::Exact).unwrap(),
        Response::Answers { .. }
    ));
    // Bucket empty: SO-RATE with honest retry-after.
    let retry = match c.workload(q(), Noise::Exact).unwrap() {
        Response::Error {
            code,
            retry_after_ticks,
            ..
        } => {
            assert_eq!(code, "SO-RATE");
            retry_after_ticks.expect("rate refusals carry retry_after")
        }
        other => panic!("{other:?}"),
    };
    assert!(retry > 0 && retry <= 10, "{retry}");
    // In tick-per-request mode each request advances the clock once, so
    // `retry` further requests later the bucket has earned a token.
    for _ in 0..retry.saturating_sub(1) {
        let _ = c.workload(q(), Noise::Exact).unwrap();
    }
    assert!(matches!(
        c.workload(q(), Noise::Exact).unwrap(),
        Response::Answers { .. }
    ));
    server.shutdown();
}

#[test]
fn http_metrics_endpoint_serves_the_registry() {
    let server = boot(demo_tenants());
    // Generate some traffic first.
    let mut c = ServiceClient::connect(server.local_addr()).unwrap();
    c.ping().unwrap();

    let mut s = raw(&server);
    s.write_all(b"GET /metrics HTTP/1.1\r\nhost: localhost\r\n\r\n")
        .unwrap();
    let mut body = String::new();
    s.read_to_string(&mut body).unwrap();
    assert!(body.starts_with("HTTP/1.1 200 OK"), "{body}");
    assert!(body.contains("so_serve_requests_total"), "{body}");
    assert!(body.contains("so_serve_sessions_total"), "{body}");

    // Unknown paths 404 without touching the registry.
    let mut s = raw(&server);
    s.write_all(b"GET /nope HTTP/1.1\r\n\r\n").unwrap();
    let mut body = String::new();
    s.read_to_string(&mut body).unwrap();
    assert!(body.starts_with("HTTP/1.1 404"), "{body}");
    server.shutdown();
}

#[test]
fn shutdown_drains_in_flight_sessions_and_refuses_late_requests() {
    let server = boot(demo_tenants());
    let addr = server.local_addr();
    let mut c = ServiceClient::connect(addr).unwrap();
    c.hello("open").unwrap();
    c.ping().unwrap();
    server.shutdown();
    // The drained session's next request is answered with SO-SHUTDOWN (or
    // the socket is already closed — both are clean ends, never a hang).
    match c.call(&Request::Ping) {
        Ok(Response::Error { code, .. }) => assert_eq!(code, "SO-SHUTDOWN"),
        Ok(other) => panic!("{other:?}"),
        Err(_) => {} // connection closed during drain: acceptable
    }
    // New connections are refused once the listener is gone.
    assert!(
        TcpStream::connect(addr).is_err() || {
            // Rare: the OS may still accept briefly; a request must then fail.
            let mut late = ServiceClient::connect(addr).unwrap();
            late.ping().is_err()
        }
    );
}

#[test]
fn concurrent_tenants_do_not_interleave_noise_streams() {
    // Two tenants hammered from two threads: each tenant's seeded noise
    // stream must depend only on its own request order, not on scheduling.
    let run = || {
        let server = boot(vec![
            TenantConfig::ungated("a", 16, 1),
            TenantConfig::ungated("b", 16, 2),
        ]);
        let addr = server.local_addr();
        let spawn_client = |tenant: &'static str| {
            std::thread::spawn(move || {
                let mut c = ServiceClient::connect(addr).unwrap();
                c.hello(tenant).unwrap();
                let mut out = Vec::new();
                for _ in 0..5 {
                    match c
                        .workload(
                            vec![WireQuery::Subset(vec![0, 1, 2])],
                            Noise::Bounded { alpha: 4.0 },
                        )
                        .unwrap()
                    {
                        Response::Answers { answers } => out.extend(answers),
                        other => panic!("{other:?}"),
                    }
                }
                out
            })
        };
        let ta = spawn_client("a");
        let tb = spawn_client("b");
        let (a, b) = (ta.join().unwrap(), tb.join().unwrap());
        server.shutdown();
        (a, b)
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "per-tenant answer streams are deterministic");
}
