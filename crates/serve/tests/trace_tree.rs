//! Proves the tentpole correlation claim end-to-end: one JSON-lines trace
//! file from a served episode reconstructs a complete per-request span tree
//! keyed by `request_id` — the serving span plus the gate, engine, plan,
//! and DP layers it descended into, all carrying the id the client chose.
//!
//! Lives in its own integration-test binary because the trace subscriber is
//! process-global (`OnceLock`): installing it here cannot race any other
//! test.

use std::collections::BTreeSet;

use so_obs::JsonLinesSubscriber;
use so_plan::workload::Noise;
use so_serve::{Response, ServerConfig, ServiceClient, TenantConfig, WireQuery};

#[test]
fn one_trace_file_reconstructs_a_per_request_span_tree() {
    let path = std::env::temp_dir().join(format!("so_trace_tree_{}.jsonl", std::process::id()));
    let path = path.to_str().expect("utf-8 temp path").to_owned();
    assert!(
        so_obs::set_subscriber(Box::new(
            JsonLinesSubscriber::create(&path).expect("trace file opens")
        )),
        "this binary installs the only subscriber"
    );

    let server = so_serve::spawn(
        vec![TenantConfig::gated("traced", 24, 7).with_continual_budget(1.0)],
        ServerConfig::default(),
        None,
    )
    .expect("server boots");
    let mut c = ServiceClient::connect(server.local_addr()).expect("connect");
    c.hello("traced").expect("hello");
    c.set_next_request_id("tree-1");
    match c
        .workload(
            vec![WireQuery::Subset(vec![0]), WireQuery::Subset(vec![1, 2])],
            Noise::PureDp { epsilon: 0.1 },
        )
        .expect("workload")
    {
        Response::Answers { .. } => {}
        other => panic!("{other:?}"),
    }
    assert_eq!(c.last_request_id(), Some("tree-1"));
    server.shutdown();
    so_obs::flush();

    let text = std::fs::read_to_string(&path).expect("trace file readable");
    let _ = std::fs::remove_file(&path);

    // Group the flat record stream by request id: every line tagged
    // `tree-1` belongs to our workload's tree.
    let tree: Vec<&str> = text
        .lines()
        .filter(|l| l.contains("\"request_id\":\"tree-1\""))
        .collect();
    let names: BTreeSet<&str> = tree
        .iter()
        .filter_map(|l| {
            l.split("\"name\":\"")
                .nth(1)
                .and_then(|rest| rest.split('"').next())
        })
        .collect();
    for expected in [
        "serve.request",
        "gate.lint",
        "engine.workload",
        "plan.execute",
    ] {
        assert!(
            names.contains(expected),
            "span {expected:?} missing from the tree-1 tree; got {names:?}\n{text}"
        );
    }
    // The DP layer's draw events join the same tree (sampler + public
    // scale only — never the realized noise).
    let draws: Vec<&&str> = tree.iter().filter(|l| l.contains("\"dp.draw\"")).collect();
    assert_eq!(draws.len(), 2, "one draw per noised query\n{text}");
    assert!(draws.iter().all(|l| l.contains("\"sampler\":\"laplace\"")));

    // The serving root of the tree records the op and verdict.
    let root = tree
        .iter()
        .find(|l| l.contains("\"serve.request\""))
        .expect("root span present");
    assert!(root.contains("\"op\":\"workload\""), "{root}");
    assert!(root.contains("\"outcome\":\"answered\""), "{root}");

    // Untraced requests stay out of this tree: the hello ran before our
    // tag, so its records (if any) carry a different id.
    assert!(
        !text
            .lines()
            .any(|l| l.contains("\"op\":\"hello\"") && l.contains("tree-1")),
        "{text}"
    );
}
