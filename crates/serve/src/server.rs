//! The multi-tenant server: accept loop, bounded worker pool, session
//! protocol, `/metrics` endpoint, graceful shutdown.
//!
//! Concurrency model: one acceptor thread owns the listener and feeds a
//! bounded pool of worker threads through a queue; each worker serves one
//! connection at a time to completion, so at most `workers` sessions run
//! concurrently and the rest wait in the accept queue. Tenants live behind
//! individual mutexes — two sessions of *different* tenants proceed in
//! parallel, two sessions of the same tenant serialize at its lock, and a
//! panic while serving one tenant (caught at the worker boundary) cannot
//! corrupt another tenant's accountant or rate bucket.
//!
//! Shutdown is graceful: [`ServerHandle::shutdown`] stops the acceptor,
//! lets every queued and in-flight session finish its current request,
//! answers anything a draining session sends next with `SO-SHUTDOWN`, and
//! joins the pool.

use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::flight::{slowlog_line, slowlog_micros_from_env, RequestRecord};
use crate::limit::TickSource;
use crate::proto::{
    attach_request_id, extract_request_id, read_frame_with_prefix, write_frame, ProtoError,
    Request, Response, DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};
use crate::tenant::{Tenant, TenantConfig, WorkloadOutcome};

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker-pool size (max concurrent sessions).
    pub workers: usize,
    /// Frame-size cap enforced on every read.
    pub max_frame: usize,
    /// When true, the logical clock advances by one tick per processed
    /// request — fully deterministic rate-limit behavior for a fixed
    /// request sequence. The standalone daemon turns this off and drives
    /// the clock from a timer thread instead.
    pub tick_per_request: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            max_frame: DEFAULT_MAX_FRAME,
            tick_per_request: true,
        }
    }
}

struct Shared {
    tenants: BTreeMap<String, Mutex<Tenant>>,
    tick: TickSource,
    shutdown: AtomicBool,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    max_frame: usize,
    tick_per_request: bool,
    /// Source of server-assigned request ids (`srv-N`): deterministic for a
    /// sequential request stream, merely unique under concurrency.
    request_seq: AtomicU64,
    /// `SO_SLOWLOG_MICROS` threshold, read once at spawn; `None` disables
    /// the stderr slow log.
    slowlog_micros: Option<u64>,
}

/// A handle to a running server.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Binds to `127.0.0.1:0` (or the given address) and spawns the server.
pub fn spawn(
    tenants: Vec<TenantConfig>,
    config: ServerConfig,
    bind: Option<&str>,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(bind.unwrap_or("127.0.0.1:0"))?;
    let addr = listener.local_addr()?;
    let tenants: BTreeMap<String, Mutex<Tenant>> = tenants
        .into_iter()
        .map(|c| (c.name.clone(), Mutex::new(Tenant::new(c))))
        .collect();
    let shared = Arc::new(Shared {
        tenants,
        tick: TickSource::new(),
        shutdown: AtomicBool::new(false),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        max_frame: config.max_frame,
        tick_per_request: config.tick_per_request,
        request_seq: AtomicU64::new(0),
        slowlog_micros: slowlog_micros_from_env(),
    });

    let accept_shared = Arc::clone(&shared);
    let acceptor = std::thread::Builder::new()
        .name("so-serve-accept".to_owned())
        .spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                crate::obs::serve_metrics().sessions.inc();
                let mut q = lock_clean(&accept_shared.queue);
                q.push_back(stream);
                drop(q);
                accept_shared.queue_cv.notify_one();
            }
        })?;

    let workers = (0..config.workers.max(1))
        .map(|i| {
            let w = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("so-serve-worker-{i}"))
                .spawn(move || worker_loop(&w))
        })
        .collect::<std::io::Result<Vec<_>>>()?;

    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        workers,
    })
}

impl ServerHandle {
    /// The bound address (the OS-assigned port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's logical clock (advance it externally when
    /// `tick_per_request` is off).
    pub fn tick(&self) -> TickSource {
        self.shared.tick.clone()
    }

    /// Runs `f` on a tenant's state under its lock — the experiment
    /// harness uses this to read ground truth (secret column, audit log)
    /// server-side. Returns `None` for an unknown tenant.
    pub fn with_tenant<T>(&self, name: &str, f: impl FnOnce(&Tenant) -> T) -> Option<T> {
        self.shared.tenants.get(name).map(|t| f(&lock_clean(t)))
    }

    /// Graceful shutdown: stop accepting, drain queued and in-flight
    /// sessions, join every thread. Idempotent.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Wake the acceptor with a throwaway connection; it re-checks the
        // flag after every accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        self.shared.queue_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Locks a mutex, recovering from poisoning — a panic in one session must
/// not wedge the tenant (or the queue) for everyone else.
fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let stream = {
            let mut q = lock_clean(&shared.queue);
            loop {
                if let Some(s) = q.pop_front() {
                    break s;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                q = shared.queue_cv.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        };
        crate::obs::serve_metrics().active_sessions.add(1.0);
        // A panic while serving one session must not take down the pool or
        // leak into another tenant: tenant locks recover from poisoning,
        // and the worker survives to pick up the next connection.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            serve_connection(shared, stream);
        }));
        crate::obs::serve_metrics().active_sessions.add(-1.0);
        if r.is_err() {
            crate::obs::serve_metrics().proto_errors.inc();
        }
    }
}

/// A reader that survives read timeouts until the server starts draining.
///
/// Workers block reading the next frame of an open session; with plain
/// blocking reads a client that simply holds its connection open would pin
/// its worker through shutdown and deadlock the join. Instead every session
/// socket gets a short read timeout, and this wrapper absorbs the timeouts
/// (retrying, so partial frames reassemble transparently under
/// `read_exact`) until the shutdown flag flips — then it returns an error
/// and the session ends cleanly, with any in-flight request already
/// answered.
struct DrainingReader<'a> {
    stream: &'a TcpStream,
    shutdown: &'a AtomicBool,
}

impl Read for DrainingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            match (&mut &*self.stream).read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if self.shutdown.load(Ordering::Acquire) {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::ConnectionAborted,
                            "server draining",
                        ));
                    }
                }
                r => return r,
            }
        }
    }
}

/// Serves one connection to completion.
fn serve_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(50)));
    // Responses are complete messages; never let Nagle hold one back.
    let _ = stream.set_nodelay(true);
    // Sniff the first 4 bytes: "GET " or "HEAD" means a plain-HTTP request
    // sharing the port; anything else is a frame-length prefix.
    let mut first = [0u8; 4];
    {
        let mut reader = DrainingReader {
            stream: &stream,
            shutdown: &shared.shutdown,
        };
        if reader.read_exact(&mut first).is_err() {
            return; // closed (or drained) before a full prefix
        }
    }
    if &first == b"GET " || &first == b"HEAD" {
        serve_http(shared, &mut stream, first);
        return;
    }

    let mut session_tenant: Option<String> = None;
    let mut prefix = Some(first);
    loop {
        let frame = {
            let mut reader = DrainingReader {
                stream: &stream,
                shutdown: &shared.shutdown,
            };
            match prefix.take() {
                Some(p) => read_frame_with_prefix(&mut reader, p, shared.max_frame),
                None => crate::proto::read_frame(&mut reader, shared.max_frame),
            }
        };
        let value = match frame {
            Ok(v) => v,
            Err(ProtoError::Closed) => return,
            Err(e @ ProtoError::Truncated(_)) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    // Not a peer failure: the draining reader aborted an
                    // idle wait. Tell the session (best-effort) and end it.
                    let _ = respond(
                        &mut stream,
                        &Response::Error {
                            code: "SO-SHUTDOWN".to_owned(),
                            detail: "server is draining".to_owned(),
                            retry_after_ticks: None,
                        },
                    );
                    return;
                }
                // Mid-request disconnect: the peer is likely gone; report
                // best-effort and close.
                crate::obs::serve_metrics().proto_errors.inc();
                let _ = respond(&mut stream, &proto_error(&e));
                return;
            }
            Err(e @ ProtoError::Oversized { .. }) => {
                // The payload was not consumed — the stream is out of
                // sync. Answer, then close.
                crate::obs::serve_metrics().proto_errors.inc();
                let _ = respond(&mut stream, &proto_error(&e));
                return;
            }
            Err(e) => {
                // Garbage bytes with a believable length, or non-JSON
                // payload: the declared payload *was* consumed, so framing
                // is still in sync — answer and keep the session.
                crate::obs::serve_metrics().proto_errors.inc();
                if respond(&mut stream, &proto_error(&e)).is_err() {
                    return;
                }
                continue;
            }
        };
        // Correlation id: validated before dispatch so a malformed id is an
        // SO-PROTO answer, assigned (`srv-N`) when the client sent none.
        let supplied = match extract_request_id(&value) {
            Ok(id) => id,
            Err(e) => {
                crate::obs::serve_metrics().proto_errors.inc();
                if respond(&mut stream, &proto_error(&e)).is_err() {
                    return;
                }
                continue;
            }
        };
        let request = match Request::from_json(&value) {
            Ok(r) => r,
            Err(e) => {
                crate::obs::serve_metrics().proto_errors.inc();
                if respond(&mut stream, &proto_error(&e)).is_err() {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::Acquire) {
            let _ = respond(
                &mut stream,
                &Response::Error {
                    code: "SO-SHUTDOWN".to_owned(),
                    detail: "server is draining".to_owned(),
                    retry_after_ticks: None,
                },
            );
            return;
        }
        let request_id = supplied.unwrap_or_else(|| {
            format!(
                "srv-{}",
                shared.request_seq.fetch_add(1, Ordering::Relaxed) + 1
            )
        });
        let response = handle_request(shared, &mut session_tenant, request, &request_id);
        if respond_with_id(&mut stream, &response, &request_id).is_err() {
            return;
        }
    }
}

/// What one dispatched request leaves behind for the flight recorder and
/// the labeled metrics. `tenant == None` means the request ran outside any
/// tenant binding (nothing to record against).
#[derive(Debug, Default)]
struct FlightDraft {
    tenant: Option<String>,
    /// False for pure introspection (`flight`): recording the act of
    /// reading the recorder would make every inspection shift the ring.
    record: bool,
    outcome: &'static str,
    codes: Vec<String>,
    evidence: String,
    epsilon_spent: f64,
    rows_scanned: u64,
    cache_hits: u64,
}

fn handle_request(
    shared: &Arc<Shared>,
    session_tenant: &mut Option<String>,
    request: Request,
    request_id: &str,
) -> Response {
    // The wall clock below is export-only: it feeds the `*_micros`
    // histograms, the flight record's latency field, and the stderr slow
    // log — never a response body or transcript value.
    let started = Instant::now();
    let _rid = so_obs::with_request_id(request_id);
    let span = so_obs::span("serve.request");
    let op = request.op_name();
    let mut draft = FlightDraft::default();
    let response = dispatch(shared, session_tenant, request, &mut draft);
    let micros = started.elapsed().as_micros() as u64;

    let sm = crate::obs::serve_metrics();
    sm.request_micros.observe(micros as f64);
    let tenant_label = draft.tenant.as_deref().unwrap_or("none");
    crate::obs::serve_requests_by_op(op, tenant_label).inc();
    crate::obs::serve_op_latency(op, tenant_label).observe(micros as f64);

    if draft.record {
        if let Some(name) = &draft.tenant {
            if let Some(tenant) = shared.tenants.get(name) {
                let record = RequestRecord {
                    tenant: name.clone(),
                    op: op.to_owned(),
                    request_id: request_id.to_owned(),
                    outcome: draft.outcome.to_owned(),
                    codes: std::mem::take(&mut draft.codes),
                    evidence: std::mem::take(&mut draft.evidence),
                    epsilon_spent: draft.epsilon_spent,
                    rows_scanned: draft.rows_scanned,
                    cache_hits: draft.cache_hits,
                    latency_micros: micros,
                };
                if shared.slowlog_micros.is_some_and(|t| micros >= t) {
                    sm.slowlog_emitted.inc();
                    eprintln!("{}", slowlog_line(&record));
                }
                sm.flight_records.inc();
                lock_clean(tenant).flight_mut().push(record);
            }
        }
    }
    if so_obs::enabled() {
        span.finish_with(&[
            ("op", op.to_owned()),
            ("tenant", tenant_label.to_owned()),
            ("outcome", draft.outcome.to_owned()),
        ]);
    }
    response
}

fn dispatch(
    shared: &Arc<Shared>,
    session_tenant: &mut Option<String>,
    request: Request,
    draft: &mut FlightDraft,
) -> Response {
    crate::obs::serve_metrics().requests.inc();
    draft.outcome = "ok";
    let tick = if shared.tick_per_request {
        shared.tick.advance(1)
    } else {
        shared.tick.now()
    };
    match request {
        Request::Hello { tenant } => match shared.tenants.get(&tenant) {
            Some(t) => {
                let t = lock_clean(t);
                *session_tenant = Some(tenant.clone());
                draft.tenant = Some(tenant.clone());
                draft.record = true;
                Response::Welcome {
                    tenant,
                    gated: t.gated(),
                    n_rows: t.n_rows(),
                    version: PROTOCOL_VERSION.to_owned(),
                }
            }
            None => {
                draft.outcome = "error";
                draft.codes = vec!["SO-TENANT".to_owned()];
                Response::Error {
                    code: "SO-TENANT".to_owned(),
                    detail: format!("unknown tenant {tenant:?}"),
                    retry_after_ticks: None,
                }
            }
        },
        Request::Ping => Response::Pong,
        Request::Metrics => Response::MetricsDump {
            text: so_obs::global().render(),
        },
        Request::Budget | Request::Workload { .. } | Request::Flight => {
            let Some(name) = session_tenant.as_ref() else {
                draft.outcome = "error";
                draft.codes = vec!["SO-TENANT".to_owned()];
                return Response::Error {
                    code: "SO-TENANT".to_owned(),
                    detail: "no tenant bound; send hello first".to_owned(),
                    retry_after_ticks: None,
                };
            };
            let tenant = shared
                .tenants
                .get(name)
                .expect("session tenant exists: hello validated it");
            let mut tenant = lock_clean(tenant);
            draft.tenant = Some(name.clone());
            if matches!(request, Request::Flight) {
                // Introspection is never rate-limited (a throttled tenant
                // must still be inspectable) and never recorded.
                return Response::FlightDump {
                    tenant: name.clone(),
                    cap: tenant.flight().cap(),
                    total: tenant.flight().total(),
                    records: tenant.flight().records(),
                };
            }
            draft.record = true;
            if let Err(retry_after) = tenant.admit(tick) {
                crate::obs::serve_metrics().rate_limited.inc();
                draft.outcome = "rate_limited";
                draft.codes = vec!["SO-RATE".to_owned()];
                return Response::Error {
                    code: "SO-RATE".to_owned(),
                    detail: format!("tenant {name:?} over rate limit"),
                    retry_after_ticks: Some(retry_after),
                };
            }
            match request {
                Request::Budget => {
                    let (accounting, spent, remaining, version) = tenant.budget();
                    tenant.publish_epsilon_gauges();
                    Response::BudgetState {
                        accounting,
                        spent,
                        remaining,
                        version,
                    }
                }
                Request::Workload { queries, noise } => {
                    let outcome = tenant.run_workload(&queries, noise);
                    let profile = tenant.last_profile().clone();
                    draft.codes = profile.codes;
                    draft.evidence = profile.evidence;
                    draft.epsilon_spent = profile.epsilon_spent;
                    draft.rows_scanned = profile.rows_scanned;
                    draft.cache_hits = profile.cache_hits;
                    tenant.publish_epsilon_gauges();
                    match outcome {
                        Ok(WorkloadOutcome::Answered(answers)) => {
                            draft.outcome = "answered";
                            Response::Answers { answers }
                        }
                        Ok(WorkloadOutcome::Refused(refusals)) => {
                            draft.outcome = "refused";
                            Response::Refused {
                                refusals,
                                queries: queries.len(),
                            }
                        }
                        Err(e) => {
                            crate::obs::serve_metrics().proto_errors.inc();
                            draft.outcome = "error";
                            draft.codes = vec!["SO-PROTO".to_owned()];
                            proto_error(&e)
                        }
                    }
                }
                _ => unreachable!("outer match covers the rest"),
            }
        }
    }
}

fn proto_error(e: &ProtoError) -> Response {
    Response::Error {
        code: "SO-PROTO".to_owned(),
        detail: e.to_string(),
        retry_after_ticks: None,
    }
}

fn respond(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    write_frame(stream, &response.to_json())
}

/// Like [`respond`], but first tags the response object with the request id
/// it answers, so a client can correlate frames with its own trace.
fn respond_with_id(
    stream: &mut TcpStream,
    response: &Response,
    request_id: &str,
) -> std::io::Result<()> {
    write_frame(stream, &attach_request_id(response.to_json(), request_id))
}

/// Answers one plain-HTTP `GET`/`HEAD` request and closes. Routes:
///
/// * `/metrics` — the live [`so_obs::global`] registry, Prometheus text;
/// * `/healthz` — `ok` while the acceptor is up (liveness probe);
/// * `/flight/<tenant>` — that tenant's flight-recorder dump as JSON lines
///   (includes `latency_micros`: HTTP output is export-only, never diffed).
///
/// `HEAD` returns the same status and `content-length` with an empty body.
fn serve_http(shared: &Arc<Shared>, stream: &mut TcpStream, first: [u8; 4]) {
    // Drain the request head (best effort — probes and scrapers send a
    // small header block; stop at the blank line or EOF).
    let mut buf = [0u8; 512];
    let mut head: Vec<u8> = first.to_vec();
    loop {
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
        }
    }
    let path: Vec<u8> = head
        .split(|&b| b == b' ')
        .nth(1)
        .map(|p| p.split(|&b| b == b'?').next().unwrap_or(p).to_vec())
        .unwrap_or_default();
    let (status, body) = route_http(shared, &path);
    let response = format!(
        "HTTP/1.1 {status}\r\ncontent-type: text/plain; version=0.0.4\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    if &first != b"HEAD" {
        let _ = stream.write_all(body.as_bytes());
    }
}

/// The pure routing rule behind [`serve_http`], separated for tests:
/// `(status line, body)` for a query-stripped request path.
fn route_http(shared: &Arc<Shared>, path: &[u8]) -> (&'static str, String) {
    match path {
        b"/metrics" => ("200 OK", so_obs::global().render()),
        b"/healthz" => ("200 OK", "ok\n".to_owned()),
        _ if path.starts_with(b"/flight/") => {
            let name = String::from_utf8_lossy(&path[b"/flight/".len()..]).into_owned();
            match shared.tenants.get(&name) {
                Some(tenant) => {
                    let tenant = lock_clean(tenant);
                    let mut body = String::new();
                    for record in tenant.flight().records() {
                        body.push_str(&record.to_json().render());
                        body.push('\n');
                    }
                    ("200 OK", body)
                }
                None => ("404 Not Found", format!("unknown tenant {name:?}\n")),
            }
        }
        _ => (
            "404 Not Found",
            "routes: /metrics /healthz /flight/<tenant>\n".to_owned(),
        ),
    }
}
