//! The wire protocol: length-prefixed JSON frames and their typed forms.
//!
//! Every message — request or response — is one **frame**: a 4-byte
//! big-endian length `N` followed by `N` bytes of UTF-8 JSON (one object).
//! Framing keeps the stream self-synchronizing under partial reads, and the
//! length prefix lets the server refuse oversized requests *before* reading
//! them (an adversarial client cannot make the server buffer gigabytes).
//!
//! Requests carry an `"op"` discriminator:
//!
//! | op         | fields                               | answer                  |
//! |------------|--------------------------------------|-------------------------|
//! | `hello`    | `tenant`                             | tenant facts            |
//! | `ping`     | —                                    | `pong`                  |
//! | `workload` | `queries` (subset / int_range /      | `answers` array, or a   |
//! |            | value_eq), `noise`                   | structured refusal      |
//! | `budget`   | —                                    | accountant state        |
//! | `metrics`  | —                                    | registry dump           |
//! | `flight`   | —                                    | flight-recorder dump    |
//!
//! Any request may carry an optional `request_id` string (≤ 128 chars);
//! the server echoes it — or a deterministic server-assigned `srv-N` — in
//! every response, and the same id tags every trace span the request
//! produces, so one trace file reconstructs per-request span trees.
//!
//! Responses always carry `"ok"`. Failures carry `error.code` — `SO-PROTO`
//! (malformed frame or request), `SO-TENANT` (unknown tenant / no hello),
//! `SO-RATE` (token bucket empty; `retry_after_ticks` says when to come
//! back), `SO-SHUTDOWN` (server draining) — and a refused workload carries
//! the *gate's* lint codes (`SO-RECON`, `SO-CBUDGET`, …) with per-query
//! evidence, so a refusal over the wire is as citable as one in the audit
//! trail.

use std::io::{Read, Write};

use so_plan::workload::Noise;
use so_query::SubsetQuery;

use crate::flight::RequestRecord;
use crate::json::{parse, Json};

/// Protocol version string echoed by `hello`.
pub const PROTOCOL_VERSION: &str = "so-serve/1";

/// Longest client-supplied `request_id` the server accepts. Correlation
/// ids are labels, not payloads; an unbounded id would let a client stuff
/// kilobytes into every trace span and flight record.
pub const MAX_REQUEST_ID_LEN: usize = 128;

/// Pulls the optional `request_id` out of a raw request object.
///
/// Returns `Ok(None)` when absent (the server then assigns `srv-N`),
/// `Err` when present but not a non-empty string of at most
/// [`MAX_REQUEST_ID_LEN`] characters.
pub fn extract_request_id(v: &Json) -> Result<Option<String>, ProtoError> {
    match v.get("request_id") {
        None => Ok(None),
        Some(Json::Str(s)) if !s.is_empty() && s.chars().count() <= MAX_REQUEST_ID_LEN => {
            Ok(Some(s.clone()))
        }
        Some(Json::Str(_)) => Err(ProtoError::BadShape(format!(
            "request_id must be 1..={MAX_REQUEST_ID_LEN} characters"
        ))),
        Some(_) => Err(ProtoError::BadShape(
            "request_id must be a string".to_owned(),
        )),
    }
}

/// Stamps `request_id` onto a rendered message object (requests on the way
/// out of the client, responses on the way out of the server). Non-objects
/// pass through untouched.
pub fn attach_request_id(v: Json, id: &str) -> Json {
    match v {
        Json::Obj(mut m) => {
            m.insert("request_id".to_owned(), Json::Str(id.to_owned()));
            Json::Obj(m)
        }
        other => other,
    }
}

/// Default cap on a frame's payload length (1 MiB).
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Hard cap the reader enforces regardless of configuration (16 MiB): a
/// length prefix above this is treated as garbage rather than a request to
/// allocate.
pub const ABSOLUTE_MAX_FRAME: usize = 16 << 20;

/// A framing or protocol-shape failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The peer closed the stream cleanly between frames.
    Closed,
    /// The stream died mid-frame (partial read / reset).
    Truncated(String),
    /// The frame's declared length exceeds the cap.
    Oversized {
        /// Declared payload length.
        declared: usize,
        /// The enforced cap.
        cap: usize,
    },
    /// The payload is not valid JSON / UTF-8.
    BadJson(String),
    /// The JSON is valid but not a well-formed request/response.
    BadShape(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Closed => write!(f, "peer closed the stream"),
            ProtoError::Truncated(e) => write!(f, "stream truncated mid-frame: {e}"),
            ProtoError::Oversized { declared, cap } => {
                write!(f, "frame of {declared} bytes exceeds the {cap}-byte cap")
            }
            ProtoError::BadJson(e) => write!(f, "payload is not JSON: {e}"),
            ProtoError::BadShape(e) => write!(f, "malformed request: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Writes one frame: 4-byte big-endian length, then the JSON bytes. The
/// whole frame goes out as a single `write_all` — a separate length write
/// would hand Nagle's algorithm a tiny segment to sit on and cost a
/// delayed-ACK round trip per request.
pub fn write_frame<W: Write>(w: &mut W, value: &Json) -> std::io::Result<()> {
    let payload = value.render();
    let bytes = payload.as_bytes();
    let mut frame = Vec::with_capacity(4 + bytes.len());
    frame.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    frame.extend_from_slice(bytes);
    w.write_all(&frame)?;
    w.flush()
}

/// Reads one frame and parses its JSON payload.
///
/// `max_frame` bounds the payload length this reader will allocate for; it
/// is clamped to [`ABSOLUTE_MAX_FRAME`]. On [`ProtoError::Oversized`] the
/// payload has **not** been consumed — the connection is unrecoverable and
/// should be closed after reporting the error.
pub fn read_frame<R: Read>(r: &mut R, max_frame: usize) -> Result<Json, ProtoError> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            // A clean EOF before any length byte is a normal close; EOF
            // with 1–3 bytes read also lands here — either way no frame.
            return Err(ProtoError::Closed);
        }
        Err(e) => return Err(ProtoError::Truncated(e.to_string())),
    }
    read_frame_with_prefix(r, len_buf, max_frame)
}

/// Completes a frame whose 4-byte length prefix was already read — the
/// server reads the first 4 bytes of a connection itself to sniff `"GET "`
/// (plain-HTTP `/metrics` scrapes share the port), then resumes framing
/// here.
pub fn read_frame_with_prefix<R: Read>(
    r: &mut R,
    len_buf: [u8; 4],
    max_frame: usize,
) -> Result<Json, ProtoError> {
    let declared = u32::from_be_bytes(len_buf) as usize;
    let cap = max_frame.min(ABSOLUTE_MAX_FRAME);
    if declared > cap {
        return Err(ProtoError::Oversized { declared, cap });
    }
    if declared == 0 {
        return Err(ProtoError::BadJson("empty frame".to_owned()));
    }
    let mut payload = vec![0u8; declared];
    r.read_exact(&mut payload)
        .map_err(|e| ProtoError::Truncated(e.to_string()))?;
    let text = std::str::from_utf8(&payload).map_err(|e| ProtoError::BadJson(e.to_string()))?;
    parse(text).map_err(|e| ProtoError::BadJson(e.to_string()))
}

/// One query inside a `workload` request.
#[derive(Debug, Clone, PartialEq)]
pub enum WireQuery {
    /// A subset-sum query over the tenant's secret column: the listed row
    /// indices (deduplicated by the bitmask representation).
    Subset(Vec<usize>),
    /// A counting query `lo ≤ col ≤ hi` over the tenant's tabular columns.
    IntRange {
        /// Column index.
        col: usize,
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// A counting query `col == value` (integer values only on the wire).
    ValueEq {
        /// Column index.
        col: usize,
        /// The matched integer value.
        value: i64,
    },
}

impl WireQuery {
    /// Renders to the protocol JSON form.
    pub fn to_json(&self) -> Json {
        match self {
            WireQuery::Subset(rows) => Json::obj(vec![
                ("kind", Json::str("subset")),
                (
                    "rows",
                    Json::Arr(rows.iter().map(|&r| Json::num(r as f64)).collect()),
                ),
            ]),
            WireQuery::IntRange { col, lo, hi } => Json::obj(vec![
                ("kind", Json::str("int_range")),
                ("col", Json::num(*col as f64)),
                ("lo", Json::num(*lo as f64)),
                ("hi", Json::num(*hi as f64)),
            ]),
            WireQuery::ValueEq { col, value } => Json::obj(vec![
                ("kind", Json::str("value_eq")),
                ("col", Json::num(*col as f64)),
                ("value", Json::num(*value as f64)),
            ]),
        }
    }

    /// Parses the protocol JSON form.
    pub fn from_json(v: &Json) -> Result<WireQuery, ProtoError> {
        let shape = |m: &str| ProtoError::BadShape(m.to_owned());
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| shape("query needs a string `kind`"))?;
        match kind {
            "subset" => {
                let rows = v
                    .get("rows")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| shape("subset query needs a `rows` array"))?;
                let rows = rows
                    .iter()
                    .map(|r| {
                        r.as_usize()
                            .ok_or_else(|| shape("subset rows must be non-negative integers"))
                    })
                    .collect::<Result<Vec<usize>, _>>()?;
                Ok(WireQuery::Subset(rows))
            }
            "int_range" => Ok(WireQuery::IntRange {
                col: v
                    .get("col")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| shape("int_range needs integer `col`"))?,
                lo: v
                    .get("lo")
                    .and_then(Json::as_i64)
                    .ok_or_else(|| shape("int_range needs integer `lo`"))?,
                hi: v
                    .get("hi")
                    .and_then(Json::as_i64)
                    .ok_or_else(|| shape("int_range needs integer `hi`"))?,
            }),
            "value_eq" => Ok(WireQuery::ValueEq {
                col: v
                    .get("col")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| shape("value_eq needs integer `col`"))?,
                value: v
                    .get("value")
                    .and_then(Json::as_i64)
                    .ok_or_else(|| shape("value_eq needs integer `value`"))?,
            }),
            other => Err(shape(&format!("unknown query kind {other:?}"))),
        }
    }

    /// Converts a subset wire query into the engine's form.
    ///
    /// Returns `BadShape` when an index is out of the tenant's row range.
    pub fn to_subset(&self, n_rows: usize) -> Result<Option<SubsetQuery>, ProtoError> {
        match self {
            WireQuery::Subset(rows) => {
                for &r in rows {
                    if r >= n_rows {
                        return Err(ProtoError::BadShape(format!(
                            "subset row {r} out of range (n = {n_rows})"
                        )));
                    }
                }
                Ok(Some(SubsetQuery::from_indices(n_rows, rows)))
            }
            _ => Ok(None),
        }
    }
}

/// Renders a [`Noise`] annotation to the protocol JSON form.
pub fn noise_to_json(noise: Noise) -> Json {
    match noise {
        Noise::Exact => Json::obj(vec![("kind", Json::str("exact"))]),
        Noise::Bounded { alpha } => Json::obj(vec![
            ("kind", Json::str("bounded")),
            ("alpha", Json::num(alpha)),
        ]),
        Noise::PureDp { epsilon } => Json::obj(vec![
            ("kind", Json::str("dp")),
            ("epsilon", Json::num(epsilon)),
        ]),
    }
}

/// Parses a [`Noise`] annotation from the protocol JSON form.
pub fn noise_from_json(v: &Json) -> Result<Noise, ProtoError> {
    let shape = |m: &str| ProtoError::BadShape(m.to_owned());
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| shape("noise needs a string `kind`"))?;
    match kind {
        "exact" => Ok(Noise::Exact),
        "bounded" => {
            let alpha = v
                .get("alpha")
                .and_then(Json::as_f64)
                .ok_or_else(|| shape("bounded noise needs `alpha`"))?;
            if !(alpha.is_finite() && alpha >= 0.0) {
                return Err(shape("bounded noise needs finite alpha >= 0"));
            }
            Ok(Noise::Bounded { alpha })
        }
        "dp" => {
            let epsilon = v
                .get("epsilon")
                .and_then(Json::as_f64)
                .ok_or_else(|| shape("dp noise needs `epsilon`"))?;
            if !(epsilon.is_finite() && epsilon > 0.0) {
                return Err(shape("dp noise needs finite epsilon > 0"));
            }
            Ok(Noise::PureDp { epsilon })
        }
        other => Err(shape(&format!("unknown noise kind {other:?}"))),
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Bind this session to a tenant.
    Hello {
        /// The tenant name.
        tenant: String,
    },
    /// Liveness check (still rate-limited, so it doubles as the
    /// token-bucket demo op).
    Ping,
    /// A declared workload: every query shares one noise annotation.
    Workload {
        /// The declared queries.
        queries: Vec<WireQuery>,
        /// The release mechanism the client asks for.
        noise: Noise,
    },
    /// The session tenant's budget accounting state.
    Budget,
    /// The live `so-obs` registry, rendered in the Prometheus text format.
    Metrics,
    /// The session tenant's flight-recorder dump (not rate-limited:
    /// introspection must stay reachable while a tenant is being throttled).
    Flight,
}

impl Request {
    /// Renders to the protocol JSON form.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Hello { tenant } => Json::obj(vec![
                ("op", Json::str("hello")),
                ("tenant", Json::str(tenant)),
            ]),
            Request::Ping => Json::obj(vec![("op", Json::str("ping"))]),
            Request::Workload { queries, noise } => Json::obj(vec![
                ("op", Json::str("workload")),
                (
                    "queries",
                    Json::Arr(queries.iter().map(WireQuery::to_json).collect()),
                ),
                ("noise", noise_to_json(*noise)),
            ]),
            Request::Budget => Json::obj(vec![("op", Json::str("budget"))]),
            Request::Metrics => Json::obj(vec![("op", Json::str("metrics"))]),
            Request::Flight => Json::obj(vec![("op", Json::str("flight"))]),
        }
    }

    /// The wire op discriminator — the `op` label on per-op metrics and
    /// flight records.
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Hello { .. } => "hello",
            Request::Ping => "ping",
            Request::Workload { .. } => "workload",
            Request::Budget => "budget",
            Request::Metrics => "metrics",
            Request::Flight => "flight",
        }
    }

    /// Parses the protocol JSON form.
    pub fn from_json(v: &Json) -> Result<Request, ProtoError> {
        let shape = |m: &str| ProtoError::BadShape(m.to_owned());
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| shape("request needs a string `op`"))?;
        match op {
            "hello" => Ok(Request::Hello {
                tenant: v
                    .get("tenant")
                    .and_then(Json::as_str)
                    .ok_or_else(|| shape("hello needs a `tenant` string"))?
                    .to_owned(),
            }),
            "ping" => Ok(Request::Ping),
            "budget" => Ok(Request::Budget),
            "metrics" => Ok(Request::Metrics),
            "flight" => Ok(Request::Flight),
            "workload" => {
                let queries = v
                    .get("queries")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| shape("workload needs a `queries` array"))?;
                if queries.is_empty() {
                    return Err(shape("workload needs at least one query"));
                }
                let queries = queries
                    .iter()
                    .map(WireQuery::from_json)
                    .collect::<Result<Vec<_>, _>>()?;
                let noise = noise_from_json(
                    v.get("noise")
                        .ok_or_else(|| shape("workload needs a `noise` object"))?,
                )?;
                Ok(Request::Workload { queries, noise })
            }
            other => Err(shape(&format!("unknown op {other:?}"))),
        }
    }
}

/// One refusal inside a refused-workload response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRefusal {
    /// Offending query index (declaration order), or `None` when the
    /// finding concerns the workload as a whole (e.g. `SO-RECON`'s
    /// density verdict: no single query is at fault, their count is).
    pub query: Option<usize>,
    /// The gate code that flagged it (`SO-RECON`, `SO-CBUDGET`, …).
    pub code: String,
    /// The finding's structured evidence (or its message, for
    /// workload-level findings), rendered.
    pub evidence: String,
}

/// A parsed response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `hello` acknowledged.
    Welcome {
        /// Echoed tenant name.
        tenant: String,
        /// Whether this tenant sits behind the workload gate.
        gated: bool,
        /// Tenant row count (the `n` of its secret column).
        n_rows: usize,
        /// Protocol version.
        version: String,
    },
    /// `ping` acknowledged.
    Pong,
    /// An admitted, executed workload.
    Answers {
        /// Released answers, in declaration order.
        answers: Vec<f64>,
    },
    /// A refused workload: no query executed.
    Refused {
        /// Per-offending-query refusals, ascending by index.
        refusals: Vec<WireRefusal>,
        /// Number of queries the refused workload declared.
        queries: usize,
    },
    /// Budget accounting state (zeros when the tenant has no accountant).
    BudgetState {
        /// Whether an accountant is attached.
        accounting: bool,
        /// ε spent within the accounting window.
        spent: f64,
        /// ε remaining.
        remaining: f64,
        /// The accountant's dataset-version cursor.
        version: u64,
    },
    /// The metrics dump.
    MetricsDump {
        /// Prometheus-format registry render.
        text: String,
    },
    /// The session tenant's flight-recorder dump.
    FlightDump {
        /// The tenant the records belong to.
        tenant: String,
        /// The ring capacity in force (`SO_FLIGHT_CAP`).
        cap: usize,
        /// All-time recorded requests (cap-invariant).
        total: u64,
        /// Retained records, oldest first.
        records: Vec<RequestRecord>,
    },
    /// Any error, including rate-limit pushback.
    Error {
        /// Error code (`SO-PROTO`, `SO-TENANT`, `SO-RATE`, `SO-SHUTDOWN`).
        code: String,
        /// Human-readable detail.
        detail: String,
        /// For `SO-RATE`: ticks until the bucket refills.
        retry_after_ticks: Option<u64>,
    },
}

impl Response {
    /// Renders to the protocol JSON form.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Welcome {
                tenant,
                gated,
                n_rows,
                version,
            } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("tenant", Json::str(tenant)),
                ("gated", Json::Bool(*gated)),
                ("n_rows", Json::num(*n_rows as f64)),
                ("version", Json::str(version)),
            ]),
            Response::Pong => Json::obj(vec![("ok", Json::Bool(true)), ("pong", Json::Bool(true))]),
            Response::Answers { answers } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                (
                    "answers",
                    Json::Arr(answers.iter().map(|&a| Json::num(a)).collect()),
                ),
            ]),
            Response::Refused { refusals, queries } => Json::obj(vec![
                ("ok", Json::Bool(false)),
                (
                    "error",
                    Json::obj(vec![
                        ("code", Json::str("SO-REFUSED")),
                        ("detail", Json::str("workload refused by the gate")),
                    ]),
                ),
                ("queries", Json::num(*queries as f64)),
                (
                    "refusals",
                    Json::Arr(
                        refusals
                            .iter()
                            .map(|r| {
                                let mut fields = Vec::with_capacity(3);
                                if let Some(q) = r.query {
                                    fields.push(("query", Json::num(q as f64)));
                                }
                                fields.push(("code", Json::str(&r.code)));
                                fields.push(("evidence", Json::str(&r.evidence)));
                                Json::obj(fields)
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::BudgetState {
                accounting,
                spent,
                remaining,
                version,
            } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("accounting", Json::Bool(*accounting)),
                ("spent", Json::num(*spent)),
                ("remaining", Json::num(*remaining)),
                ("version", Json::num(*version as f64)),
            ]),
            Response::MetricsDump { text } => {
                Json::obj(vec![("ok", Json::Bool(true)), ("metrics", Json::str(text))])
            }
            Response::FlightDump {
                tenant,
                cap,
                total,
                records,
            } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                (
                    "flight",
                    Json::obj(vec![
                        ("tenant", Json::str(tenant)),
                        ("cap", Json::num(*cap as f64)),
                        ("total", Json::num(*total as f64)),
                        (
                            "records",
                            Json::Arr(records.iter().map(RequestRecord::to_json).collect()),
                        ),
                    ]),
                ),
            ]),
            Response::Error {
                code,
                detail,
                retry_after_ticks,
            } => {
                let mut err = vec![("code", Json::str(code)), ("detail", Json::str(detail))];
                if let Some(t) = retry_after_ticks {
                    err.push(("retry_after_ticks", Json::num(*t as f64)));
                }
                Json::obj(vec![("ok", Json::Bool(false)), ("error", Json::obj(err))])
            }
        }
    }

    /// Parses the protocol JSON form.
    pub fn from_json(v: &Json) -> Result<Response, ProtoError> {
        let shape = |m: &str| ProtoError::BadShape(m.to_owned());
        let ok = v
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or_else(|| shape("response needs a bool `ok`"))?;
        if !ok {
            let err = v.get("error").ok_or_else(|| shape("needs `error`"))?;
            let code = err
                .get("code")
                .and_then(Json::as_str)
                .ok_or_else(|| shape("error needs a `code`"))?
                .to_owned();
            if code == "SO-REFUSED" {
                let refusals = v
                    .get("refusals")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| shape("refusal needs `refusals`"))?
                    .iter()
                    .map(|r| {
                        Ok(WireRefusal {
                            query: r.get("query").and_then(Json::as_usize),
                            code: r
                                .get("code")
                                .and_then(Json::as_str)
                                .ok_or_else(|| shape("refusal needs `code`"))?
                                .to_owned(),
                            evidence: r
                                .get("evidence")
                                .and_then(Json::as_str)
                                .unwrap_or("")
                                .to_owned(),
                        })
                    })
                    .collect::<Result<Vec<_>, ProtoError>>()?;
                let queries = v
                    .get("queries")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| shape("refusal needs `queries`"))?;
                return Ok(Response::Refused { refusals, queries });
            }
            return Ok(Response::Error {
                code,
                detail: err
                    .get("detail")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_owned(),
                retry_after_ticks: err
                    .get("retry_after_ticks")
                    .and_then(Json::as_f64)
                    .map(|t| t as u64),
            });
        }
        if v.get("pong").is_some() {
            return Ok(Response::Pong);
        }
        if let Some(answers) = v.get("answers").and_then(Json::as_arr) {
            let answers = answers
                .iter()
                .map(|a| a.as_f64().ok_or_else(|| shape("answers must be numbers")))
                .collect::<Result<Vec<_>, _>>()?;
            return Ok(Response::Answers { answers });
        }
        if let Some(text) = v.get("metrics").and_then(Json::as_str) {
            return Ok(Response::MetricsDump {
                text: text.to_owned(),
            });
        }
        if let Some(fl) = v.get("flight") {
            let records = fl
                .get("records")
                .and_then(Json::as_arr)
                .ok_or_else(|| shape("flight dump needs `records`"))?
                .iter()
                .map(RequestRecord::from_json)
                .collect::<Result<Vec<_>, _>>()?;
            return Ok(Response::FlightDump {
                tenant: fl
                    .get("tenant")
                    .and_then(Json::as_str)
                    .ok_or_else(|| shape("flight dump needs `tenant`"))?
                    .to_owned(),
                cap: fl.get("cap").and_then(Json::as_usize).unwrap_or(0),
                total: fl.get("total").and_then(Json::as_f64).unwrap_or(0.0) as u64,
                records,
            });
        }
        if let Some(accounting) = v.get("accounting").and_then(Json::as_bool) {
            return Ok(Response::BudgetState {
                accounting,
                spent: v.get("spent").and_then(Json::as_f64).unwrap_or(0.0),
                remaining: v.get("remaining").and_then(Json::as_f64).unwrap_or(0.0),
                version: v.get("version").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            });
        }
        if let Some(tenant) = v.get("tenant").and_then(Json::as_str) {
            return Ok(Response::Welcome {
                tenant: tenant.to_owned(),
                gated: v
                    .get("gated")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| shape("welcome needs `gated`"))?,
                n_rows: v
                    .get("n_rows")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| shape("welcome needs `n_rows`"))?,
                version: v
                    .get("version")
                    .and_then(Json::as_str)
                    .unwrap_or(PROTOCOL_VERSION)
                    .to_owned(),
            });
        }
        Err(shape("unrecognized response shape"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(r: Request) {
        let v = r.to_json();
        assert_eq!(Request::from_json(&v).unwrap(), r, "{}", v.render());
    }

    fn roundtrip_resp(r: Response) {
        let v = r.to_json();
        assert_eq!(Response::from_json(&v).unwrap(), r, "{}", v.render());
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Hello {
            tenant: "acme".to_owned(),
        });
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::Budget);
        roundtrip_req(Request::Metrics);
        roundtrip_req(Request::Workload {
            queries: vec![
                WireQuery::Subset(vec![0, 3, 5]),
                WireQuery::IntRange {
                    col: 0,
                    lo: -5,
                    hi: 40,
                },
                WireQuery::ValueEq { col: 1, value: 7 },
            ],
            noise: Noise::Bounded { alpha: 2.5 },
        });
        roundtrip_req(Request::Workload {
            queries: vec![WireQuery::Subset(vec![])],
            noise: Noise::PureDp { epsilon: 0.1 },
        });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Welcome {
            tenant: "acme".to_owned(),
            gated: true,
            n_rows: 128,
            version: PROTOCOL_VERSION.to_owned(),
        });
        roundtrip_resp(Response::Pong);
        roundtrip_resp(Response::Answers {
            answers: vec![1.0, 2.5, -0.75],
        });
        roundtrip_resp(Response::Refused {
            refusals: vec![
                WireRefusal {
                    query: Some(2),
                    code: "SO-LINREC".to_owned(),
                    evidence: "rank=24/24".to_owned(),
                },
                WireRefusal {
                    query: None,
                    code: "SO-RECON".to_owned(),
                    evidence: "m=384 alpha<=3.5".to_owned(),
                },
            ],
            queries: 384,
        });
        roundtrip_resp(Response::BudgetState {
            accounting: true,
            spent: 0.4,
            remaining: 0.6,
            version: 3,
        });
        roundtrip_resp(Response::MetricsDump {
            text: "so_serve_requests_total 4\n".to_owned(),
        });
        roundtrip_resp(Response::Error {
            code: "SO-RATE".to_owned(),
            detail: "bucket empty".to_owned(),
            retry_after_ticks: Some(9),
        });
        roundtrip_resp(Response::Error {
            code: "SO-PROTO".to_owned(),
            detail: "bad frame".to_owned(),
            retry_after_ticks: None,
        });
    }

    #[test]
    fn flight_op_and_dump_roundtrip() {
        roundtrip_req(Request::Flight);
        assert_eq!(Request::Flight.op_name(), "flight");
        roundtrip_resp(Response::FlightDump {
            tenant: "open".to_owned(),
            cap: 256,
            total: 999,
            records: vec![crate::flight::RequestRecord {
                tenant: "open".to_owned(),
                op: "workload".to_owned(),
                request_id: "att-1".to_owned(),
                outcome: "answered".to_owned(),
                codes: Vec::new(),
                evidence: String::new(),
                epsilon_spent: 0.5,
                rows_scanned: 2048,
                cache_hits: 7,
                latency_micros: 321,
            }],
        });
    }

    #[test]
    fn request_id_extraction_and_echo() {
        let bare = Request::Ping.to_json();
        assert_eq!(extract_request_id(&bare).unwrap(), None);
        let tagged = attach_request_id(bare, "att-42");
        assert_eq!(
            extract_request_id(&tagged).unwrap().as_deref(),
            Some("att-42")
        );
        // The tagged frame still parses as the same request.
        assert_eq!(Request::from_json(&tagged).unwrap(), Request::Ping);
        // Responses carry the echo without breaking shape-based parsing.
        let resp = attach_request_id(Response::Pong.to_json(), "att-42");
        assert_eq!(Response::from_json(&resp).unwrap(), Response::Pong);
        assert_eq!(
            resp.get("request_id").and_then(Json::as_str),
            Some("att-42")
        );
        // Bad shapes are refused: empty, oversized, non-string.
        let empty = attach_request_id(Request::Ping.to_json(), "");
        assert!(extract_request_id(&empty).is_err());
        let long = attach_request_id(Request::Ping.to_json(), &"x".repeat(200));
        assert!(extract_request_id(&long).is_err());
        let nonstr = Json::obj(vec![
            ("op", Json::str("ping")),
            ("request_id", Json::num(7.0)),
        ]);
        assert!(extract_request_id(&nonstr).is_err());
    }

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        let msg = Request::Ping.to_json();
        write_frame(&mut buf, &msg).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap(), msg);
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap_err(),
            ProtoError::Closed
        );
    }

    #[test]
    fn oversized_frame_is_refused_without_reading() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"whatever");
        let mut cursor = std::io::Cursor::new(buf);
        match read_frame(&mut cursor, 1024).unwrap_err() {
            ProtoError::Oversized { declared, cap } => {
                assert_eq!(declared, u32::MAX as usize);
                assert_eq!(cap, 1024);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn truncated_and_garbage_frames_are_clean_errors() {
        // Length promises 10 bytes, stream has 3.
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_be_bytes());
        buf.extend_from_slice(b"abc");
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor, 1024).unwrap_err(),
            ProtoError::Truncated(_)
        ));
        // Valid length, payload is not JSON.
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_be_bytes());
        buf.extend_from_slice(b"\xff\xfe\x00");
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor, 1024).unwrap_err(),
            ProtoError::BadJson(_)
        ));
        // Zero-length frame.
        let mut cursor = std::io::Cursor::new(0u32.to_be_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut cursor, 1024).unwrap_err(),
            ProtoError::BadJson(_)
        ));
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bad in [
            "{}",
            "{\"op\":\"nope\"}",
            "{\"op\":\"hello\"}",
            "{\"op\":\"workload\"}",
            "{\"op\":\"workload\",\"queries\":[],\"noise\":{\"kind\":\"exact\"}}",
            "{\"op\":\"workload\",\"queries\":[{\"kind\":\"subset\"}],\"noise\":{\"kind\":\"exact\"}}",
            "{\"op\":\"workload\",\"queries\":[{\"kind\":\"subset\",\"rows\":[1.5]}],\"noise\":{\"kind\":\"exact\"}}",
            "{\"op\":\"workload\",\"queries\":[{\"kind\":\"subset\",\"rows\":[]}],\"noise\":{\"kind\":\"dp\",\"epsilon\":0}}",
            "{\"op\":\"workload\",\"queries\":[{\"kind\":\"subset\",\"rows\":[]}],\"noise\":{\"kind\":\"bounded\",\"alpha\":-1}}",
        ] {
            let v = crate::json::parse(bad).unwrap();
            assert!(Request::from_json(&v).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn subset_bounds_are_checked() {
        let q = WireQuery::Subset(vec![0, 7]);
        assert!(q.to_subset(8).unwrap().is_some());
        assert!(q.to_subset(7).is_err());
        assert!(WireQuery::IntRange {
            col: 0,
            lo: 0,
            hi: 1
        }
        .to_subset(8)
        .unwrap()
        .is_none());
    }
}
