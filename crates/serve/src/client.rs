//! The wire-protocol client, and the LP-reconstruction attack run through
//! it.
//!
//! [`ServiceClient`] is a deliberately thin session: connect, `hello`, then
//! typed request/response pairs over the framed protocol. [`lp_attack`] is
//! the Cohen–Nissim "Linear Program Reconstruction in Practice" loop aimed
//! at that client: declare the Dinur–Nissim density-½ subset workload
//! (exactly [`so_recon::lp_attack_queries`]), submit it over the socket,
//! and LP-decode whatever comes back — the attacker never touches the
//! server's memory, only its public query interface.

use std::net::{SocketAddr, TcpStream};

use rand::Rng;

use so_data::BitVec;
use so_plan::workload::Noise;
use so_recon::{lp_attack_queries, lp_decode};

use crate::flight::RequestRecord;
use crate::json::Json;
use crate::proto::{
    attach_request_id, read_frame, write_frame, ProtoError, Request, Response, WireQuery,
    DEFAULT_MAX_FRAME,
};

/// A client-side session failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Framing / protocol-shape failure.
    Proto(ProtoError),
    /// The server answered, but not with the expected response shape.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
            ClientError::Unexpected(e) => write!(f, "unexpected response: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// One framed session with the server.
pub struct ServiceClient {
    stream: TcpStream,
    max_frame: usize,
    next_request_id: Option<String>,
    last_request_id: Option<String>,
}

impl ServiceClient {
    /// Connects (no `hello` yet).
    pub fn connect(addr: SocketAddr) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        // Request/response framing: every write is a complete message, so
        // coalescing delays only add latency.
        stream.set_nodelay(true)?;
        Ok(ServiceClient {
            stream,
            max_frame: DEFAULT_MAX_FRAME,
            next_request_id: None,
            last_request_id: None,
        })
    }

    /// Tags the *next* request with `id`. The server echoes the id in its
    /// response and threads it through its span tree, so a client-chosen id
    /// stitches client-side and server-side traces together. One-shot: the
    /// id applies to the next [`call`](Self::call) only.
    pub fn set_next_request_id(&mut self, id: &str) {
        self.next_request_id = Some(id.to_owned());
    }

    /// The `request_id` echoed in the most recent response (server-assigned
    /// `srv-N` when the client did not supply one).
    pub fn last_request_id(&self) -> Option<&str> {
        self.last_request_id.as_deref()
    }

    /// Sends one request and reads one response.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let mut frame = request.to_json();
        if let Some(id) = self.next_request_id.take() {
            frame = attach_request_id(frame, &id);
        }
        write_frame(&mut self.stream, &frame)?;
        let v = read_frame(&mut self.stream, self.max_frame)?;
        self.last_request_id = match v.get("request_id") {
            Some(Json::Str(id)) => Some(id.clone()),
            _ => None,
        };
        Ok(Response::from_json(&v)?)
    }

    /// The session tenant's flight-recorder dump:
    /// `(cap, cumulative total, retained records oldest-first)`.
    pub fn flight(&mut self) -> Result<(usize, u64, Vec<RequestRecord>), ClientError> {
        match self.call(&Request::Flight)? {
            Response::FlightDump {
                cap,
                total,
                records,
                ..
            } => Ok((cap, total, records)),
            other => Err(unexpected(&other)),
        }
    }

    /// Binds the session to `tenant`; returns `(gated, n_rows)`.
    pub fn hello(&mut self, tenant: &str) -> Result<(bool, usize), ClientError> {
        match self.call(&Request::Hello {
            tenant: tenant.to_owned(),
        })? {
            Response::Welcome { gated, n_rows, .. } => Ok((gated, n_rows)),
            other => Err(unexpected(&other)),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Submits a workload; the server's verdict comes back verbatim
    /// (`Answers`, `Refused`, or an `Error` such as `SO-RATE`).
    pub fn workload(
        &mut self,
        queries: Vec<WireQuery>,
        noise: Noise,
    ) -> Result<Response, ClientError> {
        self.call(&Request::Workload { queries, noise })
    }

    /// The session tenant's budget state.
    pub fn budget(&mut self) -> Result<Response, ClientError> {
        self.call(&Request::Budget)
    }

    /// The server's live metrics registry, rendered.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::MetricsDump { text } => Ok(text),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(r: &Response) -> ClientError {
    ClientError::Unexpected(format!("{r:?}"))
}

/// What the remote LP attack produced.
#[derive(Debug)]
pub enum AttackOutcome {
    /// The server answered; the decoded reconstruction follows.
    Reconstructed {
        /// Rounded row-by-row guess at the secret column.
        reconstruction: BitVec,
        /// Queries the attack issued.
        queries_issued: usize,
        /// Total LP residual at the optimum.
        total_residual: f64,
    },
    /// The server refused the workload — the defense held. The per-query
    /// refusals come back for citation.
    Refused {
        /// Distinct gate codes cited, sorted.
        codes: Vec<String>,
        /// Refusals received (offending query indices).
        refusals: usize,
        /// First refusal's evidence payload, for the transcript.
        first_evidence: String,
    },
}

/// Runs the LP-reconstruction attack against an established session: `m`
/// density-½ subset queries from `rng` (the same generator
/// [`so_recon::lp_reconstruct`] uses in-process), submitted as one declared
/// workload with `noise`, then LP-decoded.
pub fn lp_attack<R: Rng>(
    client: &mut ServiceClient,
    n: usize,
    m: usize,
    noise: Noise,
    rng: &mut R,
) -> Result<AttackOutcome, ClientError> {
    let queries = lp_attack_queries(n, m, rng);
    let wire: Vec<WireQuery> = queries
        .iter()
        .map(|q| {
            WireQuery::Subset(
                q.members()
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| b.then_some(i))
                    .collect(),
            )
        })
        .collect();
    match client.workload(wire, noise)? {
        Response::Answers { answers } => {
            let decoded = lp_decode(n, &queries, &answers)
                .map_err(|e| ClientError::Unexpected(e.to_string()))?;
            Ok(AttackOutcome::Reconstructed {
                reconstruction: decoded.reconstruction,
                queries_issued: m,
                total_residual: decoded.total_residual,
            })
        }
        Response::Refused { refusals, .. } => {
            let mut codes: Vec<String> = refusals.iter().map(|r| r.code.clone()).collect();
            codes.sort();
            codes.dedup();
            let first_evidence = refusals
                .first()
                .map(|r| r.evidence.clone())
                .unwrap_or_default();
            Ok(AttackOutcome::Refused {
                codes,
                refusals: refusals.len(),
                first_evidence,
            })
        }
        other => Err(unexpected(&other)),
    }
}
