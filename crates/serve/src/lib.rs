#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! # so-serve — the multi-tenant statistical-query service
//!
//! Everything this repository knows about singling out assumes an attacker
//! on the *other side of an API*: Dinur–Nissim reconstruction works against
//! "a database access mechanism", and Cohen–Nissim ran it against a live
//! production aggregation endpoint ("Linear Program Reconstruction in
//! Practice", arXiv:1810.05692). This crate is that endpoint, std-only over
//! TCP:
//!
//! * [`proto`] — a length-prefixed JSON-frame wire protocol (workload
//!   declarations in, answers or evidence-bearing refusals out), with
//!   [`json`] as its dependency-free parser/renderer;
//! * [`tenant`] — per-tenant isolation: each tenant has its own dataset,
//!   secret column, lint-gate policy, optional continual-release
//!   ε-accountant ([`so_analyze::IncrementalGate`] semantics at the service
//!   edge), token-bucket rate limit, and audit log;
//! * [`limit`] — deterministic rate limiting over a logical clock, so
//!   rate-limit refusals (and their `retry_after_ticks`) are reproducible
//!   byte-for-byte in the experiments;
//! * [`server`] — acceptor + bounded worker pool, graceful drain on
//!   shutdown, and plain-HTTP `GET`/`HEAD` endpoints on the same port:
//!   `/metrics` (the live [`so_obs`] registry), `/healthz`, and
//!   `/flight/<tenant>` (the flight-recorder dump as JSON lines);
//! * [`flight`] — the per-tenant flight recorder: a bounded ring
//!   (`SO_FLIGHT_CAP`) of structured [`RequestRecord`]s — op, request id,
//!   lint codes, refusal evidence, ε spent, rows scanned, export-only
//!   latency — with an `SO_SLOWLOG_MICROS` stderr slow log;
//! * [`client`] — the typed session client, plus [`client::lp_attack`]: the
//!   LP-reconstruction attack speaking the wire protocol, which experiment
//!   E20 aims at an ungated tenant (≥95 % of rows reconstructed) and a
//!   gated one (refused with `SO-RECON` evidence).

pub mod client;
pub mod flight;
pub mod json;
pub mod limit;
pub mod obs;
pub mod proto;
pub mod server;
pub mod tenant;

pub use client::{lp_attack, AttackOutcome, ClientError, ServiceClient};
pub use flight::{FlightRecorder, RequestProfile, RequestRecord};
pub use limit::{TickSource, TokenBucket};
pub use obs::{serve_metrics, serve_refusals, ServeMetrics};
pub use proto::{Request, Response, WireQuery, WireRefusal};
pub use server::{spawn, ServerConfig, ServerHandle};
pub use tenant::{Tenant, TenantConfig, WorkloadOutcome};
