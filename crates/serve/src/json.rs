//! A minimal JSON value: parser and renderer.
//!
//! The wire protocol ships small JSON objects (a few hundred bytes of
//! control, plus query index arrays); the build environment is offline, so
//! rather than gating the crate on `serde` this module implements the
//! subset of JSON the protocol needs — objects, arrays, strings with
//! escapes, finite numbers, booleans, null — as one recursive-descent
//! parser over bytes. Object keys keep sorted order ([`std::collections::BTreeMap`])
//! so rendering is deterministic: the same message always serializes to the
//! same bytes, which is what lets CI diff session transcripts.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (JSON has one number type).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is sorted, so rendering is canonical.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_owned())
    }

    /// Builds a number value from anything convertible to `f64`.
    pub fn num(v: f64) -> Json {
        Json::Num(v)
    }

    /// The value under `key` if this is an object holding one.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// This value as a non-negative integer, if it is a whole number.
    pub fn as_usize(&self) -> Option<usize> {
        let v = self.as_f64()?;
        if v >= 0.0 && v.fract() == 0.0 && v <= u32::MAX as f64 {
            Some(v as usize)
        } else {
            None
        }
    }

    /// This value as an `i64`, if it is a whole number in range.
    pub fn as_i64(&self) -> Option<i64> {
        let v = self.as_f64()?;
        if v.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&v) {
            Some(v as i64)
        } else {
            None
        }
    }

    /// This value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value's elements, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders to the canonical (sorted-key, minimal-whitespace) form.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => {
                // JSON has no NaN/Inf; callers must not put them in.
                debug_assert!(v.is_finite(), "non-finite number in JSON");
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    out.push_str(&format!("{}", *v as i64));
                } else {
                    out.push_str(&format!("{v}"));
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure: byte offset plus what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What the parser expected or found.
    pub detail: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.detail)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing bytes after the value"));
    }
    Ok(v)
}

/// Nesting depth cap: deeper input is rejected rather than recursed into
/// (an adversarial client must not be able to overflow the stack).
const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, detail: &str) -> JsonError {
        JsonError {
            at: self.pos,
            detail: detail.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected byte {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = &self.bytes[self.pos + 1..self.pos + 5];
                            let hex = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by the protocol;
                            // lone surrogates map to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through whole.
                    let start = self.pos;
                    let rest = &self.bytes[start..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = text.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        let v: f64 = text
            .parse()
            .map_err(|_| self.err(&format!("bad number {text:?}")))?;
        if !v.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_values() {
        let cases = [
            "null",
            "true",
            "false",
            "0",
            "-3",
            "2.5",
            "\"hi\"",
            "[1,2,3]",
            "{\"a\":1,\"b\":[true,null]}",
            "{}",
            "[]",
        ];
        for c in cases {
            let v = parse(c).unwrap_or_else(|e| panic!("{c}: {e}"));
            assert_eq!(v.render(), c, "canonical form of {c}");
            assert_eq!(parse(&v.render()).unwrap(), v);
        }
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::str("line\nquote\" slash\\ tab\t");
        let rendered = v.render();
        assert_eq!(parse(&rendered).unwrap(), v);
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::str("A"));
    }

    #[test]
    fn object_keys_render_sorted() {
        let v = parse("{\"b\":1,\"a\":2}").unwrap();
        assert_eq!(v.render(), "{\"a\":2,\"b\":1}");
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        for bad in [
            "", "{", "[1,", "\"open", "tru", "{\"a\"}", "[1 2]", "nul", "+1", "1e999", "{\"a\":}",
            "]", ",",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        let err = parse(&deep).unwrap_err();
        assert!(err.detail.contains("deep"), "{err}");
    }

    #[test]
    fn accessors() {
        let v = parse("{\"n\":3,\"s\":\"x\",\"b\":true,\"a\":[1]}").unwrap();
        assert_eq!(v.get("n").and_then(Json::as_usize), Some(3));
        assert_eq!(v.get("n").and_then(Json::as_i64), Some(3));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(parse("2.5").unwrap().as_usize(), None);
        assert_eq!(parse("-1").unwrap().as_usize(), None);
    }

    #[test]
    fn unicode_passes_through() {
        let v = parse("\"héllo ☃\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo ☃"));
        assert_eq!(parse(&v.render()).unwrap(), v);
    }
}
