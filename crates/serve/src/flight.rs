//! The per-tenant flight recorder: a bounded ring of structured
//! [`RequestRecord`]s, one per tenant-bound request.
//!
//! The Cohen–Nissim production attack succeeded partly because the
//! operators had no per-request visibility — nothing tied the flood of
//! subset queries back to one principal. The flight recorder is that
//! visibility: every admitted, refused, or rate-limited request leaves a
//! record (op, request id, lint codes fired, refusal evidence, ε spent,
//! rows scanned, cache hits, latency), and the last `SO_FLIGHT_CAP`
//! records per tenant are queryable live over the `flight` wire op and
//! `GET /flight/<tenant>`.
//!
//! Determinism contract: every field except `latency_micros` derives from
//! deterministic counts, so experiment transcripts may print them. The
//! `latency_micros` field is **export-only** wall clock — it reaches the
//! wire dump, the slow log, and the `*_micros` histograms, never a
//! transcript. Likewise the ring *capacity* must never leak into a
//! transcript: experiments print the cumulative [`FlightRecorder::total`]
//! and the newest few records only, so `SO_FLIGHT_CAP=4` and the default
//! 256 produce byte-identical output (CI's `verify_matrix` proves it).

use crate::json::Json;
use crate::proto::ProtoError;

/// Environment variable setting the per-tenant ring capacity.
pub const FLIGHT_CAP_ENV: &str = "SO_FLIGHT_CAP";

/// Environment variable setting the slow-log threshold in microseconds;
/// unset (or unparsable) disables the slow log.
pub const SLOWLOG_ENV: &str = "SO_SLOWLOG_MICROS";

/// Ring capacity when `SO_FLIGHT_CAP` is unset or unparsable.
pub const DEFAULT_FLIGHT_CAP: usize = 256;

/// Parses a raw `SO_FLIGHT_CAP` value: a positive integer wins, anything
/// else (unset, garbage, zero — a ring that records nothing would be a
/// silent observability hole) falls back to [`DEFAULT_FLIGHT_CAP`].
pub fn parse_flight_cap(raw: Option<&str>) -> usize {
    match raw.and_then(|s| s.trim().parse::<usize>().ok()) {
        Some(cap) if cap >= 1 => cap,
        _ => DEFAULT_FLIGHT_CAP,
    }
}

/// The ring capacity from the environment ([`FLIGHT_CAP_ENV`]).
pub fn flight_cap_from_env() -> usize {
    parse_flight_cap(std::env::var(FLIGHT_CAP_ENV).ok().as_deref())
}

/// Parses a raw `SO_SLOWLOG_MICROS` value: a parsable integer enables the
/// slow log at that threshold (0 logs every recorded request), anything
/// else disables it.
pub fn parse_slowlog_micros(raw: Option<&str>) -> Option<u64> {
    raw.and_then(|s| s.trim().parse::<u64>().ok())
}

/// The slow-log threshold from the environment ([`SLOWLOG_ENV`]).
pub fn slowlog_micros_from_env() -> Option<u64> {
    parse_slowlog_micros(std::env::var(SLOWLOG_ENV).ok().as_deref())
}

/// What one request did, as the flight recorder remembers it.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    /// The tenant the request ran against.
    pub tenant: String,
    /// The wire op (`hello`, `workload`, `budget`, …).
    pub op: String,
    /// The correlation id echoed to the client (client-supplied or
    /// server-assigned `srv-N`).
    pub request_id: String,
    /// How the request ended: `ok`, `answered`, `refused`, `rate_limited`,
    /// or `error`.
    pub outcome: String,
    /// Distinct lint/error codes fired, sorted (`SO-RECON`, `SO-RATE`, …).
    pub codes: Vec<String>,
    /// First refusal's evidence payload (empty when none fired).
    pub evidence: String,
    /// ε this request spent against the tenant's accountant.
    pub epsilon_spent: f64,
    /// Rows the engine touched answering it (scans × rows + subset sweeps).
    pub rows_scanned: u64,
    /// Plan-cache hits while answering.
    pub cache_hits: u64,
    /// Wall-clock handling latency. **Export-only**: dumps and the slow
    /// log may show it, transcripts must not.
    pub latency_micros: u64,
}

impl RequestRecord {
    /// Renders to the wire/HTTP JSON form.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("tenant", Json::str(&self.tenant)),
            ("op", Json::str(&self.op)),
            ("request_id", Json::str(&self.request_id)),
            ("outcome", Json::str(&self.outcome)),
            (
                "codes",
                Json::Arr(self.codes.iter().map(|c| Json::str(c)).collect()),
            ),
            ("evidence", Json::str(&self.evidence)),
            ("epsilon_spent", Json::num(self.epsilon_spent)),
            ("rows_scanned", Json::num(self.rows_scanned as f64)),
            ("cache_hits", Json::num(self.cache_hits as f64)),
            ("latency_micros", Json::num(self.latency_micros as f64)),
        ])
    }

    /// Parses the wire/HTTP JSON form.
    pub fn from_json(v: &Json) -> Result<RequestRecord, ProtoError> {
        let shape = |m: &str| ProtoError::BadShape(m.to_owned());
        let text = |k: &str| -> Result<String, ProtoError> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| shape(&format!("flight record needs string `{k}`")))
        };
        let codes = v
            .get("codes")
            .and_then(Json::as_arr)
            .ok_or_else(|| shape("flight record needs `codes` array"))?
            .iter()
            .map(|c| {
                c.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| shape("flight codes must be strings"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RequestRecord {
            tenant: text("tenant")?,
            op: text("op")?,
            request_id: text("request_id")?,
            outcome: text("outcome")?,
            codes,
            evidence: text("evidence")?,
            epsilon_spent: v.get("epsilon_spent").and_then(Json::as_f64).unwrap_or(0.0),
            rows_scanned: v.get("rows_scanned").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            cache_hits: v.get("cache_hits").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            latency_micros: v
                .get("latency_micros")
                .and_then(Json::as_f64)
                .unwrap_or(0.0) as u64,
        })
    }

    /// Deterministic fields only — what a transcript may print. Everything
    /// here derives from counts; `latency_micros` is deliberately absent.
    pub fn transcript_fields(&self) -> String {
        format!(
            "op={} id={} outcome={} codes=[{}] eps={:.4} rows={} cache_hits={}",
            self.op,
            self.request_id,
            self.outcome,
            self.codes.join(","),
            self.epsilon_spent,
            self.rows_scanned,
            self.cache_hits,
        )
    }
}

/// One stderr slow-log line for a record that crossed the
/// `SO_SLOWLOG_MICROS` threshold. Wall clock appears here by design —
/// stderr is export-only, like the `*_micros` histograms.
pub fn slowlog_line(r: &RequestRecord) -> String {
    format!(
        "so-serve slow: tenant={} op={} request_id={} outcome={} latency_micros={} rows_scanned={} codes=[{}]",
        r.tenant,
        r.op,
        r.request_id,
        r.outcome,
        r.latency_micros,
        r.rows_scanned,
        r.codes.join(","),
    )
}

/// What the engine measured for one request, before it becomes a record.
/// Filled by [`crate::tenant::Tenant::run_workload`]; zeros for ops that
/// touch no data.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RequestProfile {
    /// Distinct lint codes fired, sorted.
    pub codes: Vec<String>,
    /// First non-empty refusal evidence.
    pub evidence: String,
    /// ε spent against the accountant.
    pub epsilon_spent: f64,
    /// Rows touched (dataset scans × rows + subset sweeps × rows).
    pub rows_scanned: u64,
    /// Plan-cache hits.
    pub cache_hits: u64,
}

/// A bounded ring of [`RequestRecord`]s. Pushes are O(1) and allocation-free
/// once the ring is warm; the cumulative total survives wrap-around, so a
/// caller can report "N requests recorded" without the cap leaking into the
/// number.
///
/// No interior locking: each recorder lives inside a [`crate::tenant::Tenant`],
/// which the server already serializes behind a per-tenant mutex.
#[derive(Debug)]
pub struct FlightRecorder {
    cap: usize,
    /// Slot the next push lands in (`total % cap` once warm).
    next: usize,
    /// All-time pushes — cap-invariant.
    total: u64,
    ring: Vec<RequestRecord>,
}

impl FlightRecorder {
    /// A recorder holding at most `cap` records (`cap` is clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        FlightRecorder {
            cap,
            next: 0,
            total: 0,
            ring: Vec::with_capacity(cap.min(DEFAULT_FLIGHT_CAP)),
        }
    }

    /// A recorder sized by `SO_FLIGHT_CAP` (default 256).
    pub fn from_env() -> Self {
        Self::new(flight_cap_from_env())
    }

    /// The ring capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// All-time recorded requests (does not shrink when the ring wraps).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Records one request, evicting the oldest record when full.
    pub fn push(&mut self, record: RequestRecord) {
        if self.ring.len() < self.cap {
            self.ring.push(record);
        } else {
            self.ring[self.next] = record;
        }
        self.next = (self.next + 1) % self.cap;
        self.total += 1;
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> Vec<RequestRecord> {
        if self.ring.len() < self.cap {
            return self.ring.clone();
        }
        let mut out = Vec::with_capacity(self.cap);
        out.extend_from_slice(&self.ring[self.next..]);
        out.extend_from_slice(&self.ring[..self.next]);
        out
    }

    /// The newest `k` records, oldest of those first — what a transcript
    /// prints (with `k` below every cap CI sweeps, the output is
    /// cap-invariant).
    pub fn last(&self, k: usize) -> Vec<RequestRecord> {
        let all = self.records();
        let skip = all.len().saturating_sub(k);
        all[skip..].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: usize) -> RequestRecord {
        RequestRecord {
            tenant: "open".to_owned(),
            op: "workload".to_owned(),
            request_id: format!("req-{i}"),
            outcome: "answered".to_owned(),
            codes: Vec::new(),
            evidence: String::new(),
            epsilon_spent: 0.0,
            rows_scanned: 64,
            cache_hits: 1,
            latency_micros: 123,
        }
    }

    #[test]
    fn cap_parsing_is_pinned() {
        assert_eq!(parse_flight_cap(None), DEFAULT_FLIGHT_CAP);
        assert_eq!(parse_flight_cap(Some("")), DEFAULT_FLIGHT_CAP);
        assert_eq!(parse_flight_cap(Some("banana")), DEFAULT_FLIGHT_CAP);
        assert_eq!(parse_flight_cap(Some("0")), DEFAULT_FLIGHT_CAP);
        assert_eq!(parse_flight_cap(Some("4")), 4);
        assert_eq!(parse_flight_cap(Some(" 17 ")), 17);
    }

    #[test]
    fn slowlog_parsing_is_pinned() {
        assert_eq!(parse_slowlog_micros(None), None);
        assert_eq!(parse_slowlog_micros(Some("nope")), None);
        assert_eq!(parse_slowlog_micros(Some("0")), Some(0));
        assert_eq!(parse_slowlog_micros(Some("2500")), Some(2500));
    }

    #[test]
    fn ring_evicts_oldest_and_keeps_total() {
        let mut f = FlightRecorder::new(3);
        assert_eq!((f.cap(), f.total()), (3, 0));
        for i in 0..5 {
            f.push(rec(i));
        }
        assert_eq!(f.total(), 5, "total survives eviction");
        let ids: Vec<String> = f.records().into_iter().map(|r| r.request_id).collect();
        assert_eq!(ids, ["req-2", "req-3", "req-4"], "oldest first");
        let last: Vec<String> = f.last(2).into_iter().map(|r| r.request_id).collect();
        assert_eq!(last, ["req-3", "req-4"]);
        // Asking for more than retained returns what's there.
        assert_eq!(f.last(99).len(), 3);
    }

    #[test]
    fn last_k_is_cap_invariant_above_k() {
        // The transcript-facing view: identical for every cap > k.
        let views: Vec<Vec<String>> = [3usize, 4, 256]
            .iter()
            .map(|&cap| {
                let mut f = FlightRecorder::new(cap);
                for i in 0..10 {
                    f.push(rec(i));
                }
                f.last(3).into_iter().map(|r| r.request_id).collect()
            })
            .collect();
        assert_eq!(views[0], views[1]);
        assert_eq!(views[1], views[2]);
    }

    #[test]
    fn records_roundtrip_json() {
        let r = RequestRecord {
            tenant: "guarded".to_owned(),
            op: "workload".to_owned(),
            request_id: "att-7".to_owned(),
            outcome: "refused".to_owned(),
            codes: vec!["SO-LINREC".to_owned(), "SO-RECON".to_owned()],
            evidence: "m=96 alpha<=0".to_owned(),
            epsilon_spent: 0.25,
            rows_scanned: 1024,
            cache_hits: 3,
            latency_micros: 456,
        };
        let parsed = RequestRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn transcript_fields_omit_wall_clock() {
        let line = rec(1).transcript_fields();
        assert!(!line.contains("micros"), "{line}");
        assert!(line.contains("op=workload") && line.contains("id=req-1"));
        let slow = slowlog_line(&rec(1));
        assert!(slow.contains("latency_micros=123"), "{slow}");
        assert!(slow.starts_with("so-serve slow: tenant=open"));
    }
}
