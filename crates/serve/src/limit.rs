//! Deterministic per-tenant rate limiting.
//!
//! The server never reads a wall clock (the determinism lint bans ambient
//! time in library code), so the token bucket is driven by a **logical
//! tick**: a shared monotone counter the embedding decides how to advance.
//! The standalone daemon advances it from a timer thread (~1 tick/ms); the
//! in-process test harness and the deterministic experiments advance it once
//! per processed frame, which makes rate-limit refusals — including their
//! `retry_after_ticks` payloads — byte-identical across runs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared monotone logical clock.
#[derive(Debug, Clone, Default)]
pub struct TickSource(Arc<AtomicU64>);

impl TickSource {
    /// A new source starting at tick 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current tick.
    pub fn now(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }

    /// Advances the clock by `n` ticks and returns the new value.
    pub fn advance(&self, n: u64) -> u64 {
        self.0.fetch_add(n, Ordering::AcqRel) + n
    }
}

/// A classic token bucket over the logical clock.
///
/// The bucket holds up to `capacity` tokens and gains one token every
/// `refill_every` ticks (computed lazily from the tick delta, so no
/// background work is needed). Each admitted request costs one token.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: u64,
    refill_every: u64,
    tokens: u64,
    last_refill_tick: u64,
}

impl TokenBucket {
    /// A full bucket. `capacity` and `refill_every` must be positive.
    pub fn new(capacity: u64, refill_every: u64) -> Self {
        assert!(capacity > 0, "bucket capacity must be positive");
        assert!(refill_every > 0, "refill interval must be positive");
        TokenBucket {
            capacity,
            refill_every,
            tokens: capacity,
            last_refill_tick: 0,
        }
    }

    /// Credits any tokens earned since the last refill, then tries to spend
    /// one. `Err(retry_after)` is the number of ticks after `tick` at which
    /// the next token becomes available.
    pub fn admit(&mut self, tick: u64) -> Result<(), u64> {
        self.refill(tick);
        if self.tokens > 0 {
            self.tokens -= 1;
            Ok(())
        } else {
            // After a clamped refill `last_refill_tick` may sit ahead of a
            // stale caller tick; saturate rather than underflow.
            let elapsed = tick.saturating_sub(self.last_refill_tick);
            Err(self.refill_every - elapsed.min(self.refill_every - 1))
        }
    }

    /// Tokens currently available at `tick` (after lazy refill).
    pub fn available(&mut self, tick: u64) -> u64 {
        self.refill(tick);
        self.tokens
    }

    fn refill(&mut self, tick: u64) {
        // Ticks are monotone per source, but a fresh bucket may observe a
        // clock that started before it; clamp instead of underflowing.
        let tick = tick.max(self.last_refill_tick);
        let earned = (tick - self.last_refill_tick) / self.refill_every;
        if earned > 0 {
            self.tokens = (self.tokens + earned).min(self.capacity);
            self.last_refill_tick += earned * self.refill_every;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_refusal_with_retry_after() {
        let mut b = TokenBucket::new(3, 10);
        assert!(b.admit(0).is_ok());
        assert!(b.admit(0).is_ok());
        assert!(b.admit(0).is_ok());
        // Bucket empty; next token arrives at tick 10.
        assert_eq!(b.admit(0), Err(10));
        assert_eq!(b.admit(4), Err(6));
        // At tick 10 one token has been earned.
        assert!(b.admit(10).is_ok());
        assert_eq!(b.admit(10), Err(10));
    }

    #[test]
    fn refill_caps_at_capacity() {
        let mut b = TokenBucket::new(2, 5);
        assert!(b.admit(0).is_ok());
        assert!(b.admit(0).is_ok());
        // A long idle stretch earns at most `capacity` tokens.
        assert_eq!(b.available(1_000), 2);
        assert!(b.admit(1_000).is_ok());
        assert!(b.admit(1_000).is_ok());
        assert!(b.admit(1_000).is_err());
    }

    #[test]
    fn retry_after_is_honest() {
        let mut b = TokenBucket::new(1, 7);
        assert!(b.admit(3).is_ok());
        let retry = b.admit(3).unwrap_err();
        // Waiting exactly `retry` ticks must succeed.
        assert!(b.admit(3 + retry).is_ok());
    }

    #[test]
    fn tick_source_is_shared() {
        let t = TickSource::new();
        let t2 = t.clone();
        assert_eq!(t.now(), 0);
        assert_eq!(t2.advance(5), 5);
        assert_eq!(t.now(), 5);
    }

    #[test]
    fn stale_bucket_clamps_old_clock() {
        let mut b = TokenBucket::new(1, 10);
        b.last_refill_tick = 50;
        // A tick below last_refill_tick must not underflow.
        assert!(b.admit(40).is_ok());
        assert_eq!(b.admit(40), Err(10));
    }
}
