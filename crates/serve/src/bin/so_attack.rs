//! `so_attack` — the LP-reconstruction attack client.
//!
//! Speaks the wire protocol against a running `so_served` (or any
//! [`so_serve::server`]) instance: binds to a tenant, declares the
//! Dinur–Nissim density-½ subset workload, and LP-decodes the answers —
//! the Cohen–Nissim attack loop, aimed at a production API rather than an
//! in-process mechanism.
//!
//! ```text
//! so_attack --addr HOST:PORT --tenant NAME [--ratio R] [--seed S]
//!           [--noise exact|bounded:A|dp:E] [--probe-metrics]
//! ```
//!
//! Exit status: 0 when the attack *resolved* — either reconstructed (the
//! tenant was undefended) or refused with gate evidence (the defense held);
//! 2 on usage or transport errors. The caller decides which outcome was
//! supposed to happen.

use so_data::rng::seeded_rng;
use so_plan::workload::Noise;
use so_serve::{lp_attack, AttackOutcome, ServiceClient};

fn main() {
    let mut addr: Option<String> = None;
    let mut tenant: Option<String> = None;
    let mut ratio = 4.0f64;
    let mut seed = 1234u64;
    let mut noise = Noise::Exact;
    let mut probe_metrics = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match a.as_str() {
            "--addr" => addr = Some(val("--addr")),
            "--tenant" => tenant = Some(val("--tenant")),
            "--ratio" => ratio = parse(&val("--ratio"), "--ratio"),
            "--seed" => seed = parse(&val("--seed"), "--seed"),
            "--noise" => noise = parse_noise(&val("--noise")),
            "--probe-metrics" => probe_metrics = true,
            "--help" | "-h" => {
                println!(
                    "usage: so_attack --addr HOST:PORT --tenant NAME [--ratio R] \
                     [--seed S] [--noise exact|bounded:A|dp:E] [--probe-metrics]"
                );
                return;
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }
    let addr = addr.unwrap_or_else(|| die("--addr is required"));
    let tenant = tenant.unwrap_or_else(|| die("--tenant is required"));
    let addr = addr
        .parse()
        .unwrap_or_else(|_| die(&format!("--addr: cannot parse {addr:?}")));

    let mut client = ServiceClient::connect(addr).unwrap_or_else(|e| die(&format!("connect: {e}")));
    let (gated, n) = client
        .hello(&tenant)
        .unwrap_or_else(|e| die(&format!("hello {tenant:?}: {e}")));
    let m = ((ratio * n as f64).ceil() as usize).max(1);
    println!("tenant {tenant:?}: gated={gated} n={n}; attacking with m={m} subset queries");

    let mut rng = seeded_rng(seed);
    match lp_attack(&mut client, n, m, noise, &mut rng) {
        Ok(AttackOutcome::Reconstructed {
            reconstruction,
            queries_issued,
            total_residual,
        }) => {
            println!(
                "RECONSTRUCTED: {queries_issued} queries answered; candidate has \
                 {} of {n} bits set; LP residual {total_residual:.4}",
                reconstruction.count_ones()
            );
        }
        Ok(AttackOutcome::Refused {
            codes,
            refusals,
            first_evidence,
        }) => {
            println!(
                "REFUSED: {refusals} per-query refusals, codes [{}], evidence: {first_evidence}",
                codes.join(", ")
            );
        }
        Err(e) => die(&format!("attack: {e}")),
    }

    if probe_metrics {
        let text = client
            .metrics()
            .unwrap_or_else(|e| die(&format!("metrics: {e}")));
        let lines = text.lines().filter(|l| l.starts_with("so_serve_")).count();
        println!("metrics probe: {lines} so_serve_* series exported");
    }
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("{flag}: cannot parse {s:?}")))
}

fn parse_noise(s: &str) -> Noise {
    if s == "exact" {
        return Noise::Exact;
    }
    if let Some(alpha) = s.strip_prefix("bounded:") {
        return Noise::Bounded {
            alpha: parse(alpha, "--noise bounded"),
        };
    }
    if let Some(eps) = s.strip_prefix("dp:") {
        return Noise::PureDp {
            epsilon: parse(eps, "--noise dp"),
        };
    }
    die(&format!(
        "--noise: expected exact|bounded:A|dp:E, got {s:?}"
    ))
}

fn die(msg: &str) -> ! {
    eprintln!("so_attack: {msg}");
    std::process::exit(2);
}
