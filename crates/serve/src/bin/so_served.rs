//! `so_served` — the standalone service daemon.
//!
//! Boots the multi-tenant server on a loopback (or given) address with a
//! demo tenant pair — `open` (ungated: the vulnerable production API) and
//! `guarded` (lint gate + continual ε budget) — prints the bound address,
//! and serves until killed. A timer thread drives the logical rate-limit
//! clock at ~1 tick/ms, giving the token buckets real-time behavior without
//! the library ever reading a wall clock.
//!
//! ```text
//! so_served [--bind ADDR] [--workers N] [--rows N] [--seed S] [--max-requests N]
//! ```
//!
//! `--max-requests` makes the daemon exit on its own after serving that
//! many requests — CI smoke jobs use it so an orphaned daemon cannot
//! outlive its job.

use std::sync::atomic::Ordering;

fn main() {
    let mut bind = "127.0.0.1:0".to_owned();
    let mut workers = 4usize;
    let mut rows = 128usize;
    let mut seed = 42u64;
    let mut max_requests: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match a.as_str() {
            "--bind" => bind = val("--bind"),
            "--workers" => workers = parse(&val("--workers"), "--workers"),
            "--rows" => rows = parse(&val("--rows"), "--rows"),
            "--seed" => seed = parse(&val("--seed"), "--seed"),
            "--max-requests" => {
                max_requests = Some(parse(&val("--max-requests"), "--max-requests"))
            }
            "--help" | "-h" => {
                println!(
                    "usage: so_served [--bind ADDR] [--workers N] [--rows N] \
                     [--seed S] [--max-requests N]"
                );
                return;
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }

    let tenants = vec![
        so_serve::TenantConfig::ungated("open", rows, seed),
        so_serve::TenantConfig::gated("guarded", rows, seed).with_continual_budget(1.0),
    ];
    let config = so_serve::ServerConfig {
        workers,
        tick_per_request: false,
        ..so_serve::ServerConfig::default()
    };
    let handle = match so_serve::spawn(tenants, config, Some(&bind)) {
        Ok(h) => h,
        Err(e) => die(&format!("bind {bind}: {e}")),
    };
    // Line-oriented readiness signal for scripts: they wait for this line,
    // then parse the port from it.
    println!("so_served listening on {}", handle.local_addr());
    println!("tenants: open (ungated), guarded (gated, continual ε = 1.0)");

    // Drive the logical clock from real time: ~1 tick per millisecond.
    let tick = handle.tick();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let timer_stop = std::sync::Arc::clone(&stop);
    let timer = std::thread::spawn(move || {
        while !timer_stop.load(Ordering::Acquire) {
            std::thread::sleep(std::time::Duration::from_millis(1));
            tick.advance(1);
        }
    });

    match max_requests {
        None => {
            // Serve until killed.
            timer.join().expect("timer thread");
        }
        Some(cap) => {
            // Poll the request counter and drain once the cap is reached.
            let reg = so_obs::global();
            loop {
                std::thread::sleep(std::time::Duration::from_millis(20));
                let served = reg.counter_value("so_serve_requests_total").unwrap_or(0);
                if served >= cap {
                    break;
                }
            }
            println!("so_served served {cap} requests; draining");
            stop.store(true, Ordering::Release);
            let _ = timer.join();
            handle.shutdown();
            // Export-only latency summary on stderr: upper bounds of the
            // histogram buckets holding the p50/p99 ranks.
            let hist = &so_serve::serve_metrics().request_micros;
            if let (Some(p50), Some(p99)) = (
                hist.quantile_upper_bound(0.50),
                hist.quantile_upper_bound(0.99),
            ) {
                eprintln!(
                    "so_served latency: {} requests, p50 <= {p50} us, p99 <= {p99} us",
                    hist.count()
                );
            }
        }
    }
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("{flag}: cannot parse {s:?}")))
}

fn die(msg: &str) -> ! {
    eprintln!("so_served: {msg}");
    std::process::exit(2);
}
