//! Service observability: `so_serve_*` counters in the [`so_obs::global`]
//! registry, exported live over the wire (`metrics` op and the HTTP
//! `/metrics` endpoint).
//!
//! Two layers:
//!
//! * **aggregates** ([`serve_metrics`]) — whole-server counters of logical
//!   events (requests, refusals, frames), plus the export-only
//!   `so_serve_request_micros` latency histogram;
//! * **per-tenant labels** ([`serve_requests_by_op`],
//!   [`serve_tenant_refusals`], [`serve_epsilon_gauges`],
//!   [`serve_op_latency`]) — the burn-down / refusal / latency views the
//!   paper's operator would actually watch, labeled `{tenant, op}` or
//!   `{tenant, code}`. Tenant label cardinality is capped at
//!   [`TENANT_LABEL_CAP`] distinct names; later tenants collapse into the
//!   `other` label so an adversarial tenant churn cannot grow the registry
//!   without bound. Op and code labels come from closed sets and need no
//!   cap.
//!
//! Determinism: every counter and gauge value derives from logical events,
//! so for a fixed request sequence the non-`_micros` dump is identical
//! whatever the worker interleaving (CI diffs it across `SO_THREADS`).
//! Wall clock feeds only `*_micros` histograms, which the diffs filter.

use std::collections::BTreeSet;
use std::sync::{Mutex, OnceLock};

use so_obs::{global, Counter, Gauge, Histogram};

/// Bucket bounds (µs) for the request-latency histograms: loopback
/// request handling sits in the tens-to-hundreds of µs, LP-sized workloads
/// in the ms range, so the grid is dense there and sparse above.
pub const REQUEST_MICROS_BOUNDS: [f64; 12] = [
    50.0,
    100.0,
    250.0,
    500.0,
    1_000.0,
    2_500.0,
    5_000.0,
    10_000.0,
    25_000.0,
    100_000.0,
    500_000.0,
    2_000_000.0,
];

/// Most distinct tenant names the labeled metrics will track; the
/// `TENANT_LABEL_CAP + 1`-th tenant and beyond share the `other` label.
pub const TENANT_LABEL_CAP: usize = 32;

/// Cached handles to the service metrics. Fetch once via [`serve_metrics`];
/// updates are lock-free.
#[derive(Debug)]
pub struct ServeMetrics {
    /// `so_serve_requests_total` — well-formed requests processed.
    pub requests: Counter,
    /// `so_serve_workloads_answered_total` — workloads admitted and
    /// answered.
    pub workloads_answered: Counter,
    /// `so_serve_workloads_refused_total` — workloads refused by a tenant's
    /// gate.
    pub workloads_refused: Counter,
    /// `so_serve_rate_limited_total` — requests pushed back with `SO-RATE`.
    pub rate_limited: Counter,
    /// `so_serve_proto_errors_total` — malformed frames / requests answered
    /// with `SO-PROTO`.
    pub proto_errors: Counter,
    /// `so_serve_sessions_total` — accepted connections.
    pub sessions: Counter,
    /// `so_serve_active_sessions` — connections currently being served.
    pub active_sessions: Gauge,
    /// `so_serve_request_micros` — export-only handling latency over all
    /// requests; feeds the drain-time p99 summary, never a transcript.
    pub request_micros: Histogram,
    /// `so_serve_flight_records_total` — flight-recorder pushes across all
    /// tenants.
    pub flight_records: Counter,
    /// `so_serve_slowlog_over_micros_total` — requests that crossed the
    /// `SO_SLOWLOG_MICROS` threshold. Whether a request is "slow" is a
    /// wall-clock fact, so the name keeps the `_micros` token and the
    /// cross-configuration metric diffs filter it like the histograms.
    pub slowlog_emitted: Counter,
}

/// The service's global metric handles, registered on first use.
pub fn serve_metrics() -> &'static ServeMetrics {
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        ServeMetrics {
            requests: r.counter("so_serve_requests_total"),
            workloads_answered: r.counter("so_serve_workloads_answered_total"),
            workloads_refused: r.counter("so_serve_workloads_refused_total"),
            rate_limited: r.counter("so_serve_rate_limited_total"),
            proto_errors: r.counter("so_serve_proto_errors_total"),
            sessions: r.counter("so_serve_sessions_total"),
            active_sessions: r.gauge("so_serve_active_sessions"),
            request_micros: r.histogram("so_serve_request_micros", &REQUEST_MICROS_BOUNDS),
            flight_records: r.counter("so_serve_flight_records_total"),
            slowlog_emitted: r.counter("so_serve_slowlog_over_micros_total"),
        }
    })
}

/// `so_serve_query_refusals_total{code=…}` — per-gate-code refusal counts at
/// the service edge (the serving twin of `so_gate_query_refusals_total`).
pub fn serve_refusals(code: &str) -> Counter {
    global().counter_with("so_serve_query_refusals_total", &[("code", code)])
}

/// Maps a tenant name onto its metric label, enforcing the cardinality cap:
/// the first [`TENANT_LABEL_CAP`] distinct names keep their own label,
/// everything after shares `other`. First-come-first-kept is deterministic
/// for a fixed request sequence.
fn tenant_label(tenant: &str) -> String {
    static SEEN: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();
    let seen = SEEN.get_or_init(|| Mutex::new(BTreeSet::new()));
    let mut seen = match seen.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    label_for(&mut seen, tenant, TENANT_LABEL_CAP)
}

/// The pure capping rule behind [`tenant_label`], separated for tests.
fn label_for(seen: &mut BTreeSet<String>, tenant: &str, cap: usize) -> String {
    if seen.contains(tenant) {
        return tenant.to_owned();
    }
    if seen.len() < cap {
        seen.insert(tenant.to_owned());
        return tenant.to_owned();
    }
    "other".to_owned()
}

/// `so_serve_requests_by_op_total{op,tenant}` — requests by wire op and
/// tenant (`tenant="none"` for ops outside any tenant binding).
pub fn serve_requests_by_op(op: &str, tenant: &str) -> Counter {
    let t = tenant_label(tenant);
    global().counter_with(
        "so_serve_requests_by_op_total",
        &[("op", op), ("tenant", &t)],
    )
}

/// `so_serve_tenant_refusals_total{code,tenant}` — refusals by gate code
/// *and* tenant: which principal keeps tripping `SO-RECON`.
pub fn serve_tenant_refusals(code: &str, tenant: &str) -> Counter {
    let t = tenant_label(tenant);
    global().counter_with(
        "so_serve_tenant_refusals_total",
        &[("code", code), ("tenant", &t)],
    )
}

/// ε burn-down gauges for one tenant:
/// `(so_serve_tenant_epsilon_spent{tenant}, so_serve_tenant_epsilon_remaining{tenant})`.
pub fn serve_epsilon_gauges(tenant: &str) -> (Gauge, Gauge) {
    let t = tenant_label(tenant);
    (
        global().gauge_with("so_serve_tenant_epsilon_spent", &[("tenant", &t)]),
        global().gauge_with("so_serve_tenant_epsilon_remaining", &[("tenant", &t)]),
    )
}

/// `so_serve_op_micros{op,tenant}` — export-only per-op handling latency.
pub fn serve_op_latency(op: &str, tenant: &str) -> Histogram {
    let t = tenant_label(tenant);
    global().histogram_with(
        "so_serve_op_micros",
        &REQUEST_MICROS_BOUNDS,
        &[("op", op), ("tenant", &t)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_cap_collapses_overflow_into_other() {
        let mut seen = BTreeSet::new();
        assert_eq!(label_for(&mut seen, "a", 2), "a");
        assert_eq!(label_for(&mut seen, "b", 2), "b");
        // A third distinct tenant overflows…
        assert_eq!(label_for(&mut seen, "c", 2), "other");
        // …while established tenants keep their labels.
        assert_eq!(label_for(&mut seen, "a", 2), "a");
        assert_eq!(label_for(&mut seen, "b", 2), "b");
        // Overflowed names stay collapsed (they were never admitted).
        assert_eq!(label_for(&mut seen, "c", 2), "other");
        assert_eq!(seen.len(), 2, "the set never grows past the cap");
    }

    #[test]
    fn labeled_series_register_and_accumulate() {
        serve_requests_by_op("workload", "obs-test-tenant").add(2);
        assert!(
            global()
                .counter_value_with(
                    "so_serve_requests_by_op_total",
                    &[("op", "workload"), ("tenant", "obs-test-tenant")]
                )
                .unwrap()
                >= 2
        );
        serve_tenant_refusals("SO-RECON", "obs-test-tenant").inc();
        let (spent, remaining) = serve_epsilon_gauges("obs-test-tenant");
        spent.set(0.75);
        remaining.set(0.25);
        assert_eq!(
            global().gauge_value_with(
                "so_serve_tenant_epsilon_spent",
                &[("tenant", "obs-test-tenant")]
            ),
            Some(0.75)
        );
        serve_op_latency("workload", "obs-test-tenant").observe(120.0);
        let text = global().render();
        assert!(text.contains(
            "so_serve_tenant_refusals_total{code=\"SO-RECON\",tenant=\"obs-test-tenant\"}"
        ));
        assert!(text.contains(
            "so_serve_op_micros_bucket{op=\"workload\",tenant=\"obs-test-tenant\",le=\"250\"}"
        ));
    }
}
