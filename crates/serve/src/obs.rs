//! Service observability: `so_serve_*` counters in the [`so_obs::global`]
//! registry, exported live over the wire (`metrics` op and the HTTP
//! `/metrics` endpoint).
//!
//! Every metric here is an *aggregate* over the whole server — no per-worker
//! or per-connection labels — and counts only logical events (requests,
//! refusals, frames), never durations. That keeps the registry dump
//! deterministic for a fixed request sequence, whatever the worker-pool
//! interleaving: the same property the rest of the system's metrics uphold
//! across `SO_THREADS` / `SO_STORAGE` / `SO_SCHEDULE`.

use std::sync::OnceLock;

use so_obs::{global, Counter, Gauge};

/// Cached handles to the service metrics. Fetch once via [`serve_metrics`];
/// updates are lock-free.
#[derive(Debug)]
pub struct ServeMetrics {
    /// `so_serve_requests_total` — well-formed requests processed.
    pub requests: Counter,
    /// `so_serve_workloads_answered_total` — workloads admitted and
    /// answered.
    pub workloads_answered: Counter,
    /// `so_serve_workloads_refused_total` — workloads refused by a tenant's
    /// gate.
    pub workloads_refused: Counter,
    /// `so_serve_rate_limited_total` — requests pushed back with `SO-RATE`.
    pub rate_limited: Counter,
    /// `so_serve_proto_errors_total` — malformed frames / requests answered
    /// with `SO-PROTO`.
    pub proto_errors: Counter,
    /// `so_serve_sessions_total` — accepted connections.
    pub sessions: Counter,
    /// `so_serve_active_sessions` — connections currently being served.
    pub active_sessions: Gauge,
}

/// The service's global metric handles, registered on first use.
pub fn serve_metrics() -> &'static ServeMetrics {
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        ServeMetrics {
            requests: r.counter("so_serve_requests_total"),
            workloads_answered: r.counter("so_serve_workloads_answered_total"),
            workloads_refused: r.counter("so_serve_workloads_refused_total"),
            rate_limited: r.counter("so_serve_rate_limited_total"),
            proto_errors: r.counter("so_serve_proto_errors_total"),
            sessions: r.counter("so_serve_sessions_total"),
            active_sessions: r.gauge("so_serve_active_sessions"),
        }
    })
}

/// `so_serve_query_refusals_total{code=…}` — per-gate-code refusal counts at
/// the service edge (the serving twin of `so_gate_query_refusals_total`).
pub fn serve_refusals(code: &str) -> Counter {
    global().counter_with("so_serve_query_refusals_total", &[("code", code)])
}
