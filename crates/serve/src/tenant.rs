//! Per-tenant state: data, gate policy, budget, rate limit, audit log.
//!
//! A tenant is one isolated statistical-query surface. Each holds
//!
//! * a tabular [`Dataset`] (for counting queries) and a secret bit column
//!   (for subset-sum queries) — both derived deterministically from the
//!   tenant seed;
//! * a gate policy: an *ungated* tenant answers any well-formed workload
//!   (the vulnerable production API of the reconstruction literature); a
//!   *gated* tenant lints every workload with [`lint_workload`] first and
//!   refuses with the same per-index, evidence-bearing entries as
//!   [`so_analyze::GatedEngine`];
//! * optionally a [`ContinualAccountant`], under which non-DP releases are
//!   refused outright and admitted DP workloads spend ε — the
//!   [`so_analyze::IncrementalGate`] `SO-CBUDGET` semantics, enforced at
//!   the service edge;
//! * a [`TokenBucket`] rate limit and an append-only refusal log in the
//!   gate's audit format, so a wire refusal is as citable as an in-process
//!   one.
//!
//! Tenants never share mutable state: a panic while serving one tenant (the
//! worker catches it) cannot corrupt another tenant's accountant or bucket.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::Rng;

use so_analyze::lint::{lint_workload, LintConfig, Severity};
use so_analyze::CBUDGET_CODE;
use so_data::rng::{derive_seed, seeded_rng};
use so_data::{
    AttributeDef, AttributeRole, BitVec, DataType, Dataset, DatasetBuilder, Schema, StorageEngine,
    Value,
};
use so_dp::{sample_laplace, ContinualAccountant};
use so_plan::shape::PredShape;
use so_plan::workload::{Noise, QueryKind, WorkloadSpec};
use so_query::engine::{CountingEngine, WorkloadAnswer};

use crate::flight::{FlightRecorder, RequestProfile};
use crate::limit::TokenBucket;
use crate::proto::{ProtoError, WireQuery, WireRefusal};

/// Static configuration of one tenant.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Tenant name (the `hello` handle).
    pub name: String,
    /// Rows in the tenant's dataset (and bits in its secret column).
    pub n_rows: usize,
    /// Master seed; the secret column and release-noise stream derive from
    /// it, so a tenant's behavior is a pure function of its config.
    pub seed: u64,
    /// Whether workloads pass through the lint gate.
    pub gated: bool,
    /// Lint tunables for the gate (ignored when ungated).
    pub lint: LintConfig,
    /// When set, attach a [`ContinualAccountant`] with this ε budget.
    pub continual_epsilon: Option<f64>,
    /// Token-bucket capacity (burst size).
    pub rate_capacity: u64,
    /// Ticks per earned token.
    pub rate_refill_every: u64,
    /// Flight-recorder ring capacity; `None` reads `SO_FLIGHT_CAP`
    /// (default 256).
    pub flight_cap: Option<usize>,
}

impl TenantConfig {
    /// An ungated tenant with a generous rate limit — the "production API
    /// that answers everything" of the reconstruction literature.
    pub fn ungated(name: &str, n_rows: usize, seed: u64) -> Self {
        TenantConfig {
            name: name.to_owned(),
            n_rows,
            seed,
            gated: false,
            lint: LintConfig::default(),
            continual_epsilon: None,
            rate_capacity: 4096,
            rate_refill_every: 1,
            flight_cap: None,
        }
    }

    /// A gated tenant with default lints and the same rate limit.
    pub fn gated(name: &str, n_rows: usize, seed: u64) -> Self {
        TenantConfig {
            gated: true,
            ..Self::ungated(name, n_rows, seed)
        }
    }

    /// Adds continual-release budget accounting.
    pub fn with_continual_budget(mut self, epsilon: f64) -> Self {
        self.continual_epsilon = Some(epsilon);
        self
    }

    /// Overrides the token-bucket parameters.
    pub fn with_rate(mut self, capacity: u64, refill_every: u64) -> Self {
        self.rate_capacity = capacity;
        self.rate_refill_every = refill_every;
        self
    }

    /// Overrides the flight-recorder ring capacity (tests; the daemon uses
    /// `SO_FLIGHT_CAP`).
    pub fn with_flight_cap(mut self, cap: usize) -> Self {
        self.flight_cap = Some(cap);
        self
    }
}

/// The outcome of one workload against a tenant.
#[derive(Debug, Clone)]
pub enum WorkloadOutcome {
    /// Admitted: released answers, in declaration order.
    Answered(Vec<f64>),
    /// Refused by the gate: per-offending-index refusals, no query ran.
    Refused(Vec<WireRefusal>),
}

/// One tenant's live state.
pub struct Tenant {
    config: TenantConfig,
    dataset: Dataset,
    secret: BitVec,
    accountant: Option<ContinualAccountant>,
    noise_rng: StdRng,
    bucket: TokenBucket,
    refusal_log: Vec<String>,
    workloads_answered: u64,
    workloads_refused: u64,
    flight: FlightRecorder,
    last_profile: RequestProfile,
}

impl Tenant {
    /// Builds the tenant: dataset and secret derived from the seed, a full
    /// token bucket, a fresh accountant if budgeted.
    pub fn new(config: TenantConfig) -> Self {
        let schema = Schema::new(vec![AttributeDef::new(
            "age",
            DataType::Int,
            AttributeRole::QuasiIdentifier,
        )]);
        let mut rows = seeded_rng(derive_seed(config.seed, 0));
        let mut b = DatasetBuilder::new(schema);
        for _ in 0..config.n_rows {
            b.push_row(vec![Value::Int(rows.gen_range(0..90))]);
        }
        let dataset = b.finish_with_engine(StorageEngine::from_env());
        let mut secret_rng = seeded_rng(derive_seed(config.seed, 1));
        let mut secret = BitVec::zeros(config.n_rows);
        for i in 0..config.n_rows {
            secret.set(i, secret_rng.gen::<bool>());
        }
        let noise_rng = seeded_rng(derive_seed(config.seed, 2));
        let bucket = TokenBucket::new(config.rate_capacity, config.rate_refill_every);
        let accountant = config.continual_epsilon.map(ContinualAccountant::new);
        let flight = match config.flight_cap {
            Some(cap) => FlightRecorder::new(cap),
            None => FlightRecorder::from_env(),
        };
        Tenant {
            config,
            dataset,
            secret,
            accountant,
            noise_rng,
            bucket,
            refusal_log: Vec::new(),
            workloads_answered: 0,
            workloads_refused: 0,
            flight,
            last_profile: RequestProfile::default(),
        }
    }

    /// The tenant name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// Whether the lint gate is on.
    pub fn gated(&self) -> bool {
        self.config.gated
    }

    /// Row count / secret length.
    pub fn n_rows(&self) -> usize {
        self.config.n_rows
    }

    /// The secret column — server-side ground truth, used by the experiment
    /// harness to score a reconstruction. Never crosses the wire.
    pub fn secret(&self) -> &BitVec {
        &self.secret
    }

    /// Budget state: `(accounting?, spent, remaining, version)`.
    pub fn budget(&self) -> (bool, f64, f64, u64) {
        match &self.accountant {
            Some(a) => (true, a.spent(), a.remaining(), a.version()),
            None => (false, 0.0, 0.0, 0),
        }
    }

    /// Admits or rate-limits one request at `tick`.
    pub fn admit(&mut self, tick: u64) -> Result<(), u64> {
        self.bucket.admit(tick)
    }

    /// The refusal audit log, in `[gate: CODE] query #i: …` format.
    pub fn refusal_log(&self) -> &[String] {
        &self.refusal_log
    }

    /// `(answered, refused)` workload counters.
    pub fn workload_counts(&self) -> (u64, u64) {
        (self.workloads_answered, self.workloads_refused)
    }

    /// The tenant's flight recorder (read side: the `flight` op and
    /// `GET /flight/<tenant>`).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The tenant's flight recorder, writable — the server pushes one
    /// [`crate::flight::RequestRecord`] per tenant-bound request.
    pub fn flight_mut(&mut self) -> &mut FlightRecorder {
        &mut self.flight
    }

    /// What the most recent [`Tenant::run_workload`] measured: lint codes,
    /// refusal evidence, ε spent, rows scanned, cache hits. Zeros between
    /// workloads.
    pub fn last_profile(&self) -> &RequestProfile {
        &self.last_profile
    }

    /// Publishes the tenant's ε burn-down gauges
    /// (`so_serve_tenant_epsilon_{spent,remaining}`), a no-op without an
    /// accountant.
    pub fn publish_epsilon_gauges(&self) {
        if let Some(a) = &self.accountant {
            let (spent, remaining) = crate::obs::serve_epsilon_gauges(self.name());
            spent.set(a.spent());
            remaining.set(a.remaining());
        }
    }

    /// Lints (when gated), budget-checks (when budgeted), and answers one
    /// workload. `Err` means the workload was malformed (e.g. a subset index
    /// out of range) and nothing ran.
    pub fn run_workload(
        &mut self,
        queries: &[WireQuery],
        noise: Noise,
    ) -> Result<WorkloadOutcome, ProtoError> {
        self.last_profile = RequestProfile::default();
        let spec = self.build_spec(queries, noise)?;
        let mut spec = spec;
        if self.config.gated {
            let report = lint_workload(&mut spec, &self.config.lint);
            if report.denies() {
                // Mirror `GatedEngine::execute` for query-attributed
                // findings: the first deny finding to flag each index wins,
                // entries ascend by index, and the finding's evidence rides
                // along. Workload-level deny findings (empty `queries`,
                // e.g. `SO-RECON`'s density verdict) follow in report
                // order, carrying their message as the citable detail.
                let mut offending: BTreeMap<usize, &so_analyze::Finding> = BTreeMap::new();
                let denies = report
                    .findings
                    .iter()
                    .filter(|f| f.severity == Severity::Deny);
                for f in denies.clone() {
                    for &q in &f.queries {
                        offending.entry(q).or_insert(f);
                    }
                }
                let mut refusals: Vec<WireRefusal> = offending
                    .iter()
                    .map(|(&q, &finding)| WireRefusal {
                        query: Some(q),
                        code: finding.lint.code().to_owned(),
                        evidence: finding
                            .evidence
                            .as_ref()
                            .filter(|ev| !ev.is_empty())
                            .map(|ev| ev.to_string())
                            .unwrap_or_default(),
                    })
                    .collect();
                for f in denies.filter(|f| f.queries.is_empty()) {
                    refusals.push(WireRefusal {
                        query: None,
                        code: f.lint.code().to_owned(),
                        evidence: f
                            .evidence
                            .as_ref()
                            .filter(|ev| !ev.is_empty())
                            .map(|ev| ev.to_string())
                            .unwrap_or_else(|| f.message.clone()),
                    });
                }
                return Ok(self.refuse(&spec, refusals));
            }
            if self.accountant.is_some() {
                if let Some(refusals) = self.continual_budget_check(&spec) {
                    return Ok(self.refuse(&spec, refusals));
                }
            }
        }
        let answers = self.answer(&spec);
        self.workloads_answered += 1;
        crate::obs::serve_metrics().workloads_answered.inc();
        Ok(WorkloadOutcome::Answered(answers))
    }

    /// The `SO-CBUDGET` semantics of `IncrementalGate::execute_admitted`:
    /// under an accountant every release must be pure DP, and the workload's
    /// basic-composition sum must fit the remaining budget; admitted
    /// workloads spend their ε.
    fn continual_budget_check(&mut self, spec: &WorkloadSpec) -> Option<Vec<WireRefusal>> {
        let acct = self.accountant.as_mut().expect("accountant attached");
        let version = acct.version();
        let non_dp: Vec<usize> = spec
            .queries()
            .iter()
            .enumerate()
            .filter(|(_, q)| !matches!(q.noise, Noise::PureDp { .. }))
            .map(|(i, _)| i)
            .collect();
        if !non_dp.is_empty() {
            return Some(
                non_dp
                    .into_iter()
                    .map(|q| WireRefusal {
                        query: Some(q),
                        code: CBUDGET_CODE.to_owned(),
                        evidence: "non-DP release under continual accounting".to_owned(),
                    })
                    .collect(),
            );
        }
        let costs: Vec<f64> = spec
            .queries()
            .iter()
            .map(|q| match q.noise {
                Noise::PureDp { epsilon } => epsilon,
                _ => unreachable!("non-DP queries refused above"),
            })
            .collect();
        let check = acct.precheck(&costs);
        if !check.admissible {
            let (total, remaining) = (check.total, check.remaining);
            return Some(
                (0..spec.len())
                    .map(|q| WireRefusal {
                        query: Some(q),
                        code: CBUDGET_CODE.to_owned(),
                        evidence: format!(
                            "workload ε {total:.4} > remaining {remaining:.4} at v{version}"
                        ),
                    })
                    .collect(),
            );
        }
        for &eps in &costs {
            let ok = acct.try_spend(eps);
            debug_assert!(ok, "precheck admitted the workload");
        }
        self.last_profile.epsilon_spent = costs.iter().sum();
        None
    }

    /// Records a refusal: audit entries in the gate's format, counters, and
    /// the wire payload. No query of a refused workload executes.
    fn refuse(&mut self, spec: &WorkloadSpec, refusals: Vec<WireRefusal>) -> WorkloadOutcome {
        self.workloads_refused += 1;
        crate::obs::serve_metrics().workloads_refused.inc();
        let mut codes: Vec<String> = refusals.iter().map(|r| r.code.clone()).collect();
        codes.sort();
        codes.dedup();
        self.last_profile.evidence = refusals
            .iter()
            .map(|r| r.evidence.clone())
            .find(|ev| !ev.is_empty())
            .unwrap_or_default();
        self.last_profile.codes = codes;
        for r in &refusals {
            crate::obs::serve_refusals(&r.code).inc();
            crate::obs::serve_tenant_refusals(&r.code, &self.config.name).inc();
            let evidence = if r.evidence.is_empty() {
                String::new()
            } else {
                format!(" [{}]", r.evidence)
            };
            self.refusal_log.push(match r.query {
                Some(q) => format!(
                    "[gate: {}] query #{q}: {}{evidence}",
                    r.code,
                    render_query(spec, q)
                ),
                None => format!("[gate: {}] workload:{evidence}", r.code),
            });
        }
        WorkloadOutcome::Refused(refusals)
    }

    /// Answers an admitted workload: predicate counts through the tabular
    /// engine, subset sums against the secret column, release noise from
    /// the tenant's seeded stream — in declaration order, so the noise
    /// consumed per answer is deterministic.
    fn answer(&mut self, spec: &WorkloadSpec) -> Vec<f64> {
        let mut engine = CountingEngine::new(&self.dataset, None);
        let executed = engine.execute_workload(spec);
        let n = self.config.n_rows as u64;
        let subset_queries = spec
            .queries()
            .iter()
            .filter(|q| matches!(q.kind, QueryKind::Subset(_)))
            .count() as u64;
        // Rows touched: each dataset scan sweeps every row, and each
        // subset sum walks the full mask — deterministic counts, fit for a
        // transcript.
        self.last_profile.rows_scanned = (executed.stats.atom_scans as u64 + subset_queries) * n;
        self.last_profile.cache_hits = executed.stats.cache_hits as u64;
        let mut answers = Vec::with_capacity(spec.len());
        for (i, q) in spec.queries().iter().enumerate() {
            let truth = match &q.kind {
                QueryKind::Subset(mask) => mask
                    .iter()
                    .enumerate()
                    .filter(|&(r, m)| m && self.secret.get(r))
                    .count() as f64,
                QueryKind::Pred(_) => match executed.answers[i] {
                    WorkloadAnswer::Count(c) => c as f64,
                    other => unreachable!("predicate answered {other:?}"),
                },
            };
            let released = match q.noise {
                Noise::Exact => truth,
                Noise::Bounded { alpha } => {
                    if alpha > 0.0 {
                        truth + self.noise_rng.gen_range(-alpha..=alpha)
                    } else {
                        truth
                    }
                }
                Noise::PureDp { epsilon } => {
                    truth + sample_laplace(1.0 / epsilon, &mut self.noise_rng)
                }
            };
            answers.push(released);
        }
        answers
    }

    /// Lowers wire queries into a [`WorkloadSpec`], bounds-checking subset
    /// indices and column references.
    fn build_spec(&self, queries: &[WireQuery], noise: Noise) -> Result<WorkloadSpec, ProtoError> {
        let n = self.config.n_rows;
        let n_cols = self.dataset.schema().len();
        let mut spec = WorkloadSpec::new(n);
        for q in queries {
            match q {
                WireQuery::Subset(_) => {
                    let subset = q.to_subset(n)?.expect("subset kind");
                    spec.push_subset(&subset, noise);
                }
                WireQuery::IntRange { col, lo, hi } => {
                    check_col(*col, n_cols)?;
                    spec.push_shape(
                        &PredShape::IntRange {
                            col: *col,
                            lo: *lo,
                            hi: *hi,
                        },
                        noise,
                    );
                }
                WireQuery::ValueEq { col, value } => {
                    check_col(*col, n_cols)?;
                    spec.push_shape(
                        &PredShape::ValueEquals {
                            col: *col,
                            value: Value::Int(*value),
                        },
                        noise,
                    );
                }
            }
        }
        Ok(spec)
    }
}

fn check_col(col: usize, n_cols: usize) -> Result<(), ProtoError> {
    if col >= n_cols {
        return Err(ProtoError::BadShape(format!(
            "column {col} out of range ({n_cols} columns)"
        )));
    }
    Ok(())
}

fn render_query(spec: &WorkloadSpec, q: usize) -> String {
    match &spec.queries()[q].kind {
        QueryKind::Pred(id) => spec.pool().render(*id),
        QueryKind::Subset(m) => format!("subset(|q| = {})", m.count_ones()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subset_attack(n: usize, m: usize, seed: u64) -> Vec<WireQuery> {
        let mut rng = seeded_rng(seed);
        so_recon::lp_attack_queries(n, m, &mut rng)
            .iter()
            .map(|q| {
                WireQuery::Subset(
                    q.members()
                        .iter()
                        .enumerate()
                        .filter_map(|(i, b)| b.then_some(i))
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn ungated_tenant_answers_exact_subset_sums() {
        let mut t = Tenant::new(TenantConfig::ungated("open", 32, 7));
        let queries = vec![
            WireQuery::Subset((0..32).collect()),
            WireQuery::Subset(vec![0, 1, 2]),
        ];
        match t.run_workload(&queries, Noise::Exact).unwrap() {
            WorkloadOutcome::Answered(a) => {
                assert_eq!(a[0], t.secret().count_ones() as f64);
                let expect = (0..3).filter(|&i| t.secret().get(i)).count() as f64;
                assert_eq!(a[1], expect);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(t.workload_counts(), (1, 0));
    }

    #[test]
    fn gated_tenant_refuses_dense_attack_with_recon_evidence() {
        let n = 24;
        let mut t = Tenant::new(TenantConfig::gated("guarded", n, 7));
        let queries = subset_attack(n, 4 * n, 11);
        match t.run_workload(&queries, Noise::Exact).unwrap() {
            WorkloadOutcome::Refused(refusals) => {
                assert!(!refusals.is_empty());
                // The density verdict is workload-level; it crosses the
                // wire with `query: None` and the theorem grounding.
                let recon = refusals
                    .iter()
                    .find(|r| r.code == "SO-RECON")
                    .unwrap_or_else(|| panic!("{refusals:?}"));
                assert_eq!(recon.query, None);
                assert!(recon.evidence.contains("LP-decoding"), "{}", recon.evidence);
                // Per-index refusals ascend, deduplicated.
                let idx: Vec<usize> = refusals.iter().filter_map(|r| r.query).collect();
                let mut sorted = idx.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(idx, sorted);
            }
            other => panic!("{other:?}"),
        }
        assert!(t
            .refusal_log()
            .iter()
            .any(|e| e.starts_with("[gate: SO-RECON] workload:")));
        assert!(t
            .refusal_log()
            .iter()
            .any(|e| e.starts_with("[gate: ") && e.contains("query #0: subset(|q| = ")));
        assert_eq!(t.workload_counts(), (0, 1));
    }

    #[test]
    fn same_attack_under_dp_noise_is_admitted() {
        let n = 24;
        let mut t = Tenant::new(TenantConfig::gated("guarded", n, 7));
        let queries = subset_attack(n, 4 * n, 11);
        let out = t
            .run_workload(&queries, Noise::PureDp { epsilon: 0.05 })
            .unwrap();
        assert!(matches!(out, WorkloadOutcome::Answered(_)));
    }

    #[test]
    fn accountant_refuses_non_dp_then_meters_dp() {
        let mut t = Tenant::new(TenantConfig::gated("metered", 16, 3).with_continual_budget(1.0));
        let q = vec![WireQuery::Subset(vec![0, 1])];
        // Exact release: SO-CBUDGET outright.
        match t.run_workload(&q, Noise::Exact).unwrap() {
            WorkloadOutcome::Refused(r) => {
                assert_eq!(r[0].code, CBUDGET_CODE);
                assert!(r[0].evidence.contains("non-DP"));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(t.budget().1, 0.0, "refusal spends nothing");
        // DP releases spend until the budget runs out.
        let dp = Noise::PureDp { epsilon: 0.4 };
        assert!(matches!(
            t.run_workload(&q, dp).unwrap(),
            WorkloadOutcome::Answered(_)
        ));
        assert!(matches!(
            t.run_workload(&q, dp).unwrap(),
            WorkloadOutcome::Answered(_)
        ));
        let (_, spent, remaining, _) = t.budget();
        assert!((spent - 0.8).abs() < 1e-12);
        assert!((remaining - 0.2).abs() < 1e-12);
        match t.run_workload(&q, dp).unwrap() {
            WorkloadOutcome::Refused(r) => {
                assert_eq!(r[0].code, CBUDGET_CODE);
                assert!(r[0].evidence.contains("remaining"), "{:?}", r[0].evidence);
            }
            other => panic!("{other:?}"),
        }
        assert!((t.budget().1 - 0.8).abs() < 1e-12, "refusal spends nothing");
    }

    #[test]
    fn request_profile_captures_codes_eps_rows_and_cache() {
        let n = 24;
        let mut t = Tenant::new(TenantConfig::gated("metered", n, 7).with_continual_budget(1.0));
        // A refused attack: codes + evidence land in the profile.
        let attack = subset_attack(n, 4 * n, 11);
        t.run_workload(&attack, Noise::Exact).unwrap();
        let p = t.last_profile().clone();
        assert!(p.codes.contains(&"SO-RECON".to_owned()), "{:?}", p.codes);
        assert!(!p.evidence.is_empty());
        assert_eq!(p.epsilon_spent, 0.0, "refusals spend nothing");
        assert_eq!(p.rows_scanned, 0, "refused workloads run nothing");
        // An admitted DP workload: ε and rows recorded, profile reset.
        let q = vec![WireQuery::Subset(vec![0, 1]), WireQuery::Subset(vec![2])];
        t.run_workload(&q, Noise::PureDp { epsilon: 0.1 }).unwrap();
        let p = t.last_profile().clone();
        assert!(p.codes.is_empty(), "profile resets between workloads");
        assert!((p.epsilon_spent - 0.2).abs() < 1e-12, "two queries × ε=0.1");
        assert_eq!(
            p.rows_scanned,
            2 * n as u64,
            "two subset sweeps over n rows"
        );
        // Predicate workloads count dataset scans; hash-consing answers the
        // duplicate predicate from one scan, so rows_scanned is exactly n.
        let mut open = Tenant::new(TenantConfig::ungated("open", 64, 9));
        let pred = vec![
            WireQuery::IntRange {
                col: 0,
                lo: 0,
                hi: 40,
            },
            WireQuery::IntRange {
                col: 0,
                lo: 0,
                hi: 40,
            },
        ];
        open.run_workload(&pred, Noise::Exact).unwrap();
        let p = open.last_profile();
        assert_eq!(
            p.rows_scanned, 64,
            "two identical predicates, one scan: {p:?}"
        );
    }

    #[test]
    fn flight_cap_config_overrides_env_default() {
        let t = Tenant::new(TenantConfig::ungated("open", 8, 1).with_flight_cap(4));
        assert_eq!(t.flight().cap(), 4);
        let t = Tenant::new(TenantConfig::ungated("open", 8, 1));
        assert!(t.flight().cap() >= 1);
    }

    #[test]
    fn predicate_queries_count_rows() {
        let mut t = Tenant::new(TenantConfig::ungated("open", 64, 9));
        let queries = vec![
            WireQuery::IntRange {
                col: 0,
                lo: 0,
                hi: 89,
            },
            WireQuery::ValueEq { col: 0, value: -1 },
        ];
        match t.run_workload(&queries, Noise::Exact).unwrap() {
            WorkloadOutcome::Answered(a) => {
                assert_eq!(a[0], 64.0, "ages all fall in 0..90");
                assert_eq!(a[1], 0.0, "no negative ages");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_queries_run_nothing() {
        let mut t = Tenant::new(TenantConfig::ungated("open", 8, 1));
        assert!(t
            .run_workload(&[WireQuery::Subset(vec![8])], Noise::Exact)
            .is_err());
        assert!(t
            .run_workload(
                &[WireQuery::IntRange {
                    col: 5,
                    lo: 0,
                    hi: 1
                }],
                Noise::Exact
            )
            .is_err());
        assert_eq!(t.workload_counts(), (0, 0));
    }

    #[test]
    fn seeded_noise_stream_is_deterministic() {
        let run = || {
            let mut t = Tenant::new(TenantConfig::ungated("open", 16, 5));
            let q = vec![WireQuery::Subset(vec![0, 1, 2, 3])];
            let mut out = Vec::new();
            for _ in 0..3 {
                match t.run_workload(&q, Noise::Bounded { alpha: 2.0 }).unwrap() {
                    WorkloadOutcome::Answered(a) => out.extend(a),
                    other => panic!("{other:?}"),
                }
            }
            out
        };
        assert_eq!(run(), run());
    }
}
