#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # singling-out — facade crate
//!
//! Reproduction of Kobbi Nissim, *"Privacy: From Database Reconstruction to
//! Legal Theorems"* (PODS 2021). This crate re-exports the workspace members
//! under one roof so examples and downstream users can depend on a single
//! crate:
//!
//! * [`data`] — datasets, schemas, distributions, synthetic generators
//! * [`plan`] — the shared predicate compilation pipeline: hash-consed IR,
//!   workload specs, query plans, bitmap kernels
//! * [`query`] — statistical-query engine and answer mechanisms
//! * [`analyze`] — pre-execution workload linter over the shared IR
//!   (differencing / reconstruction attack shapes, gatekeeper mode)
//! * [`lp`] — linear-programming solver (substrate for LP decoding)
//! * [`dp`] — differential privacy mechanisms and accounting
//! * [`kanon`] — k-anonymity, l-diversity, t-closeness
//! * [`recon`] — database reconstruction attacks (Theorem 1.1)
//! * [`linkage`] — re-identification and membership-inference attacks
//! * [`census`] — census publication simulator and reconstruction
//! * [`core`] — predicate singling out, the PSO game, and legal theorems
//! * [`obs`] — observability substrate: metrics registry, span tracing,
//!   Prometheus-style export (`SO_TRACE` / `SO_METRICS`)

pub use singling_out_core as core;

/// One-stop imports for the common workflow: build a data model, run the
/// PSO game, derive a legal claim.
pub mod prelude {
    pub use singling_out_core::game::{
        run_pso_game, run_pso_game_parallel, BitModel, DataModel, GameConfig, GameResult,
        PsoAttacker, PsoMechanism, TabularModel,
    };
    pub use singling_out_core::isolation::{isolates, PsoPredicate};
    pub use singling_out_core::legal::{
        dp_singling_out_assessment, kanon_singling_out_theorem, Verdict,
    };
    pub use singling_out_core::negligible::NegligibilityPolicy;
    pub use singling_out_core::report::AuditReport;
    pub use so_data::rng::seeded_rng;
}
pub use so_analyze as analyze;
pub use so_census as census;
pub use so_data as data;
pub use so_dp as dp;
pub use so_kanon as kanon;
pub use so_linkage as linkage;
pub use so_lp as lp;
pub use so_obs as obs;
pub use so_plan as plan;
pub use so_query as query;
pub use so_recon as recon;
